"""The in-process async allocation service.

:class:`AllocationService` fronts ``n_shards`` single-writer
:class:`~repro.service.shards.AllocationShard` instances with the
four-call API the ROADMAP's service decomposition asks for —
``allocate``, ``allocate_retry``, ``record``, ``allocate_batch`` —
plus durability:

* every applied operation is write-ahead logged to its shard's WAL
  (group commit per drained batch);
* :meth:`snapshot` takes a *consistent cut*: every shard writer parks
  at a quiesce barrier, a new **snapshot generation**
  (``service.snapshot.<gen>.json``) is written atomically, the
  digest-checked CURRENT pointer flips to it, the live WALs are
  archived as that generation's replay segments, and the writers
  resume — no operation is ever split across the cut;
* :meth:`start` recovers: walk the CURRENT chain newest-first,
  quarantine generations whose bytes no longer match their recorded
  sha256 (or whose envelope is unreadable) and fall back to the next
  one, then roll forward through the archived WAL segments and the
  live WAL tail using the exact same
  :func:`~repro.service.shards.apply_op` the live writer uses, and
  finally re-snapshot so the recovered state is durable before traffic
  resumes.  Mid-stream-corrupt journals are quarantined
  (``<name>.corrupt/``) and their valid prefix replayed — never a
  crash at startup, never silent divergence (a sequence gap is still
  refused).

Given the same operation stream, a killed-and-resumed service answers
the remaining operations bit-identically to an uninterrupted run (the
kill/resume golden test asserts this byte-for-byte).
"""

from __future__ import annotations

import asyncio
import json
import logging
import os
import re
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from repro.checkpoint import (
    SERVICE_KIND,
    CheckpointError,
    file_digest,
    load_checkpoint,
    quarantine_file,
    recover_jsonl,
    save_checkpoint,
    write_json_atomic,
)
from repro.core.allocator import TaskOrientedAllocator
from repro.core.resources import Resource, ResourceVector
from repro.service.chaos import CRASH_POINTS
from repro.service.config import ServiceConfig
from repro.service.protocol import ADMIN_OPS, ProtocolError, validate_request
from repro.service.shards import (
    OP_ALLOCATE,
    OP_RECORD,
    OP_RETRY,
    AllocationShard,
    StorageUnavailable,
    shard_of,
)

__all__ = [
    "AllocationService",
    "SNAPSHOT_FILENAME",
    "CURRENT_FILENAME",
    "snapshot_filename",
    "segment_filename",
]

logger = logging.getLogger("repro.service")

#: The legacy single-generation snapshot envelope; still restored (as
#: generation 0 of the chain) so pre-generational data dirs upgrade in
#: place.
SNAPSHOT_FILENAME = "service.snapshot.json"

#: The atomic chain pointer: newest-first ``{gen, digest}`` entries.
CURRENT_FILENAME = "service.snapshot.CURRENT"

#: Magic of the CURRENT pointer document.
CURRENT_MAGIC = "repro-snapshot-current"

# Crash sites around the snapshot write: "before" loses the cut (the
# WALs still cover everything), "after" has the cut and pointer on disk
# but the WALs not yet archived (recovery's seq filter skips overlap).
SITE_SNAPSHOT_BEFORE = CRASH_POINTS.register("service.snapshot.before")
SITE_SNAPSHOT_AFTER = CRASH_POINTS.register("service.snapshot.after")

_GEN_RE = re.compile(r"^service\.snapshot\.(\d{6})\.json$")
_SEGMENT_RE = re.compile(r"^shard-(\d+)\.wal\.g(\d{6})$")


def _wal_filename(index: int) -> str:
    return f"shard-{index:02d}.wal"


def snapshot_filename(gen: int) -> str:
    """File name of snapshot generation ``gen`` (0 = the legacy name)."""
    if gen == 0:
        return SNAPSHOT_FILENAME
    return f"service.snapshot.{gen:06d}.json"


def segment_filename(index: int, gen: int) -> str:
    """Archived WAL segment of shard ``index`` covering generation ``gen``."""
    return f"shard-{index:02d}.wal.g{gen:06d}"


def parse_generation(name: str) -> Optional[int]:
    """Generation number of a snapshot file name, or ``None``."""
    if name == SNAPSHOT_FILENAME:
        return 0
    match = _GEN_RE.match(name)
    return int(match.group(1)) if match else None


def parse_segment(name: str) -> Optional[Tuple[int, int]]:
    """``(shard_index, generation)`` of a segment file name, or ``None``."""
    match = _SEGMENT_RE.match(name)
    return (int(match.group(1)), int(match.group(2))) if match else None


class AllocationService:
    """Sharded, durable, backpressured allocation service."""

    def __init__(self, config: Optional[ServiceConfig] = None) -> None:
        self._config = config if config is not None else ServiceConfig()
        self._shards: List[AllocationShard] = []
        self._started = False
        self._snapshot_lock: Optional[asyncio.Lock] = None
        self.recovered_ops = 0
        #: Current snapshot generation (0: none written yet).
        self.generation = 0
        #: Per-shard ``seq`` at the last committed snapshot.
        self.last_snapshot_seqs: List[int] = []
        #: What recovery had to route around: one dict per quarantined
        #: or skipped artifact (kind, path, reason, quarantined_to).
        self.recovery_events: List[Dict[str, Any]] = []
        #: Newest-first snapshot chain, mirrored from CURRENT.
        self._chain: List[Dict[str, Any]] = []

    # -- properties ------------------------------------------------------------

    @property
    def config(self) -> ServiceConfig:
        return self._config

    @property
    def resources(self) -> Sequence[Resource]:
        return self._config.allocator.resources

    @property
    def started(self) -> bool:
        return self._started

    @property
    def shards(self) -> Sequence[AllocationShard]:
        return tuple(self._shards)

    def shard_for(self, category: str) -> int:
        """The shard index serving ``category`` (stable hash)."""
        return shard_of(category, self._config.n_shards)

    # -- lifecycle -------------------------------------------------------------

    def _build_shards(self) -> None:
        config = self._config
        self._shards = []
        for index in range(config.n_shards):
            allocator = TaskOrientedAllocator(config.shard_allocator_config(index))
            if config.capacity is not None:
                ceiling = config.capacity
                allocator.set_capacity_provider(lambda ceiling=ceiling: ceiling)
            wal_path = None
            if config.data_dir is not None:
                wal_path = os.path.join(config.data_dir, _wal_filename(index))
            self._shards.append(
                AllocationShard(
                    index,
                    allocator,
                    wal_path=wal_path,
                    durability=config.durability,
                    backpressure=config.backpressure,
                    queue_high_watermark=config.queue_high_watermark,
                    dedup_window=config.dedup_window,
                    probe_interval=config.degraded_probe_interval,
                )
            )

    async def start(self) -> None:
        """Build the shards, recover from ``data_dir``, start the writers."""
        if self._started:
            raise RuntimeError("service already started")
        self._build_shards()
        self._snapshot_lock = asyncio.Lock()
        if self._config.data_dir is not None:
            os.makedirs(self._config.data_dir, exist_ok=True)
            self._recover()
        for shard in self._shards:
            shard.start()
        self._started = True

    def _fingerprint(self) -> Dict[str, Any]:
        """Config identity a snapshot must match to be resumable."""
        config = self._config
        return {
            "n_shards": config.n_shards,
            "algorithm": config.allocator.algorithm,
            "resources": [res.key for res in config.allocator.resources],
            "base_seed": config.base_seed,
        }

    def _gen_path(self, gen: int) -> str:
        assert self._config.data_dir is not None
        return os.path.join(self._config.data_dir, snapshot_filename(gen))

    def _note_recovery(
        self, kind: str, path: str, reason: str, quarantined_to: Optional[str]
    ) -> None:
        self.recovery_events.append(
            {
                "kind": kind,
                "path": path,
                "reason": reason,
                "quarantined_to": quarantined_to,
            }
        )
        logger.warning("recovery: %s at %s (%s)", kind, path, reason)

    def _load_chain(self) -> List[Dict[str, Any]]:
        """The snapshot chain, newest-first: ``[{"gen", "digest"}, ...]``.

        Normally read from the CURRENT pointer.  A damaged pointer is
        quarantined and the chain rebuilt from the snapshot files on
        disk — their digests can no longer be cross-checked, but the
        envelope and fingerprint validation still stand.  A legacy
        (pre-generational) ``service.snapshot.json`` joins the chain as
        generation 0, so old data dirs upgrade in place.
        """
        data_dir = self._config.data_dir
        assert data_dir is not None
        current = os.path.join(data_dir, CURRENT_FILENAME)
        entries: List[Dict[str, Any]] = []
        if os.path.exists(current):
            try:
                with open(current, "r", encoding="utf-8") as handle:
                    doc = json.load(handle)
                if doc.get("magic") != CURRENT_MAGIC:
                    raise ValueError(f"bad magic {doc.get('magic')!r}")
                for row in doc["entries"]:
                    entries.append(
                        {"gen": int(row["gen"]), "digest": row.get("digest")}
                    )
            except (ValueError, KeyError, TypeError, OSError) as exc:
                quarantined = quarantine_file(current)
                self._note_recovery(
                    "current-pointer", current, f"unreadable: {exc}", quarantined
                )
                entries = []
        if not entries:
            found = [
                gen
                for name in os.listdir(data_dir)
                if (gen := parse_generation(name)) is not None and gen > 0
            ]
            entries = [{"gen": gen, "digest": None} for gen in sorted(found, reverse=True)]
        if os.path.exists(os.path.join(data_dir, SNAPSHOT_FILENAME)) and not any(
            entry["gen"] == 0 for entry in entries
        ):
            entries.append({"gen": 0, "digest": None})
        return entries

    def _load_generation(
        self, entry: Dict[str, Any]
    ) -> Optional[List[Dict[str, Any]]]:
        """Shard states of one chain entry, or ``None`` if quarantined.

        Corruption — digest mismatch against the CURRENT pointer, or an
        unreadable envelope — quarantines the file and returns ``None``
        so recovery falls back to the next generation.  A *fingerprint*
        mismatch is not corruption (the bytes verified): the operator
        changed the configuration, and that is refused loudly.
        """
        path = self._gen_path(int(entry["gen"]))
        if not os.path.exists(path):
            self._note_recovery(
                "snapshot-missing", path, "chain entry has no file", None
            )
            return None
        digest = entry.get("digest")
        if digest is not None and file_digest(path) != digest:
            quarantined = quarantine_file(path)
            self._note_recovery(
                "snapshot-digest",
                path,
                "bytes do not match the digest recorded in CURRENT",
                quarantined,
            )
            return None
        try:
            _, payload = load_checkpoint(path, kind=SERVICE_KIND)
        except CheckpointError as exc:
            quarantined = quarantine_file(path)
            self._note_recovery("snapshot-envelope", path, str(exc), quarantined)
            return None
        fingerprint = payload.get("fingerprint")
        if fingerprint != self._fingerprint():
            raise CheckpointError(
                f"service snapshot {path!r} was written by a different "
                f"configuration: snapshot {fingerprint!r} vs "
                f"running {self._fingerprint()!r}"
            )
        states = payload.get("shards")
        if not isinstance(states, list) or len(states) != len(self._shards):
            raise CheckpointError(
                f"snapshot {path!r} holds "
                f"{len(states) if isinstance(states, list) else 'no'} shards; "
                f"service runs {len(self._shards)}"
            )
        return states

    def _replay_journal(self, shard: AllocationShard, path: str) -> int:
        """Replay one journal tolerantly (quarantining mid-stream rot)."""
        docs, recovery = recover_jsonl(path)
        if recovery is not None:
            self._note_recovery(
                "journal-corrupt",
                path,
                f"{recovery.reason} (kept {recovery.docs_kept} records)",
                recovery.quarantined_to,
            )
        return shard.replay(docs)

    # reproflow: sync-boundary -- startup recovery runs before the server accepts connections
    def _recover(self) -> None:
        """Walk the generation chain, roll the WALs forward, re-snapshot.

        Fallback order per generation: digest check (against CURRENT),
        envelope check, fingerprint check.  The first two quarantine and
        fall back; the chain running dry with entries present is
        failure-stop (restore a backup via ``snapshot import``).  Roll-
        forward then replays the archived WAL segments *newer* than the
        restored generation (exactly the data a fallback needs) and the
        live WAL tail; the per-shard seq filter absorbs overlap and a
        seq gap is still refused — corruption never silently diverges.
        """
        data_dir = self._config.data_dir
        assert data_dir is not None
        self.recovery_events = []
        chain = self._load_chain()
        restored_gen: Optional[int] = None
        for entry in chain:
            states = self._load_generation(entry)
            if states is not None:
                for shard, state in zip(self._shards, states):
                    shard.restore(state)
                restored_gen = int(entry["gen"])
                break
        if chain and restored_gen is None:
            raise CheckpointError(
                f"no readable snapshot generation in {data_dir!r}: all "
                f"{len(chain)} chain entries are corrupt or missing — "
                "restore a backup (repro-experiments snapshot-import)"
            )
        self._chain = chain
        self.generation = int(chain[0]["gen"]) if chain else 0
        newer_gens = (
            sorted(int(e["gen"]) for e in chain if int(e["gen"]) > restored_gen)
            if restored_gen is not None
            else []
        )
        recovered = 0
        for shard in self._shards:
            for gen in newer_gens:
                segment = os.path.join(data_dir, segment_filename(shard.index, gen))
                if os.path.exists(segment):
                    recovered += self._replay_journal(shard, segment)
            wal_path = os.path.join(data_dir, _wal_filename(shard.index))
            if os.path.exists(wal_path):
                recovered += self._replay_journal(shard, wal_path)
        self.recovered_ops = recovered
        # Make the recovered state durable *before* accepting traffic:
        # one fresh generation covers everything just replayed, and the
        # live WALs restart empty (archived under the new generation).
        self._write_snapshot()

    # reproflow: sync-boundary -- the snapshot cut runs under the quiesce barrier; blocking is the design
    def _write_snapshot(self) -> str:
        """Write one new snapshot generation (callers ensure quiescence).

        Crash-safe ordering: (1) the generation file commits atomically;
        (2) the CURRENT pointer flips atomically to the new chain;
        (3) the live WALs are archived as this generation's segments;
        (4) out-of-window generations and segments are pruned.  A crash
        between any two steps recovers consistently — before (2) the old
        chain plus the live WAL still cover everything; between (2) and
        (3) the new generation covers the WAL and the seq filter skips
        the overlap; between (3) and (4) there is only unpruned garbage.
        """
        data_dir = self._config.data_dir
        assert data_dir is not None
        CRASH_POINTS.hit(SITE_SNAPSHOT_BEFORE)
        gen = self.generation + 1
        path = self._gen_path(gen)
        digest = save_checkpoint(
            path,
            SERVICE_KIND,
            {
                "fingerprint": self._fingerprint(),
                "generation": gen,
                "shards": [shard.state() for shard in self._shards],
            },
        )
        retention = self._config.snapshot_retention
        entries = [{"gen": gen, "digest": digest}] + [
            dict(entry) for entry in self._chain if int(entry["gen"]) < gen
        ][: max(0, retention - 1)]
        write_json_atomic(
            os.path.join(data_dir, CURRENT_FILENAME),
            {"magic": CURRENT_MAGIC, "version": 1, "entries": entries},
        )
        CRASH_POINTS.hit(SITE_SNAPSHOT_AFTER)
        self._chain = entries
        self.generation = gen
        self.last_snapshot_seqs = [shard.seq for shard in self._shards]
        for shard in self._shards:
            shard.archive_wal(
                os.path.join(data_dir, segment_filename(shard.index, gen))
            )
        self._prune(data_dir)
        return path

    def _prune(self, data_dir: str) -> None:
        """Remove generations/segments the retained chain cannot reach.

        A snapshot generation survives while it is in the chain; a WAL
        segment survives while some retained generation older than it
        might need it to roll forward (segment ``g`` holds the
        operations between generations ``g-1`` and ``g``).
        """
        keep = {int(entry["gen"]) for entry in self._chain}
        floor = min(keep)
        for name in sorted(os.listdir(data_dir)):
            target: Optional[str] = None
            gen = parse_generation(name)
            if gen is not None and gen not in keep and gen < self.generation:
                target = name
            segment = parse_segment(name)
            if segment is not None and segment[1] <= floor:
                target = name
            if target is not None:
                try:
                    os.remove(os.path.join(data_dir, target))
                except OSError:  # pragma: no cover - prune is best-effort
                    pass

    async def stop(self, snapshot: bool = True) -> None:
        """Drain every shard, optionally snapshot, release the WALs.

        A storage failure during the final snapshot is logged and
        swallowed: the WALs are left un-archived, so everything applied
        is still covered for the next recovery — failing the shutdown
        would lose more than it protects.
        """
        if not self._started:
            return
        for shard in self._shards:
            await shard.stop()
        if self._config.data_dir is not None and snapshot:
            try:
                self._write_snapshot()
            except OSError as exc:
                logger.warning(
                    "final snapshot failed (%s); WALs retained for recovery", exc
                )
        for shard in self._shards:
            shard.close_wal()
        self._started = False

    def abort(self) -> None:
        """Crash simulation: drop writers and queued work on the floor."""
        for shard in self._shards:
            shard.abort()
        self._started = False

    async def snapshot(self) -> str:
        """Online snapshot: quiesce all shards, write one consistent cut."""
        if not self._started:
            raise RuntimeError("service is not started")
        if self._config.data_dir is None:
            raise RuntimeError("service has no data_dir; nothing to snapshot to")
        assert self._snapshot_lock is not None
        async with self._snapshot_lock:
            barriers = [shard.quiesce() for shard in self._shards]
            await asyncio.gather(*(b.parked.wait() for b in barriers))
            try:
                try:
                    path = self._write_snapshot()
                except OSError as exc:
                    # Typed refusal, no state lost: the previous chain
                    # stays CURRENT and the live WALs keep covering
                    # everything applied since it.
                    raise StorageUnavailable(
                        None, f"snapshot write failed: {exc}"
                    ) from exc
            finally:
                for barrier in barriers:
                    barrier.release.set()
            return path

    # -- the request API -------------------------------------------------------

    async def submit(self, op: Dict[str, Any]) -> Dict[str, Any]:
        """Apply one validated operation document; returns the result doc.

        This is the generic entry the wire front end uses; the typed
        helpers below build the documents for in-process callers.
        """
        if op.get("op") in ADMIN_OPS:
            raise ProtocolError(
                f"{op.get('op')!r} is a front-end operation; call the "
                "service method directly"
            )
        validate_request(op, self.resources)
        if op["op"] == "allocate_batch":
            return {"responses": await self.submit_batch(op["requests"])}
        return await self._shard(op["category"]).submit(op)

    async def submit_batch(
        self, requests: Sequence[Dict[str, Any]]
    ) -> List[Dict[str, Any]]:
        """Apply a batch of operation documents, coalesced per shard.

        Responses come back in request order and are bit-identical to a
        sequential loop awaiting each request: within a shard the batch
        is applied contiguously in request order, and requests on
        different shards touch disjoint allocators.
        """
        for request in requests:
            if not isinstance(request, dict):
                raise ProtocolError("allocate_batch: every request must be an object")
            if request.get("op") not in (OP_ALLOCATE, OP_RETRY, OP_RECORD):
                raise ProtocolError(
                    f"allocate_batch: nested op {request.get('op')!r} not allowed"
                )
            validate_request(request, self.resources, depth=1)
        by_shard: Dict[int, List[int]] = {}
        for position, request in enumerate(requests):
            by_shard.setdefault(self.shard_for(request["category"]), []).append(position)
        ordered = sorted(by_shard.items())
        grouped = await asyncio.gather(
            *(
                self._shards[index].submit_many([requests[pos] for pos in positions])
                for index, positions in ordered
            )
        )
        responses: List[Optional[Dict[str, Any]]] = [None] * len(requests)
        for (_, positions), results in zip(ordered, grouped):
            for position, result in zip(positions, results):
                responses[position] = result
        return responses  # type: ignore[return-value]

    async def allocate(self, category: str, task_id: int) -> ResourceVector:
        """First-attempt allocation for one task of ``category``."""
        result = await self.submit(
            {"op": OP_ALLOCATE, "category": category, "task_id": task_id}
        )
        return ResourceVector.from_state(result["allocation"])

    async def allocate_retry(
        self,
        category: str,
        task_id: int,
        previous: ResourceVector,
        observed: ResourceVector,
        exhausted: Sequence[Union[Resource, str]],
    ) -> ResourceVector:
        """Re-allocation after ``previous`` was exhausted."""
        result = await self.submit(
            {
                "op": OP_RETRY,
                "category": category,
                "task_id": task_id,
                "previous": previous.state_dict(),
                "observed": observed.state_dict(),
                "exhausted": [str(res) for res in exhausted],
            }
        )
        return ResourceVector.from_state(result["allocation"])

    async def record(
        self,
        category: str,
        peaks: ResourceVector,
        task_id: int,
        significance: Optional[float] = None,
    ) -> int:
        """Feed back a completed task's peaks; returns the record count."""
        op: Dict[str, Any] = {
            "op": OP_RECORD,
            "category": category,
            "task_id": task_id,
            "peaks": peaks.state_dict(),
        }
        if significance is not None:
            op["significance"] = significance
        result = await self.submit(op)
        return int(result["records_count"])

    def _shard(self, category: str) -> AllocationShard:
        if not self._started:
            raise RuntimeError("service is not started")
        return self._shards[self.shard_for(category)]

    # -- introspection ---------------------------------------------------------

    def stats(self) -> Dict[str, Any]:
        """Operational counters, per shard and service-wide."""
        shards = [shard.stats() for shard in self._shards]
        return {
            "n_shards": self._config.n_shards,
            "algorithm": self._config.allocator.algorithm,
            "ops": sum(s["seq"] for s in shards),
            "shed": sum(s["shed"] for s in shards),
            "recovered_ops": self.recovered_ops,
            "shards": shards,
        }

    def health(self) -> Dict[str, Any]:
        """Liveness + storage-pressure view for the wire ``health`` request.

        ``ok`` is false once any shard writer died at a crash point (or
        was aborted).  ``degraded`` is true while any shard's storage is
        refusing writes — the service still answers reads and typed
        refusals, so it is *not* folded into ``ok``.  The per-shard rows
        carry queue depth, breaker state, dedup occupancy, WAL byte
        sizes, and the last durable seq, so an operator can see storage
        pressure before it becomes an outage.
        """
        shards = [shard.stats() for shard in self._shards]
        for shard, row in zip(self._shards, shards):
            row["crashed"] = shard.crashed
        return {
            "ok": self._started and not any(s["crashed"] for s in shards),
            "started": self._started,
            "degraded": any(s["degraded"] for s in shards),
            "generation": self.generation,
            "last_snapshot_seq": list(self.last_snapshot_seqs),
            "durability": self._config.durability,
            "wal": self._config.data_dir is not None,
            "wal_bytes": sum(s["wal_bytes"] for s in shards),
            "dedup_window": self._config.dedup_window,
            "recovered_ops": self.recovered_ops,
            "recovery_events": len(self.recovery_events),
            "dedup_hits": sum(s["dedup_hits"] for s in shards),
            "shards": shards,
        }

    def shard_digests(self) -> List[str]:
        """Per-shard allocator digests (bit-identity handles)."""
        return [shard.allocator.digest() for shard in self._shards]

    def __repr__(self) -> str:
        return (
            f"AllocationService(shards={self._config.n_shards}, "
            f"algorithm={self._config.allocator.algorithm!r}, "
            f"started={self._started})"
        )
