"""Offline storage integrity audit and backup tooling for data dirs.

``repro-experiments fsck --data-dir DIR`` walks one allocation-service
data directory **without starting the service** and verifies everything
the durability layer promises:

* the CURRENT pointer parses and every chain entry's snapshot file
  exists with byte-for-byte the sha256 the pointer recorded;
* every snapshot file on disk (referenced or not) is a valid checkpoint
  envelope;
* every WAL and archived WAL segment decodes frame by frame — CRC
  mismatches and mid-stream corruption are errors, a torn final line is
  a note (normal crash debris) — and carries contiguous sequence
  numbers;
* quarantine directories (``*.corrupt/``) are surfaced so operators see
  what past recoveries routed around.

Exit codes follow the analysis-tool convention: ``0`` clean, ``1``
integrity errors found, ``2`` operational failure (unreadable
directory, bad arguments).

``snapshot export`` / ``snapshot import`` round-trip the same files
through a digest-manifested tarball — the disaster-recovery path for
when every on-disk generation is gone.
"""

from __future__ import annotations

import io
import json
import os
import tarfile
import tempfile
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.checkpoint import (
    SERVICE_KIND,
    CheckpointError,
    _scan_jsonl,
    file_digest,
    load_checkpoint,
)
from repro.service.service import (
    CURRENT_FILENAME,
    CURRENT_MAGIC,
    parse_generation,
    parse_segment,
)

__all__ = [
    "FSCK_OK",
    "FSCK_ERRORS",
    "FSCK_FAILED",
    "BACKUP_KIND",
    "Finding",
    "FsckReport",
    "run_fsck",
    "render_report",
    "export_backup",
    "import_backup",
]

FSCK_OK = 0
FSCK_ERRORS = 1
FSCK_FAILED = 2

#: Manifest ``kind`` of a backup tarball.
BACKUP_KIND = "repro-service-backup"
BACKUP_VERSION = 1
MANIFEST_NAME = "MANIFEST.json"


@dataclass(frozen=True)
class Finding:
    """One fsck observation: ``error`` fails the check, ``note`` does not."""

    severity: str  # "error" | "note"
    path: str
    problem: str


@dataclass
class FsckReport:
    """Everything one fsck pass saw."""

    data_dir: str
    checked_files: int = 0
    findings: List[Finding] = field(default_factory=list)

    @property
    def errors(self) -> List[Finding]:
        return [f for f in self.findings if f.severity == "error"]

    @property
    def notes(self) -> List[Finding]:
        return [f for f in self.findings if f.severity == "note"]

    @property
    def ok(self) -> bool:
        return not self.errors

    @property
    def exit_code(self) -> int:
        return FSCK_OK if self.ok else FSCK_ERRORS

    def to_json(self) -> Dict[str, Any]:
        return {
            "data_dir": self.data_dir,
            "checked_files": self.checked_files,
            "ok": self.ok,
            "errors": [vars(f) for f in self.errors],
            "notes": [vars(f) for f in self.notes],
        }


def _check_journal(report: FsckReport, path: str) -> None:
    """Frame-validate one WAL/segment and its seq contiguity."""
    report.checked_files += 1
    name = os.path.basename(path)
    try:
        docs, corrupt = _scan_jsonl(path)
    except OSError as exc:  # pragma: no cover - unreadable mid-walk
        report.findings.append(Finding("error", name, f"unreadable: {exc}"))
        return
    if corrupt is not None:
        report.findings.append(
            Finding(
                "error",
                name,
                f"mid-stream corruption at line {corrupt.line} "
                f"(byte offset {corrupt.offset}): {corrupt.reason}",
            )
        )
    else:
        with open(path, "rb") as handle:
            blob = handle.read()
        complete = blob.endswith(b"\n") or not blob
        if not complete:
            report.findings.append(
                Finding("note", name, "torn final line (normal crash debris)")
            )
    last_seq: Optional[int] = None
    for doc in docs:
        if not isinstance(doc, dict) or "seq" not in doc:
            report.findings.append(
                Finding("error", name, f"journal record without seq: {doc!r}")
            )
            return
        seq = int(doc["seq"])
        if last_seq is not None and seq != last_seq + 1:
            report.findings.append(
                Finding(
                    "error",
                    name,
                    f"sequence gap: seq {last_seq} followed by {seq}",
                )
            )
        last_seq = seq


def _check_snapshot(
    report: FsckReport, path: str, expected_digest: Optional[str]
) -> None:
    report.checked_files += 1
    name = os.path.basename(path)
    if expected_digest is not None:
        actual = file_digest(path)
        if actual != expected_digest:
            report.findings.append(
                Finding(
                    "error",
                    name,
                    f"digest mismatch: CURRENT records {expected_digest[:12]}…, "
                    f"file hashes to {actual[:12]}…",
                )
            )
            return  # the bytes are wrong; envelope detail is noise
    try:
        load_checkpoint(path, kind=SERVICE_KIND)
    except CheckpointError as exc:
        report.findings.append(Finding("error", name, str(exc)))


def run_fsck(data_dir: str) -> FsckReport:
    """Verify every journal and snapshot checksum under ``data_dir``."""
    if not os.path.isdir(data_dir):
        raise ValueError(f"not a directory: {data_dir!r}")
    report = FsckReport(data_dir=data_dir)
    names = sorted(os.listdir(data_dir))
    referenced: Dict[int, Optional[str]] = {}
    current_path = os.path.join(data_dir, CURRENT_FILENAME)
    if os.path.exists(current_path):
        report.checked_files += 1
        try:
            with open(current_path, "r", encoding="utf-8") as handle:
                doc = json.load(handle)
            if doc.get("magic") != CURRENT_MAGIC:
                raise ValueError(f"bad magic {doc.get('magic')!r}")
            for row in doc["entries"]:
                referenced[int(row["gen"])] = row.get("digest")
        except (ValueError, KeyError, TypeError) as exc:
            report.findings.append(
                Finding("error", CURRENT_FILENAME, f"unreadable pointer: {exc}")
            )
            referenced = {}
        for gen in referenced:
            from repro.service.service import snapshot_filename

            if not os.path.exists(os.path.join(data_dir, snapshot_filename(gen))):
                report.findings.append(
                    Finding(
                        "error",
                        snapshot_filename(gen),
                        f"referenced by CURRENT (gen {gen}) but missing",
                    )
                )
    for name in names:
        full = os.path.join(data_dir, name)
        if name == CURRENT_FILENAME:
            continue
        if os.path.isdir(full):
            if name.endswith(".corrupt"):
                quarantined = sorted(os.listdir(full))
                report.findings.append(
                    Finding(
                        "note",
                        name,
                        f"quarantine directory holding {len(quarantined)} "
                        f"file(s): {', '.join(quarantined[:4])}"
                        + ("…" if len(quarantined) > 4 else ""),
                    )
                )
            continue
        gen = parse_generation(name)
        if gen is not None:
            digest = referenced.get(gen)
            if gen not in referenced and referenced:
                report.findings.append(
                    Finding("note", name, "snapshot not referenced by CURRENT")
                )
            _check_snapshot(report, full, digest)
            continue
        if name.endswith(".wal") or parse_segment(name) is not None:
            _check_journal(report, full)
    return report


def render_report(report: FsckReport) -> str:
    """Human-readable fsck summary (the ``--json`` flag skips this)."""
    lines = [
        f"fsck {report.data_dir}",
        f"  checked {report.checked_files} file(s): "
        f"{len(report.errors)} error(s), {len(report.notes)} note(s)",
    ]
    for finding in report.findings:
        marker = "ERROR" if finding.severity == "error" else "note "
        lines.append(f"  [{marker}] {finding.path}: {finding.problem}")
    lines.append("status: " + ("clean" if report.ok else "CORRUPTION DETECTED"))
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# Backup export / import
# ---------------------------------------------------------------------------


def _backup_members(data_dir: str) -> List[str]:
    """The flat file set a backup covers (no quarantine evidence)."""
    members = []
    for name in sorted(os.listdir(data_dir)):
        full = os.path.join(data_dir, name)
        if not os.path.isfile(full):
            continue
        if (
            name == CURRENT_FILENAME
            or parse_generation(name) is not None
            or parse_segment(name) is not None
            or name.endswith(".wal")
        ):
            members.append(name)
    return members


def export_backup(data_dir: str, archive_path: str) -> Dict[str, Any]:
    """Write a digest-manifested ``.tar.gz`` of ``data_dir``; return manifest.

    The archive lands atomically (temp + fsync + rename) so a crashed
    export never leaves a half tarball under the target name.
    """
    if not os.path.isdir(data_dir):
        raise ValueError(f"not a directory: {data_dir!r}")
    members = _backup_members(data_dir)
    if not members:
        raise ValueError(f"nothing to back up in {data_dir!r}")
    manifest: Dict[str, Any] = {
        "kind": BACKUP_KIND,
        "version": BACKUP_VERSION,
        "files": {name: file_digest(os.path.join(data_dir, name)) for name in members},
    }
    directory = os.path.dirname(os.path.abspath(archive_path)) or "."
    os.makedirs(directory, exist_ok=True)
    fd, tmp_path = tempfile.mkstemp(
        dir=directory, prefix=os.path.basename(archive_path) + ".", suffix=".tmp"
    )
    os.close(fd)
    try:
        with tarfile.open(tmp_path, "w:gz") as tar:
            blob = json.dumps(manifest, indent=None, separators=(",", ":")).encode(
                "utf-8"
            )
            info = tarfile.TarInfo(MANIFEST_NAME)
            info.size = len(blob)
            tar.addfile(info, io.BytesIO(blob))
            for name in members:
                tar.add(os.path.join(data_dir, name), arcname=name)
        sync_fd = os.open(tmp_path, os.O_RDONLY)
        try:
            os.fsync(sync_fd)
        finally:
            os.close(sync_fd)
        os.replace(tmp_path, archive_path)
    except BaseException:
        try:
            os.unlink(tmp_path)
        except OSError:
            pass
        raise
    return manifest


def _read_manifest(tar: tarfile.TarFile) -> Dict[str, Any]:
    member = tar.getmember(MANIFEST_NAME)
    handle = tar.extractfile(member)
    assert handle is not None
    manifest = json.loads(handle.read().decode("utf-8"))
    if manifest.get("kind") != BACKUP_KIND:
        raise ValueError(f"not a {BACKUP_KIND} archive")
    if manifest.get("version") != BACKUP_VERSION:
        raise ValueError(
            f"backup version {manifest.get('version')!r}; this build reads "
            f"version {BACKUP_VERSION}"
        )
    return manifest


def import_backup(
    archive_path: str, data_dir: str, force: bool = False
) -> Dict[str, Any]:
    """Restore a backup tarball into ``data_dir``; returns its manifest.

    Every extracted file must hash to exactly the digest the manifest
    recorded at export time — a bit-rotted backup is refused, not
    silently restored.  A ``data_dir`` already holding service files is
    refused unless ``force`` (which overwrites them).
    """
    with tarfile.open(archive_path, "r:gz") as tar:
        manifest = _read_manifest(tar)
        files: Dict[str, str] = manifest["files"]
        for name in files:
            if os.sep in name or name.startswith(".") or not name:
                raise ValueError(f"manifest names unsafe member {name!r}")
        names = {member.name for member in tar.getmembers()}
        extra = names - set(files) - {MANIFEST_NAME}
        if extra:
            raise ValueError(f"archive holds unmanifested members: {sorted(extra)}")
        os.makedirs(data_dir, exist_ok=True)
        existing = _backup_members(data_dir)
        if existing and not force:
            raise ValueError(
                f"{data_dir!r} already holds {len(existing)} service file(s); "
                "pass --force to overwrite"
            )
        staged: List[Tuple[str, str]] = []
        for name, expected in sorted(files.items()):
            handle = tar.extractfile(name)
            if handle is None:
                raise ValueError(f"archive is missing manifested member {name!r}")
            blob = handle.read()
            tmp_fd, tmp_path = tempfile.mkstemp(
                dir=data_dir, prefix=name + ".", suffix=".import"
            )
            with os.fdopen(tmp_fd, "wb") as out:
                out.write(blob)
                out.flush()
                os.fsync(out.fileno())
            staged.append((tmp_path, os.path.join(data_dir, name)))
            actual = file_digest(tmp_path)
            if actual != expected:
                for tmp, _ in staged:
                    try:
                        os.unlink(tmp)
                    except OSError:  # pragma: no cover - cleanup
                        pass
                raise ValueError(
                    f"backup member {name!r} is corrupt: manifest records "
                    f"{expected[:12]}…, archive bytes hash to {actual[:12]}…"
                )
        # All digests verified; commit the whole set.
        for tmp_path, final_path in staged:
            os.replace(tmp_path, final_path)
    return manifest
