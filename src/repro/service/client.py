"""Resilient client SDKs for the allocation service wire protocol.

:class:`ServiceClient` (blocking sockets) and
:class:`AsyncServiceClient` (asyncio streams) speak the NDJSON protocol
with the failure semantics ``docs/SERVICE.md`` documents:

* connect and read **timeouts** on every wire interaction;
* **reconnect with exponential backoff + jitter** from the client's own
  seeded :class:`random.Random` stream (reprolint-R2 clean, and a fixed
  ``RetryPolicy.seed`` makes a retry schedule replayable in tests);
* client-generated **idempotency keys** (``"<client_id>/<n>"``) on
  every mutating operation by default, so a retry after an *ambiguous*
  failure — the connection died after the request was sent, before a
  response arrived — is answered exactly-once by the server's dedup
  window rather than double-applied.

The retry decision is principled, not heuristic:

* a **typed retryable error** (``overloaded``, ``timeout``,
  ``shutting_down`` — see ``RETRYABLE_CODES``) means the server
  *refused* the request before dispatching it, so resending is always
  safe, key or no key; ``retry_after`` hints are honored as a backoff
  floor;
* a **transport failure after send** is ambiguous — the operation may
  or may not have been applied.  With an idempotency key the client
  reconnects and resends (the dedup window collapses the duplicate);
  a mutating operation *without* a key raises
  :class:`ServiceUnavailable` instead of risking a double-apply.

Both clients expose the same typed helpers as the in-process
:class:`~repro.service.AllocationService` (``allocate``,
``allocate_retry``, ``record``) plus the admin verbs and a raw
:meth:`call` for tests.
"""

from __future__ import annotations

import asyncio
import json
import random
import socket
import time
import uuid
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Union

from repro.core.resources import Resource, ResourceVector
from repro.service.protocol import (
    ERR_SHUTTING_DOWN,
    ERR_TIMEOUT,
    MAX_LINE_BYTES,
    RETRYABLE_CODES,
    encode,
)
from repro.service.shards import MUTATING_OPS, OP_ALLOCATE, OP_RECORD, OP_RETRY

__all__ = [
    "RetryPolicy",
    "ServiceError",
    "ServiceUnavailable",
    "ServiceClient",
    "AsyncServiceClient",
]

#: Unmatched response lines tolerated while hunting for a request's
#: ``id`` echo before the stream is declared corrupt.
MAX_SKIPPED_LINES = 64


class ServiceError(RuntimeError):
    """The server answered with a non-retryable typed error."""

    def __init__(self, code: str, message: str) -> None:
        super().__init__(f"{code}: {message}")
        self.code = code

    @property
    def message(self) -> str:
        return str(self).split(": ", 1)[1]


class ServiceUnavailable(RuntimeError):
    """Retries exhausted, or an ambiguous failure that is unsafe to retry."""


class _SessionRefused(Exception):
    """A no-``id`` error line: the server refused before dispatch."""

    def __init__(self, code: str, retry_after: Optional[float]) -> None:
        super().__init__(code)
        self.code = code
        self.retry_after = retry_after


class _StreamCorrupt(Exception):
    """The response stream stopped being parseable NDJSON."""


@dataclass(frozen=True)
class RetryPolicy:
    """How a client reconnects and retries.

    ``backoff_base * backoff_factor**attempt`` seconds, capped at
    ``backoff_max``, jittered down by up to ``jitter`` of itself from a
    :class:`random.Random` seeded with ``seed`` — two clients with the
    same policy and seed sleep the same schedule, which is what makes
    chaos tests replayable.
    """

    max_attempts: int = 6
    connect_timeout: float = 5.0
    read_timeout: float = 5.0
    backoff_base: float = 0.05
    backoff_factor: float = 2.0
    backoff_max: float = 2.0
    jitter: float = 0.5
    seed: int = 0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {self.max_attempts}")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError(f"jitter must be in [0, 1], got {self.jitter}")

    def delay(
        self, attempt: int, rng: random.Random, retry_after: Optional[float] = None
    ) -> float:
        """The sleep before retry number ``attempt`` (0-based)."""
        base = min(self.backoff_max, self.backoff_base * self.backoff_factor**attempt)
        jittered = base * (1.0 - self.jitter * rng.random())
        if retry_after is not None:
            jittered = max(jittered, float(retry_after))
        return jittered


class _BaseClient:
    """Shared bookkeeping: ids, idempotency keys, retry classification."""

    def __init__(
        self,
        retry: Optional[RetryPolicy] = None,
        auto_key: bool = True,
        client_id: Optional[str] = None,
    ) -> None:
        self.retry = retry if retry is not None else RetryPolicy()
        self.auto_key = auto_key
        #: Stable prefix of generated idempotency keys.  Injectable so
        #: tests (and deterministic replays) control the key stream;
        #: defaults to a fresh UUID per client instance.
        # reprolint: disable=F3  # client identity is wire metadata, injectable for deterministic replays
        self.client_id = client_id if client_id is not None else uuid.uuid4().hex
        self._rng = random.Random(self.retry.seed)
        self._next_id = 0
        self._next_key = 0
        #: Wire attempts, including the first try of each call.
        self.attempts = 0
        #: Re-dials after a dropped/declared-dead connection.
        self.reconnects = 0
        #: Requests resent after a retryable error or ambiguous failure.
        self.retries = 0
        #: Unmatched response lines skipped while matching ids.
        self.skipped_lines = 0

    # -- document building -----------------------------------------------------

    def _prepare(self, doc: Dict[str, Any]) -> Dict[str, Any]:
        payload = dict(doc)
        if "id" not in payload:
            self._next_id += 1
            payload["id"] = f"{self.client_id}#{self._next_id}"
        if (
            self.auto_key
            and payload.get("op") in MUTATING_OPS
            and "key" not in payload
        ):
            payload["key"] = self.new_key()
        return payload

    def new_key(self) -> str:
        """A fresh idempotency key: ``"<client_id>/<n>"``."""
        self._next_key += 1
        return f"{self.client_id}/{self._next_key}"

    @staticmethod
    def _safe_to_resend(payload: Dict[str, Any]) -> bool:
        """Is a resend after an *ambiguous* failure safe?

        Non-mutating requests always are; mutating ones only with an
        idempotency key (the server's dedup window absorbs the copy).
        A batch is safe only if every nested request carries a key.
        """
        op = payload.get("op")
        if op == "allocate_batch":
            return all(
                isinstance(sub, dict) and sub.get("key")
                for sub in payload.get("requests", [])
            )
        if op in MUTATING_OPS:
            return bool(payload.get("key"))
        return True

    @staticmethod
    def _parse_response(line: bytes) -> Dict[str, Any]:
        try:
            doc = json.loads(line.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError):
            raise _StreamCorrupt("response line is not valid JSON") from None
        if not isinstance(doc, dict):
            raise _StreamCorrupt("response line is not a JSON object")
        return doc

    def _match(
        self, doc: Dict[str, Any], request_id: Any, skipped: int
    ) -> Optional[Dict[str, Any]]:
        """One parsed line: the answer, a refusal, or noise to skip."""
        if doc.get("id") == request_id:
            return doc
        if "id" not in doc and doc.get("ok") is False:
            error = doc.get("error") or {}
            raise _SessionRefused(
                str(error.get("code", "unknown")), error.get("retry_after")
            )
        self.skipped_lines += 1
        if skipped + 1 > MAX_SKIPPED_LINES:
            raise _StreamCorrupt(
                f"no response matching id {request_id!r} within "
                f"{MAX_SKIPPED_LINES} lines"
            )
        return None

    def _classify(self, response: Dict[str, Any]) -> Dict[str, Any]:
        """Raise for error responses; return the result payload."""
        if response.get("ok"):
            result = response.get("result")
            return result if isinstance(result, dict) else {}
        error = response.get("error") or {}
        code = str(error.get("code", "unknown"))
        message = str(error.get("message", ""))
        if code in RETRYABLE_CODES:
            raise _SessionRefused(code, error.get("retry_after"))
        raise ServiceError(code, message)

    def stats(self) -> Dict[str, int]:
        return {
            "attempts": self.attempts,
            "reconnects": self.reconnects,
            "retries": self.retries,
            "skipped_lines": self.skipped_lines,
        }


class ServiceClient(_BaseClient):
    """Blocking client over a UNIX socket path or a ``(host, port)`` pair.

    Usable as a context manager; safe to call from one thread at a time.
    """

    def __init__(
        self,
        socket_path: Optional[str] = None,
        host: str = "127.0.0.1",
        port: int = 0,
        retry: Optional[RetryPolicy] = None,
        auto_key: bool = True,
        client_id: Optional[str] = None,
    ) -> None:
        if socket_path is None and not port:
            raise ValueError("give a UNIX socket path or a TCP port")
        super().__init__(retry=retry, auto_key=auto_key, client_id=client_id)
        self._socket_path = socket_path
        self._host = host
        self._port = port
        self._sock: Optional[socket.socket] = None
        self._buffer = b""

    # -- connection ------------------------------------------------------------

    def connect(self) -> None:
        if self._sock is not None:
            return
        if self._socket_path is not None:
            sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            sock.settimeout(self.retry.connect_timeout)
            sock.connect(self._socket_path)
        else:
            sock = socket.create_connection(
                (self._host, self._port), timeout=self.retry.connect_timeout
            )
        sock.settimeout(self.retry.read_timeout)
        self._sock = sock
        self._buffer = b""

    def close(self) -> None:
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass
            self._sock = None
        self._buffer = b""

    def _drop(self) -> None:
        self.close()
        self.reconnects += 1

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- wire ------------------------------------------------------------------

    def _read_line(self) -> bytes:
        assert self._sock is not None
        while b"\n" not in self._buffer:
            if len(self._buffer) > MAX_LINE_BYTES:
                raise _StreamCorrupt("unterminated response line over protocol cap")
            chunk = self._sock.recv(65536)
            if not chunk:
                raise ConnectionError("server closed the connection")
            self._buffer += chunk
        line, self._buffer = self._buffer.split(b"\n", 1)
        return line

    def _exchange(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        assert self._sock is not None
        self._sock.sendall(encode(payload))
        skipped = 0
        while True:
            doc = self._parse_response(self._read_line())
            matched = self._match(doc, payload["id"], skipped)
            if matched is not None:
                return matched
            skipped += 1

    # -- the request loop ------------------------------------------------------

    def call(self, doc: Dict[str, Any]) -> Dict[str, Any]:
        """Send one request document; returns the result payload.

        Retries per :class:`RetryPolicy`; raises :class:`ServiceError`
        on a non-retryable server error and
        :class:`ServiceUnavailable` when retries are exhausted or an
        ambiguous failure cannot safely be retried.
        """
        payload = self._prepare(doc)
        last: Optional[BaseException] = None
        for attempt in range(self.retry.max_attempts):
            self.attempts += 1
            if attempt:
                self.retries += 1
            try:
                self.connect()
                return self._classify(self._exchange(payload))
            except _SessionRefused as exc:
                # Typed refusal: never dispatched, always safe to retry.
                last = ServiceUnavailable(f"server refused: {exc.code}")
                if exc.code in (ERR_TIMEOUT, ERR_SHUTTING_DOWN):
                    self._drop()  # that session is done; dial fresh
                self._sleep(attempt, exc.retry_after)
            except (OSError, ConnectionError, _StreamCorrupt, socket.timeout) as exc:
                ambiguous = self._sock is not None
                self._drop()
                if ambiguous and not self._safe_to_resend(payload):
                    raise ServiceUnavailable(
                        "connection failed after an un-keyed mutating request "
                        "was sent; outcome unknown, refusing to double-apply"
                    ) from exc
                last = exc
                self._sleep(attempt, None)
        raise ServiceUnavailable(
            f"{self.retry.max_attempts} attempts exhausted"
        ) from last

    def _sleep(self, attempt: int, retry_after: Optional[float]) -> None:
        if attempt + 1 >= self.retry.max_attempts:
            return  # no more attempts; skip the pointless sleep
        time.sleep(self.retry.delay(attempt, self._rng, retry_after))

    # -- typed helpers ---------------------------------------------------------

    def ping(self) -> bool:
        return bool(self.call({"op": "ping"}).get("pong"))

    def server_stats(self) -> Dict[str, Any]:
        return self.call({"op": "stats"})

    def health(self) -> Dict[str, Any]:
        return self.call({"op": "health"})

    def shutdown(self) -> bool:
        return bool(self.call({"op": "shutdown"}).get("shutting_down"))

    def snapshot(self) -> str:
        """Force a snapshot cut; returns the written envelope path."""
        return str(self.call({"op": "snapshot"})["path"])

    def allocate_batch(
        self, requests: Sequence[Dict[str, Any]]
    ) -> List[Dict[str, Any]]:
        """Submit mutating sub-requests in one round trip.

        Each entry is a mutating request document (``allocate`` /
        ``allocate_retry`` / ``record``, no nesting); the server answers
        with one response document per entry, in request order.
        """
        doc: Dict[str, Any] = {
            "op": "allocate_batch",
            "requests": [dict(sub) for sub in requests],
        }
        responses = self.call(doc)["responses"]
        return list(responses) if isinstance(responses, list) else []

    def allocate(
        self, category: str, task_id: int, key: Optional[str] = None
    ) -> ResourceVector:
        doc: Dict[str, Any] = {
            "op": OP_ALLOCATE,
            "category": category,
            "task_id": task_id,
        }
        if key is not None:
            doc["key"] = key
        return ResourceVector.from_state(self.call(doc)["allocation"])

    def allocate_retry(
        self,
        category: str,
        task_id: int,
        previous: ResourceVector,
        observed: ResourceVector,
        exhausted: Sequence[Union[Resource, str]],
        key: Optional[str] = None,
    ) -> ResourceVector:
        doc: Dict[str, Any] = {
            "op": OP_RETRY,
            "category": category,
            "task_id": task_id,
            "previous": previous.state_dict(),
            "observed": observed.state_dict(),
            "exhausted": [str(res) for res in exhausted],
        }
        if key is not None:
            doc["key"] = key
        return ResourceVector.from_state(self.call(doc)["allocation"])

    def record(
        self,
        category: str,
        peaks: ResourceVector,
        task_id: int,
        significance: Optional[float] = None,
        key: Optional[str] = None,
    ) -> int:
        doc: Dict[str, Any] = {
            "op": OP_RECORD,
            "category": category,
            "task_id": task_id,
            "peaks": peaks.state_dict(),
        }
        if significance is not None:
            doc["significance"] = significance
        if key is not None:
            doc["key"] = key
        return int(self.call(doc)["records_count"])


class AsyncServiceClient(_BaseClient):
    """asyncio client with the same retry semantics as :class:`ServiceClient`."""

    def __init__(
        self,
        socket_path: Optional[str] = None,
        host: str = "127.0.0.1",
        port: int = 0,
        retry: Optional[RetryPolicy] = None,
        auto_key: bool = True,
        client_id: Optional[str] = None,
    ) -> None:
        if socket_path is None and not port:
            raise ValueError("give a UNIX socket path or a TCP port")
        super().__init__(retry=retry, auto_key=auto_key, client_id=client_id)
        self._socket_path = socket_path
        self._host = host
        self._port = port
        self._reader: Optional[asyncio.StreamReader] = None
        self._writer: Optional[asyncio.StreamWriter] = None

    # -- connection ------------------------------------------------------------

    async def connect(self) -> None:
        if self._writer is not None:
            return
        if self._socket_path is not None:
            opening = asyncio.open_unix_connection(
                self._socket_path, limit=MAX_LINE_BYTES + 1024
            )
        else:
            opening = asyncio.open_connection(
                self._host, self._port, limit=MAX_LINE_BYTES + 1024
            )
        self._reader, self._writer = await asyncio.wait_for(
            opening, timeout=self.retry.connect_timeout
        )

    async def close(self) -> None:
        if self._writer is not None:
            try:
                self._writer.close()
                await self._writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, OSError):
                pass
            self._reader = None
            self._writer = None

    async def _drop(self) -> None:
        await self.close()
        self.reconnects += 1

    async def __aenter__(self) -> "AsyncServiceClient":
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.close()

    # -- wire ------------------------------------------------------------------

    async def _exchange(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        assert self._reader is not None and self._writer is not None
        self._writer.write(encode(payload))
        await self._writer.drain()
        skipped = 0
        while True:
            line = await asyncio.wait_for(
                self._reader.readline(), timeout=self.retry.read_timeout
            )
            if not line:
                raise ConnectionError("server closed the connection")
            doc = self._parse_response(line.rstrip(b"\n"))
            matched = self._match(doc, payload["id"], skipped)
            if matched is not None:
                return matched
            skipped += 1

    # -- the request loop ------------------------------------------------------

    async def call(self, doc: Dict[str, Any]) -> Dict[str, Any]:
        """Async twin of :meth:`ServiceClient.call` (same semantics)."""
        payload = self._prepare(doc)
        last: Optional[BaseException] = None
        for attempt in range(self.retry.max_attempts):
            self.attempts += 1
            if attempt:
                self.retries += 1
            try:
                await self.connect()
                return self._classify(await self._exchange(payload))
            except _SessionRefused as exc:
                last = ServiceUnavailable(f"server refused: {exc.code}")
                if exc.code in (ERR_TIMEOUT, ERR_SHUTTING_DOWN):
                    await self._drop()
                await self._sleep(attempt, exc.retry_after)
            except (
                OSError,
                ConnectionError,
                _StreamCorrupt,
                asyncio.TimeoutError,
                ValueError,
            ) as exc:
                ambiguous = self._writer is not None
                await self._drop()
                if ambiguous and not self._safe_to_resend(payload):
                    raise ServiceUnavailable(
                        "connection failed after an un-keyed mutating request "
                        "was sent; outcome unknown, refusing to double-apply"
                    ) from exc
                last = exc
                await self._sleep(attempt, None)
        raise ServiceUnavailable(
            f"{self.retry.max_attempts} attempts exhausted"
        ) from last

    async def _sleep(self, attempt: int, retry_after: Optional[float]) -> None:
        if attempt + 1 >= self.retry.max_attempts:
            return
        await asyncio.sleep(self.retry.delay(attempt, self._rng, retry_after))

    # -- typed helpers ---------------------------------------------------------

    async def ping(self) -> bool:
        return bool((await self.call({"op": "ping"})).get("pong"))

    async def server_stats(self) -> Dict[str, Any]:
        return await self.call({"op": "stats"})

    async def health(self) -> Dict[str, Any]:
        return await self.call({"op": "health"})

    async def shutdown(self) -> bool:
        return bool((await self.call({"op": "shutdown"})).get("shutting_down"))

    async def snapshot(self) -> str:
        """Force a snapshot cut; returns the written envelope path."""
        return str((await self.call({"op": "snapshot"}))["path"])

    async def allocate_batch(
        self, requests: Sequence[Dict[str, Any]]
    ) -> List[Dict[str, Any]]:
        """Submit mutating sub-requests in one round trip.

        Each entry is a mutating request document (``allocate`` /
        ``allocate_retry`` / ``record``, no nesting); the server answers
        with one response document per entry, in request order.
        """
        doc: Dict[str, Any] = {
            "op": "allocate_batch",
            "requests": [dict(sub) for sub in requests],
        }
        responses = (await self.call(doc))["responses"]
        return list(responses) if isinstance(responses, list) else []

    async def allocate(
        self, category: str, task_id: int, key: Optional[str] = None
    ) -> ResourceVector:
        doc: Dict[str, Any] = {
            "op": OP_ALLOCATE,
            "category": category,
            "task_id": task_id,
        }
        if key is not None:
            doc["key"] = key
        return ResourceVector.from_state((await self.call(doc))["allocation"])

    async def allocate_retry(
        self,
        category: str,
        task_id: int,
        previous: ResourceVector,
        observed: ResourceVector,
        exhausted: Sequence[Union[Resource, str]],
        key: Optional[str] = None,
    ) -> ResourceVector:
        doc: Dict[str, Any] = {
            "op": OP_RETRY,
            "category": category,
            "task_id": task_id,
            "previous": previous.state_dict(),
            "observed": observed.state_dict(),
            "exhausted": [str(res) for res in exhausted],
        }
        if key is not None:
            doc["key"] = key
        return ResourceVector.from_state((await self.call(doc))["allocation"])

    async def record(
        self,
        category: str,
        peaks: ResourceVector,
        task_id: int,
        significance: Optional[float] = None,
        key: Optional[str] = None,
    ) -> int:
        doc: Dict[str, Any] = {
            "op": OP_RECORD,
            "category": category,
            "task_id": task_id,
            "peaks": peaks.state_dict(),
        }
        if significance is not None:
            doc["significance"] = significance
        if key is not None:
            doc["key"] = key
        return int((await self.call(doc))["records_count"])
