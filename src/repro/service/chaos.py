"""Deterministic chaos for the allocation service: network faults + crash points.

The paper's opportunistic setting — workers and links vanishing
mid-flight — applies to the service edge too, so this module makes the
two failure families *injectable, seeded, and replayable*:

* :class:`ChaosProxy` — an asyncio shim between a client and the
  server that injects network faults into the byte streams it forwards:
  mid-request disconnects, frame truncation, byte-level splits, delays,
  interleaved garbage bytes, and slow-loris dribble.  Faults are drawn
  from a per-connection, per-direction seeded stream **keyed on byte
  offsets**, so the event schedule is invariant to TCP chunk boundaries:
  the same :class:`ChaosConfig` seed always yields the same
  ``(offset, kind)`` schedule (the replay test asserts this).  With all
  weights zero (the default) the proxy is a pure pass-through.
* :class:`CrashPoints` — an in-process registry of *named crash sites*
  at the WAL-append / apply / snapshot boundaries in
  ``repro.service.shards`` and ``repro.service.service``.  Arming a
  site makes the N-th hit raise :class:`CrashPointFired` (in-process
  crash simulation: pending futures fail ambiguously, exactly like a
  client that lost its connection mid-operation) or hard-exit the
  process (daemon tests, via ``repro-experiments serve --chaos-crash``).
  Every "what if we die here?" question becomes a seeded test; with
  nothing armed the registry is a dictionary lookup and the service
  behaves bit-identically to the chaos-free build.

Nothing here is imported by the hot path unless chaos is requested;
``shards.py``/``service.py`` only call :meth:`CrashPoints.hit`, whose
disarmed fast path is a single attribute check.
"""

from __future__ import annotations

import asyncio
import os
import random
from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Tuple

__all__ = [
    "CrashPointFired",
    "CrashPoints",
    "CRASH_POINTS",
    "seeded_crash_plan",
    "ChaosConfig",
    "ChaosEvent",
    "ChaosSchedule",
    "ChaosProxy",
    "CHAOS_PROFILES",
    "EVENT_KINDS",
    "make_chaos_config",
    "schedule_preview",
]


# ---------------------------------------------------------------------------
# Crash points
# ---------------------------------------------------------------------------


class CrashPointFired(RuntimeError):
    """An armed crash site fired: the process is "dead" at this boundary.

    In-process tests observe this on every in-flight future — the
    ambiguous outcome a real client sees when its daemon dies
    mid-operation (the op may or may not have been logged/applied).
    """

    def __init__(self, site: str, hit: int) -> None:
        super().__init__(f"crash point {site!r} fired on hit {hit}")
        self.site = site
        self.hit = hit


class CrashPoints:
    """Registry of named crash sites, armed one plan at a time.

    Sites are registered at import time by the modules that host them,
    so tests can enumerate :meth:`sites` and build a full crash matrix.
    A plan ``(site, at_hit)`` fires on the ``at_hit``-th hit of ``site``
    *since arming* and then auto-disarms — recovery code re-traversing
    the same boundary (e.g. a snapshot during WAL replay) does not
    re-crash unless the test re-arms.

    ``mode="raise"`` raises :class:`CrashPointFired` (in-process crash
    simulation); ``mode="exit"`` calls ``os._exit(70)`` — no cleanup,
    no snapshot, no atexit — for daemon subprocess tests.
    """

    EXIT_CODE = 70
    MODES = ("raise", "exit")

    def __init__(self) -> None:
        self._sites: List[str] = []
        self._plan: Optional[Tuple[str, int, str]] = None
        self._counts: Dict[str, int] = {}
        #: ``(site, hit)`` log of fired crash points (for determinism tests).
        self.fired: List[Tuple[str, int]] = []

    def register(self, name: str) -> str:
        """Declare a crash site; returns the name for use at the call site."""
        if name not in self._sites:
            self._sites.append(name)
        return name

    def sites(self) -> Tuple[str, ...]:
        """Every registered site, in registration order."""
        return tuple(self._sites)

    @property
    def armed(self) -> Optional[Tuple[str, int, str]]:
        return self._plan

    def arm(self, site: str, at_hit: int = 1, mode: str = "raise") -> None:
        """Fire ``site`` on its ``at_hit``-th upcoming hit."""
        if site not in self._sites:
            raise ValueError(f"unknown crash site {site!r}; registered: {self._sites}")
        if at_hit < 1:
            raise ValueError(f"at_hit must be >= 1, got {at_hit}")
        if mode not in self.MODES:
            raise ValueError(f"mode must be one of {self.MODES}, got {mode!r}")
        self._plan = (site, at_hit, mode)
        self._counts = {}

    def disarm(self) -> None:
        self._plan = None
        self._counts = {}

    def reset(self) -> None:
        """Disarm and clear the fired log (test isolation)."""
        self.disarm()
        self.fired = []

    def hit(self, site: str) -> None:
        """Announce execution reached ``site``; fires if armed for it."""
        if self._plan is None:  # disarmed fast path
            return
        planned_site, at_hit, mode = self._plan
        if site != planned_site:
            return
        count = self._counts.get(site, 0) + 1
        self._counts[site] = count
        if count < at_hit:
            return
        self._plan = None  # auto-disarm: recovery must not re-crash
        self.fired.append((site, count))
        if mode == "exit":
            os._exit(self.EXIT_CODE)
        raise CrashPointFired(site, count)


#: The process-wide registry every crash site hits.
CRASH_POINTS = CrashPoints()


def seeded_crash_plan(
    seed: int, sites: Optional[Tuple[str, ...]] = None, max_hit: int = 5
) -> Tuple[str, int]:
    """Deterministically pick ``(site, at_hit)`` from a fault seed.

    Same seed, same registered sites => same plan — so a chaos schedule
    that includes a crash is reproducible from its seed alone.
    """
    pool = sites if sites is not None else CRASH_POINTS.sites()
    if not pool:
        raise ValueError("no crash sites registered")
    rng = random.Random(f"repro-crash-plan:{seed}")
    return pool[rng.randrange(len(pool))], rng.randint(1, max_hit)


# ---------------------------------------------------------------------------
# Network fault schedules
# ---------------------------------------------------------------------------

#: Fault kinds the proxy can inject.
EVENT_KINDS = ("disconnect", "truncate", "garbage", "delay", "split", "dribble")


@dataclass(frozen=True)
class ChaosConfig:
    """Seeded fault mix for one :class:`ChaosProxy`.

    Weights are relative odds of each fault kind; all-zero (the
    default) disables injection entirely.  ``mean_gap_bytes`` sets the
    mean distance between fault events in each direction's byte stream
    (exponential gaps, so schedules are memoryless and seed-stable).
    """

    seed: int = 0
    mean_gap_bytes: float = 512.0
    disconnect_weight: float = 0.0
    truncate_weight: float = 0.0
    garbage_weight: float = 0.0
    delay_weight: float = 0.0
    split_weight: float = 0.0
    dribble_weight: float = 0.0
    #: Wall-clock pause for ``delay`` events (and the per-byte dribble pace).
    delay_s: float = 0.002
    #: Upper bound on injected garbage runs (bytes).
    garbage_max_bytes: int = 24
    #: Bytes forwarded one-at-a-time by ``split``/``dribble`` events.
    slow_bytes: int = 16
    #: Apply faults to client->server ("c2s"), server->client ("s2c"), or both.
    directions: Tuple[str, ...] = ("c2s", "s2c")

    def weights(self) -> Tuple[float, ...]:
        return (
            self.disconnect_weight,
            self.truncate_weight,
            self.garbage_weight,
            self.delay_weight,
            self.split_weight,
            self.dribble_weight,
        )

    @property
    def enabled(self) -> bool:
        return any(w > 0 for w in self.weights())


#: Named fault mixes for the CLI/experiment matrix.
CHAOS_PROFILES = ("none", "drop", "torn", "garbage", "slow", "mixed")


def make_chaos_config(profile: str, seed: int = 0, mean_gap_bytes: float = 600.0) -> ChaosConfig:
    """A :class:`ChaosConfig` for one named profile."""
    base = ChaosConfig(seed=seed, mean_gap_bytes=mean_gap_bytes)
    if profile == "none":
        return base
    if profile == "drop":
        return replace(base, disconnect_weight=1.0)
    if profile == "torn":
        return replace(base, truncate_weight=1.0)
    if profile == "garbage":
        return replace(base, garbage_weight=1.0)
    if profile == "slow":
        return replace(base, delay_weight=1.0, split_weight=1.0, dribble_weight=1.0)
    if profile == "mixed":
        return replace(
            base,
            disconnect_weight=1.0,
            truncate_weight=0.5,
            garbage_weight=1.0,
            delay_weight=1.0,
            split_weight=1.0,
            dribble_weight=0.5,
        )
    raise ValueError(f"unknown chaos profile {profile!r}; expected one of {CHAOS_PROFILES}")


@dataclass(frozen=True)
class ChaosEvent:
    """One scheduled fault: fire ``kind`` at absolute byte ``offset``."""

    offset: int
    kind: str
    #: Pre-drawn payload (garbage bytes), so the schedule alone fixes
    #: every injected byte.
    payload: bytes = b""


class ChaosSchedule:
    """The deterministic fault schedule of one connection direction.

    Events are pre-drawn lazily from ``random.Random`` seeded with
    ``(config.seed, connection, direction)`` (string seeding, which is
    stable across processes and ``PYTHONHASHSEED``).  Offsets are
    absolute positions in the direction's byte stream, which makes the
    schedule independent of how TCP happens to chunk the bytes.
    """

    def __init__(self, config: ChaosConfig, connection: int, direction: str) -> None:
        self._config = config
        self._rng = random.Random(
            f"repro-chaos:{config.seed}:{connection}:{direction}"
        )
        self._enabled = config.enabled and direction in config.directions
        self._next_offset = 0
        self._pending: Optional[ChaosEvent] = None

    def _draw(self) -> ChaosEvent:
        config = self._config
        rng = self._rng
        gap = max(1, int(rng.expovariate(1.0 / config.mean_gap_bytes)))
        self._next_offset += gap
        kind = rng.choices(EVENT_KINDS, weights=config.weights())[0]
        payload = b""
        if kind == "garbage":
            # Control bytes (0x00-0x07): strict JSON rejects them both
            # inside strings and between tokens, so an injected run is
            # always *detectable* corruption — the receiver sees a
            # malformed line and the keyed retry repairs it.  (Arbitrary
            # bytes could mutate a checksum-less JSON line into a
            # different valid request, which no wire layer can catch;
            # the protocol fuzz suite covers that hostile case.)
            length = rng.randint(1, max(1, config.garbage_max_bytes))
            payload = bytes(rng.randrange(8) for _ in range(length))
        return ChaosEvent(self._next_offset, kind, payload)

    def peek(self) -> Optional[ChaosEvent]:
        """The next scheduled event, or None when injection is off."""
        if not self._enabled:
            return None
        if self._pending is None:
            self._pending = self._draw()
        return self._pending

    def pop(self) -> ChaosEvent:
        event = self.peek()
        assert event is not None
        self._pending = None
        return event


# ---------------------------------------------------------------------------
# The proxy
# ---------------------------------------------------------------------------


@dataclass
class _Direction:
    """One pump: reader -> (faults) -> writer."""

    name: str
    reader: asyncio.StreamReader
    writer: asyncio.StreamWriter
    schedule: ChaosSchedule
    offset: int = 0
    closed: bool = False


class ChaosProxy:
    """Seeded network-fault proxy in front of an allocation server.

    Listens on its own UNIX socket and forwards every accepted
    connection to ``upstream_path``, pumping bytes through the fault
    schedules.  ``events`` records every fired fault as
    ``(connection, direction, offset, kind)`` — the replay test runs
    the same traffic twice and asserts identical logs.
    """

    def __init__(self, upstream_path: str, listen_path: str, config: ChaosConfig) -> None:
        self._upstream_path = upstream_path
        self._listen_path = listen_path
        self._config = config
        self._server: Optional[asyncio.AbstractServer] = None
        self._connections = 0
        #: Fired fault log: (connection index, direction, byte offset, kind).
        self.events: List[Tuple[int, str, int, str]] = []

    @property
    def listen_path(self) -> str:
        return self._listen_path

    @property
    def config(self) -> ChaosConfig:
        return self._config

    async def start(self) -> None:
        self._server = await asyncio.start_unix_server(
            self._handle, path=self._listen_path
        )

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    async def _handle(
        self, client_reader: asyncio.StreamReader, client_writer: asyncio.StreamWriter
    ) -> None:
        connection = self._connections
        self._connections += 1
        try:
            upstream_reader, upstream_writer = await asyncio.open_unix_connection(
                self._upstream_path
            )
        except OSError:
            client_writer.close()
            return
        c2s = _Direction(
            "c2s",
            client_reader,
            upstream_writer,
            ChaosSchedule(self._config, connection, "c2s"),
        )
        s2c = _Direction(
            "s2c",
            upstream_reader,
            client_writer,
            ChaosSchedule(self._config, connection, "s2c"),
        )
        try:
            await asyncio.gather(
                self._pump(connection, c2s, s2c), self._pump(connection, s2c, c2s)
            )
        except asyncio.CancelledError:
            # Proxy stop cancels in-flight pumps; close quietly below.
            pass
        finally:
            for writer in (client_writer, upstream_writer):
                try:
                    writer.close()
                except OSError:  # pragma: no cover - already torn down
                    pass

    async def _pump(self, connection: int, direction: _Direction, other: _Direction) -> None:
        try:
            while not direction.closed:
                try:
                    chunk = await direction.reader.read(4096)
                except (ConnectionResetError, BrokenPipeError, OSError):
                    break
                if not chunk:
                    break
                if not await self._forward(connection, direction, other, chunk):
                    break
        finally:
            direction.closed = True
            try:
                if direction.writer.can_write_eof():
                    direction.writer.write_eof()
            except (OSError, RuntimeError):
                pass

    async def _forward(
        self, connection: int, direction: _Direction, other: _Direction, chunk: bytes
    ) -> bool:
        """Forward one chunk through the fault schedule.

        Returns False when a fault tore the connection down.
        """
        while chunk:
            event = direction.schedule.peek()
            if event is None or event.offset >= direction.offset + len(chunk):
                direction.offset += len(chunk)
                return await self._write(direction, chunk)
            # Forward the clean prefix, then fire the event at its offset.
            cut = max(0, event.offset - direction.offset)
            prefix, chunk = chunk[:cut], chunk[cut:]
            direction.offset += len(prefix)
            if prefix and not await self._write(direction, prefix):
                return False
            direction.schedule.pop()
            self.events.append((connection, direction.name, event.offset, event.kind))
            if event.kind == "disconnect":
                self._tear_down(direction, other)
                return False
            if event.kind == "truncate":
                # Torn frame: drop the rest of this chunk, then die.
                self._tear_down(direction, other)
                return False
            if event.kind == "garbage":
                if not await self._write(direction, event.payload):
                    return False
            elif event.kind == "delay":
                await asyncio.sleep(self._config.delay_s)
            elif event.kind in ("split", "dribble"):
                slow = chunk[: self._config.slow_bytes]
                chunk = chunk[len(slow) :]
                direction.offset += len(slow)
                for i in range(len(slow)):
                    if not await self._write(direction, slow[i : i + 1]):
                        return False
                    if event.kind == "dribble":
                        await asyncio.sleep(self._config.delay_s / 4.0)
        return True

    async def _write(self, direction: _Direction, data: bytes) -> bool:
        try:
            direction.writer.write(data)
            await direction.writer.drain()
            return True
        except (ConnectionResetError, BrokenPipeError, OSError):
            direction.closed = True
            return False

    def _tear_down(self, direction: _Direction, other: _Direction) -> None:
        """Mid-request disconnect: abort both halves of the session."""
        direction.closed = True
        other.closed = True
        for side in (direction, other):
            try:
                side.writer.close()
            except OSError:  # pragma: no cover - already closed
                pass

    def event_kinds(self) -> Dict[str, int]:
        """Fired-event histogram (diagnostics and experiment tables)."""
        counts: Dict[str, int] = {}
        for _, _, _, kind in self.events:
            counts[kind] = counts.get(kind, 0) + 1
        return counts


def schedule_preview(
    config: ChaosConfig, connection: int, direction: str, n: int
) -> List[Tuple[int, str]]:
    """First ``n`` ``(offset, kind)`` pairs of a schedule (replay tests)."""
    schedule = ChaosSchedule(config, connection, direction)
    out: List[Tuple[int, str]] = []
    for _ in range(n):
        event = schedule.peek()
        if event is None:
            break
        schedule.pop()
        out.append((event.offset, event.kind))
    return out
