"""Allocation-as-a-service: the allocator behind an async request API.

The simulator drives a :class:`~repro.core.allocator.TaskOrientedAllocator`
inline; a production scheduler instead *queries* one per task dispatch
(Ponder-style online prediction).  This package is that deployment
shape:

* :class:`ServiceConfig` — shard count, durability, backpressure and
  the underlying :class:`~repro.core.allocator.AllocatorConfig`.
* :class:`AllocationService` — the in-process async API:
  ``allocate`` / ``allocate_retry`` / ``record`` / ``allocate_batch``,
  plus snapshots, stats, and WAL-backed crash recovery.
* :class:`AllocationServer` / :func:`run_daemon` — a newline-delimited
  JSON front end over TCP or a UNIX socket (``repro-experiments
  serve``).

See ``docs/SERVICE.md`` for the architecture and the wire protocol.
"""

from repro.service.config import ServiceConfig
from repro.service.protocol import ProtocolError
from repro.service.server import AllocationServer, run_daemon
from repro.service.service import AllocationService
from repro.service.shards import AllocationShard, apply_op, shard_of, shard_seed

__all__ = [
    "ServiceConfig",
    "AllocationService",
    "AllocationServer",
    "AllocationShard",
    "ProtocolError",
    "apply_op",
    "run_daemon",
    "shard_of",
    "shard_seed",
]
