"""Allocation-as-a-service: the allocator behind an async request API.

The simulator drives a :class:`~repro.core.allocator.TaskOrientedAllocator`
inline; a production scheduler instead *queries* one per task dispatch
(Ponder-style online prediction).  This package is that deployment
shape:

* :class:`ServiceConfig` — shard count, durability, backpressure,
  connection/in-flight bounds, the idempotency dedup window, and the
  underlying :class:`~repro.core.allocator.AllocatorConfig`.
* :class:`AllocationService` — the in-process async API:
  ``allocate`` / ``allocate_retry`` / ``record`` / ``allocate_batch``,
  plus snapshots, stats/health, and WAL-backed crash recovery.
* :class:`AllocationServer` / :func:`run_daemon` — a newline-delimited
  JSON front end over TCP or a UNIX socket (``repro-experiments
  serve``), with typed error codes and overload shedding.
* :class:`ServiceClient` / :class:`AsyncServiceClient` — resilient SDKs
  with timeouts, seeded backoff + jitter reconnects, and idempotency
  keys for exactly-once mutating calls across ambiguous failures.
* :mod:`repro.service.chaos` — the seeded fault layer:
  :class:`ChaosProxy` network-fault injection and the
  :data:`CRASH_POINTS` registry of named crash sites.
* :mod:`repro.service.fsck` — offline storage audit
  (:func:`run_fsck`) and digest-manifested backup round-trips
  (:func:`export_backup` / :func:`import_backup`); the
  ``repro-experiments fsck`` / ``snapshot-export`` /
  ``snapshot-import`` subcommands.

See ``docs/SERVICE.md`` for the architecture, the wire protocol, and
the failure semantics (including the storage-failure chapter:
checksummed WAL frames, generational snapshots, degraded mode).
"""

from repro.service.chaos import (
    CHAOS_PROFILES,
    CRASH_POINTS,
    ChaosConfig,
    ChaosProxy,
    CrashPointFired,
    make_chaos_config,
)
from repro.service.client import (
    AsyncServiceClient,
    RetryPolicy,
    ServiceClient,
    ServiceError,
    ServiceUnavailable,
)
from repro.service.config import ServiceConfig
from repro.service.fsck import (
    FsckReport,
    export_backup,
    import_backup,
    run_fsck,
)
from repro.service.protocol import ProtocolError
from repro.service.server import AllocationServer, run_daemon
from repro.service.service import AllocationService
from repro.service.shards import (
    AllocationShard,
    StorageUnavailable,
    apply_op,
    shard_of,
    shard_seed,
)

__all__ = [
    "ServiceConfig",
    "AllocationService",
    "AllocationServer",
    "AllocationShard",
    "ProtocolError",
    "apply_op",
    "run_daemon",
    "shard_of",
    "shard_seed",
    "ServiceClient",
    "AsyncServiceClient",
    "RetryPolicy",
    "ServiceError",
    "ServiceUnavailable",
    "StorageUnavailable",
    "FsckReport",
    "run_fsck",
    "export_backup",
    "import_backup",
    "ChaosConfig",
    "ChaosProxy",
    "CrashPointFired",
    "CRASH_POINTS",
    "CHAOS_PROFILES",
    "make_chaos_config",
]
