"""NDJSON front end: the allocation service over TCP or a UNIX socket.

One connection, one line-oriented session: the server reads requests
sequentially per connection and answers in order, so a client that
awaits each response before sending the next gets the same per-client
ordering guarantee the in-process API provides.  Malformed lines get a
typed ``ok: false`` error and the connection stays usable; only
transport errors, oversized lines, and read-deadline expiries close it.

Hardening (all bounds come from :class:`~repro.service.config.ServiceConfig`):

* at most ``max_connections`` concurrent sessions — the excess
  connection is answered with one ``overloaded`` error (carrying
  ``retry_after``) and closed cleanly, never silently dropped;
* at most ``max_inflight_requests`` requests in flight across all
  sessions — excess requests are answered ``overloaded`` without ever
  touching a shard queue;
* a per-connection ``read_timeout``: a client idle (or slow-loris
  dribbling) past the deadline mid-request gets a ``timeout`` error and
  a clean disconnect;
* a request line over the 1 MiB protocol cap gets a ``too_large`` error
  and a clean disconnect (the stream reader's limit is raised to match,
  so the cap is enforced by the protocol layer, not a raw
  ``LimitOverrunError`` traceback);
* unexpected server errors answer with code ``internal`` only — the
  exception detail goes to the ``repro.service`` logger, never to the
  wire.

:func:`run_daemon` is the long-lived entry point behind
``repro-experiments serve``: it starts the service (recovering from
``data_dir`` when present), binds the socket, announces readiness with
one JSON line on stdout, and converts SIGTERM/SIGINT into a clean
drain + snapshot + exit(128+signum) — the kill/resume golden test
SIGTERMs it mid-ingest and asserts the resumed response stream is
bit-identical.
"""

from __future__ import annotations

import asyncio
import json
import logging
import signal as _signal
import sys
from typing import Any, Dict, Optional

from repro.service.config import ServiceConfig
from repro.service.protocol import (
    ERR_INTERNAL,
    ERR_OVERLOADED,
    ERR_SHUTTING_DOWN,
    ERR_STORAGE,
    ERR_TIMEOUT,
    ERR_TOO_LARGE,
    MAX_LINE_BYTES,
    ProtocolError,
    encode,
    error_response,
    ok_response,
    parse_line,
    validate_request,
)
from repro.service.service import AllocationService
from repro.service.shards import StorageUnavailable

__all__ = ["AllocationServer", "run_daemon"]

logger = logging.getLogger("repro.service")

#: Backoff hint (seconds) attached to ``overloaded`` responses.
RETRY_AFTER_S = 0.05


class AllocationServer:
    """Bind an :class:`AllocationService` to a TCP or UNIX socket."""

    def __init__(
        self,
        service: AllocationService,
        socket_path: Optional[str] = None,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        if socket_path is not None and port:
            raise ValueError("give either a UNIX socket path or a TCP port, not both")
        self._service = service
        self._socket_path = socket_path
        self._host = host
        self._port = port
        self._server: Optional[asyncio.AbstractServer] = None
        self._connections = 0
        self._inflight = 0
        #: Sessions refused at the connection bound (introspection).
        self.rejected_connections = 0
        #: Requests refused at the in-flight bound (introspection).
        self.rejected_requests = 0
        self.shutdown_requested: asyncio.Event = asyncio.Event()

    @property
    def service(self) -> AllocationService:
        return self._service

    @property
    def connections(self) -> int:
        """Sessions currently accepted (inside the connection bound)."""
        return self._connections

    @property
    def endpoint(self) -> str:
        """Human-readable bound endpoint (valid after :meth:`start`)."""
        if self._socket_path is not None:
            return f"unix:{self._socket_path}"
        assert self._server is not None
        sock = self._server.sockets[0]
        host, port = sock.getsockname()[:2]
        return f"tcp:{host}:{port}"

    async def start(self) -> None:
        # limit must exceed the protocol line cap so an oversized line
        # surfaces as a catchable ValueError from readline() (handled as
        # too_large below) instead of silently truncating valid lines.
        if self._socket_path is not None:
            self._server = await asyncio.start_unix_server(
                self._handle_connection,
                path=self._socket_path,
                limit=MAX_LINE_BYTES + 1024,
            )
        else:
            self._server = await asyncio.start_server(
                self._handle_connection,
                host=self._host,
                port=self._port,
                limit=MAX_LINE_BYTES + 1024,
            )

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    # -- per-connection session ------------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        config = self._service.config
        if self._connections >= config.max_connections:
            self.rejected_connections += 1
            await self._refuse(
                writer,
                error_response(
                    None,
                    ERR_OVERLOADED,
                    f"connection limit ({config.max_connections}) reached",
                    retry_after=RETRY_AFTER_S,
                ),
            )
            return
        self._connections += 1
        try:
            await self._session(reader, writer)
        finally:
            self._connections -= 1

    async def _refuse(
        self, writer: asyncio.StreamWriter, response: Dict[str, Any]
    ) -> None:
        """Answer one error line and close — used for refused sessions."""
        try:
            writer.write(encode(response))
            await writer.drain()
        except (ConnectionResetError, BrokenPipeError, OSError):
            pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (
                ConnectionResetError,
                BrokenPipeError,
                OSError,
                asyncio.CancelledError,
            ):
                pass

    async def _session(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        read_timeout = self._service.config.read_timeout
        try:
            while True:
                try:
                    if read_timeout is not None:
                        line = await asyncio.wait_for(
                            reader.readline(), timeout=read_timeout
                        )
                    else:
                        line = await reader.readline()
                except asyncio.TimeoutError:
                    writer.write(
                        encode(
                            error_response(
                                None,
                                ERR_TIMEOUT,
                                f"no complete request within {read_timeout}s",
                            )
                        )
                    )
                    await writer.drain()
                    break
                except ValueError:
                    # readline() overran the stream limit: the line is
                    # over the protocol cap.  Typed error, clean close —
                    # the rest of the oversized line is undelimited
                    # garbage, so the session cannot continue.
                    writer.write(
                        encode(
                            error_response(
                                None,
                                ERR_TOO_LARGE,
                                f"request line exceeds {MAX_LINE_BYTES} bytes",
                            )
                        )
                    )
                    await writer.drain()
                    break
                except (ConnectionResetError, asyncio.IncompleteReadError):
                    break
                if not line:
                    break
                if not line.strip():
                    continue
                response = await self._respond(line)
                writer.write(encode(response))
                await writer.drain()
                if response.get("result", {}).get("shutting_down"):
                    break
                if not response.get("ok", False) and response.get("error", {}).get(
                    "code"
                ) in (ERR_TOO_LARGE,):
                    break
        except asyncio.CancelledError:
            # Daemon shutdown cancels in-flight sessions; close quietly
            # rather than re-raising into the event loop's logger.
            pass
        except (ConnectionResetError, BrokenPipeError, OSError):
            # Mid-response transport failure (chaos proxy tears the
            # connection down): the session is gone, nothing to answer.
            pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (
                ConnectionResetError,
                BrokenPipeError,
                OSError,
                asyncio.CancelledError,
            ):
                pass

    async def _respond(self, line: bytes) -> Dict[str, Any]:
        request_id: Optional[Any] = None
        config = self._service.config
        try:
            doc = parse_line(line)
            request_id = doc.get("id")
            if self.shutdown_requested.is_set() and doc.get("op") != "shutdown":
                return error_response(
                    request_id, ERR_SHUTTING_DOWN, "daemon is draining"
                )
            if self._inflight >= config.max_inflight_requests:
                self.rejected_requests += 1
                return error_response(
                    request_id,
                    ERR_OVERLOADED,
                    f"in-flight limit ({config.max_inflight_requests}) reached",
                    retry_after=RETRY_AFTER_S,
                )
            validate_request(doc, self._service.resources)
            self._inflight += 1
            try:
                return ok_response(request_id, await self._dispatch(doc))
            finally:
                self._inflight -= 1
        except ProtocolError as exc:
            return error_response(request_id, exc.code, str(exc))
        except StorageUnavailable as exc:
            # Degraded mode: the disk is refusing writes.  The operation
            # definitely did not apply (the shard rolled the batch
            # back), so the client may retry verbatim after the hint —
            # every refused batch also ticks the shard's recovery probe.
            return error_response(
                request_id, ERR_STORAGE, str(exc), retry_after=exc.retry_after
            )
        except Exception:  # unexpected; keep the session alive
            # Never leak internal exception text to a remote client —
            # the detail goes to the server log only.
            logger.exception("internal error handling request id=%r", request_id)
            return error_response(
                request_id, ERR_INTERNAL, "internal server error (logged)"
            )

    async def _dispatch(self, doc: Dict[str, Any]) -> Dict[str, Any]:
        op = doc["op"]
        if op == "ping":
            return {"pong": True}
        if op == "stats":
            return self._service.stats()
        if op == "health":
            health = self._service.health()
            health["connections"] = self._connections
            health["rejected_connections"] = self.rejected_connections
            health["rejected_requests"] = self.rejected_requests
            return health
        if op == "snapshot":
            return {"path": await self._service.snapshot()}
        if op == "shutdown":
            self.shutdown_requested.set()
            return {"shutting_down": True}
        if op == "allocate_batch":
            return {"responses": await self._service.submit_batch(doc["requests"])}
        return await self._service.submit(doc)


async def run_daemon(
    config: ServiceConfig,
    socket_path: Optional[str] = None,
    host: str = "127.0.0.1",
    port: int = 0,
    install_signals: bool = True,
    announce: bool = True,
) -> int:
    """Serve until ``shutdown`` (wire op) or SIGTERM/SIGINT; return exit code.

    On a signal the server stops accepting, every shard drains, a final
    consistent snapshot is written, and the exit code is
    ``128 + signum`` — the same convention the grid checkpointing uses.
    """
    service = AllocationService(config)
    await service.start()
    server = AllocationServer(service, socket_path=socket_path, host=host, port=port)
    await server.start()

    received_signal: Dict[str, int] = {}
    if install_signals:
        loop = asyncio.get_running_loop()

        def _on_signal(signum: int) -> None:
            received_signal["signum"] = signum
            server.shutdown_requested.set()

        for signum in (_signal.SIGINT, _signal.SIGTERM):
            loop.add_signal_handler(signum, _on_signal, signum)

    if announce:
        sys.stdout.write(
            json.dumps({"ready": True, "endpoint": server.endpoint}) + "\n"
        )
        sys.stdout.flush()

    try:
        await server.shutdown_requested.wait()
    finally:
        await server.stop()
        await service.stop(snapshot=True)
        if install_signals:
            loop = asyncio.get_running_loop()
            for signum in (_signal.SIGINT, _signal.SIGTERM):
                loop.remove_signal_handler(signum)

    signum = received_signal.get("signum")
    return 0 if signum is None else 128 + signum
