"""NDJSON front end: the allocation service over TCP or a UNIX socket.

One connection, one line-oriented session: the server reads requests
sequentially per connection and answers in order, so a client that
awaits each response before sending the next gets the same per-client
ordering guarantee the in-process API provides.  Malformed lines get an
``ok: false`` response and the connection stays usable; only transport
errors close it.

:func:`run_daemon` is the long-lived entry point behind
``repro-experiments serve``: it starts the service (recovering from
``data_dir`` when present), binds the socket, announces readiness with
one JSON line on stdout, and converts SIGTERM/SIGINT into a clean
drain + snapshot + exit(128+signum) — the kill/resume golden test
SIGTERMs it mid-ingest and asserts the resumed response stream is
bit-identical.
"""

from __future__ import annotations

import asyncio
import json
import signal as _signal
import sys
from typing import Any, Dict, Optional

from repro.service.config import ServiceConfig
from repro.service.protocol import (
    ProtocolError,
    encode,
    error_response,
    ok_response,
    parse_line,
    validate_request,
)
from repro.service.service import AllocationService

__all__ = ["AllocationServer", "run_daemon"]


class AllocationServer:
    """Bind an :class:`AllocationService` to a TCP or UNIX socket."""

    def __init__(
        self,
        service: AllocationService,
        socket_path: Optional[str] = None,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        if socket_path is not None and port:
            raise ValueError("give either a UNIX socket path or a TCP port, not both")
        self._service = service
        self._socket_path = socket_path
        self._host = host
        self._port = port
        self._server: Optional[asyncio.AbstractServer] = None
        self.shutdown_requested: asyncio.Event = asyncio.Event()

    @property
    def service(self) -> AllocationService:
        return self._service

    @property
    def endpoint(self) -> str:
        """Human-readable bound endpoint (valid after :meth:`start`)."""
        if self._socket_path is not None:
            return f"unix:{self._socket_path}"
        assert self._server is not None
        sock = self._server.sockets[0]
        host, port = sock.getsockname()[:2]
        return f"tcp:{host}:{port}"

    async def start(self) -> None:
        if self._socket_path is not None:
            self._server = await asyncio.start_unix_server(
                self._handle_connection, path=self._socket_path
            )
        else:
            self._server = await asyncio.start_server(
                self._handle_connection, host=self._host, port=self._port
            )

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    # -- per-connection session ------------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                try:
                    line = await reader.readline()
                except (ConnectionResetError, asyncio.IncompleteReadError):
                    break
                if not line:
                    break
                if not line.strip():
                    continue
                response = await self._respond(line)
                writer.write(encode(response))
                await writer.drain()
                if response.get("result", {}).get("shutting_down"):
                    break
        except asyncio.CancelledError:
            # Daemon shutdown cancels in-flight sessions; close quietly
            # rather than re-raising into the event loop's logger.
            pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, OSError):
                pass

    async def _respond(self, line: bytes) -> Dict[str, Any]:
        request_id: Optional[Any] = None
        try:
            doc = parse_line(line)
            request_id = doc.get("id")
            validate_request(doc, self._service.resources)
            return ok_response(request_id, await self._dispatch(doc))
        except ProtocolError as exc:
            return error_response(request_id, str(exc))
        except Exception as exc:  # unexpected; keep the session alive
            return error_response(request_id, f"internal error: {exc}")

    async def _dispatch(self, doc: Dict[str, Any]) -> Dict[str, Any]:
        op = doc["op"]
        if op == "ping":
            return {"pong": True}
        if op == "stats":
            return self._service.stats()
        if op == "snapshot":
            return {"path": await self._service.snapshot()}
        if op == "shutdown":
            self.shutdown_requested.set()
            return {"shutting_down": True}
        if op == "allocate_batch":
            return {"responses": await self._service.submit_batch(doc["requests"])}
        return await self._service.submit(doc)


async def run_daemon(
    config: ServiceConfig,
    socket_path: Optional[str] = None,
    host: str = "127.0.0.1",
    port: int = 0,
    install_signals: bool = True,
    announce: bool = True,
) -> int:
    """Serve until ``shutdown`` (wire op) or SIGTERM/SIGINT; return exit code.

    On a signal the server stops accepting, every shard drains, a final
    consistent snapshot is written, and the exit code is
    ``128 + signum`` — the same convention the grid checkpointing uses.
    """
    service = AllocationService(config)
    await service.start()
    server = AllocationServer(service, socket_path=socket_path, host=host, port=port)
    await server.start()

    received_signal: Dict[str, int] = {}
    if install_signals:
        loop = asyncio.get_running_loop()

        def _on_signal(signum: int) -> None:
            received_signal["signum"] = signum
            server.shutdown_requested.set()

        for signum in (_signal.SIGINT, _signal.SIGTERM):
            loop.add_signal_handler(signum, _on_signal, signum)

    if announce:
        sys.stdout.write(
            json.dumps({"ready": True, "endpoint": server.endpoint}) + "\n"
        )
        sys.stdout.flush()

    try:
        await server.shutdown_requested.wait()
    finally:
        await server.stop()
        await service.stop(snapshot=True)
        if install_signals:
            loop = asyncio.get_running_loop()
            for signum in (_signal.SIGINT, _signal.SIGTERM):
                loop.remove_signal_handler(signum)

    signum = received_signal.get("signum")
    return 0 if signum is None else 128 + signum
