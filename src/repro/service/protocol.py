"""Newline-delimited JSON wire protocol of the allocation service.

One request per line, one response line per request, strictly in
request order per connection.  Requests are JSON objects carrying an
``op`` and an optional client-chosen ``id`` that is echoed verbatim in
the response — the full vocabulary, with examples, is documented in
``docs/SERVICE.md``.

The same operation documents double as WAL entries and as the in-
process API's wire format, so validation lives here, once:
:func:`validate_request` rejects malformed documents *before* they are
enqueued or logged (an invalid document must never reach the WAL, where
replay would trip over it).
"""

from __future__ import annotations

import json
from typing import Any, Dict, Mapping, Optional, Sequence

from repro.core.resources import Resource
from repro.service.shards import MUTATING_OPS, OP_RECORD, OP_RETRY

__all__ = [
    "ProtocolError",
    "ADMIN_OPS",
    "MAX_LINE_BYTES",
    "MAX_KEY_BYTES",
    "ERROR_CODES",
    "ERR_BAD_REQUEST",
    "ERR_UNKNOWN_OP",
    "ERR_TOO_LARGE",
    "ERR_TIMEOUT",
    "ERR_OVERLOADED",
    "ERR_SHUTTING_DOWN",
    "ERR_STORAGE",
    "ERR_INTERNAL",
    "RETRYABLE_CODES",
    "parse_line",
    "validate_request",
    "encode",
    "ok_response",
    "error_response",
]

#: Read-only / control operations the server answers without touching a
#: shard queue.
ADMIN_OPS = ("ping", "stats", "health", "snapshot", "shutdown")

#: Everything the front end accepts.
REQUEST_OPS = MUTATING_OPS + ("allocate_batch",) + ADMIN_OPS

#: Ceiling on one request line; protects the server from an unframed
#: client streaming garbage into memory.
MAX_LINE_BYTES = 1 << 20

#: Ceiling on a client idempotency key (it is WAL-logged and snapshot-
#: carried; an unbounded key would bloat the durability layer).
MAX_KEY_BYTES = 256

# Typed error codes.  Remote clients only ever see a code plus a safe
# message; internal exception detail is logged server-side (never
# leaked to the wire).  Clients key their retry policy off the code.
ERR_BAD_REQUEST = "bad_request"  # malformed document; retrying is futile
ERR_UNKNOWN_OP = "unknown_op"  # unrecognized request type
ERR_TOO_LARGE = "too_large"  # request line over MAX_LINE_BYTES; disconnected
ERR_TIMEOUT = "timeout"  # per-connection read deadline expired; disconnected
ERR_OVERLOADED = "overloaded"  # connection/in-flight bound hit; honor retry_after
ERR_SHUTTING_DOWN = "shutting_down"  # daemon is draining; reconnect later
ERR_STORAGE = "storage_unavailable"  # disk refusing writes; honor retry_after
ERR_INTERNAL = "internal"  # unexpected server error; detail logged server-side

ERROR_CODES = (
    ERR_BAD_REQUEST,
    ERR_UNKNOWN_OP,
    ERR_TOO_LARGE,
    ERR_TIMEOUT,
    ERR_OVERLOADED,
    ERR_SHUTTING_DOWN,
    ERR_STORAGE,
    ERR_INTERNAL,
)

#: Error codes a client may safely retry after (with backoff, and an
#: idempotency key for mutating operations).  ``storage_unavailable`` is
#: retryable even *without* a key: the refused batch rolled back before
#: anything was applied, so the retry is not ambiguous.
RETRYABLE_CODES = (ERR_OVERLOADED, ERR_TIMEOUT, ERR_SHUTTING_DOWN, ERR_STORAGE)


class ProtocolError(ValueError):
    """A request document is malformed; the connection stays usable.

    Carries the typed wire code (default ``bad_request``) so the server
    can answer with machine-readable errors without string matching.
    """

    def __init__(self, message: str, code: str = ERR_BAD_REQUEST) -> None:
        super().__init__(message)
        self.code = code


def parse_line(line: bytes) -> Dict[str, Any]:
    """Decode one request line into a document, or raise ProtocolError."""
    if len(line) > MAX_LINE_BYTES:
        raise ProtocolError(
            f"request line exceeds {MAX_LINE_BYTES} bytes", code=ERR_TOO_LARGE
        )
    try:
        doc = json.loads(line.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"request is not valid JSON: {exc}") from None
    if not isinstance(doc, dict):
        raise ProtocolError("request must be a JSON object")
    return doc


def _require_str(doc: Mapping[str, Any], key: str) -> None:
    if not isinstance(doc.get(key), str) or not doc[key]:
        raise ProtocolError(f"{doc.get('op')}: {key!r} must be a non-empty string")


def _require_int(doc: Mapping[str, Any], key: str) -> None:
    value = doc.get(key)
    if isinstance(value, bool) or not isinstance(value, int):
        raise ProtocolError(f"{doc.get('op')}: {key!r} must be an integer")


def _require_vector(
    doc: Mapping[str, Any], key: str, resources: Sequence[Resource]
) -> None:
    value = doc.get(key)
    if not isinstance(value, dict) or not value:
        raise ProtocolError(
            f"{doc.get('op')}: {key!r} must be a non-empty "
            "{resource: value} object"
        )
    managed = {res.key for res in resources}
    for res_key, magnitude in value.items():
        if res_key not in managed:
            raise ProtocolError(
                f"{doc.get('op')}: {key!r} names unmanaged resource {res_key!r} "
                f"(managed: {sorted(managed)})"
            )
        if isinstance(magnitude, bool) or not isinstance(magnitude, (int, float)):
            raise ProtocolError(
                f"{doc.get('op')}: {key!r}[{res_key!r}] must be a number"
            )
        if magnitude < 0 or magnitude != magnitude:
            raise ProtocolError(
                f"{doc.get('op')}: {key!r}[{res_key!r}] must be >= 0 and not NaN"
            )


def validate_request(
    doc: Mapping[str, Any], resources: Sequence[Resource], depth: int = 0
) -> None:
    """Schema-check one request document (recursing into batches)."""
    op = doc.get("op")
    if op not in REQUEST_OPS:
        raise ProtocolError(
            f"unknown op {op!r}; expected one of {sorted(REQUEST_OPS)}",
            code=ERR_UNKNOWN_OP,
        )
    if op in ADMIN_OPS:
        return
    key = doc.get("key")
    if key is not None:
        if not isinstance(key, str) or not key:
            raise ProtocolError(
                f"{op}: 'key' must be a non-empty string when given"
            )
        if len(key.encode("utf-8")) > MAX_KEY_BYTES:
            raise ProtocolError(
                f"{op}: idempotency key exceeds {MAX_KEY_BYTES} bytes"
            )
    if op == "allocate_batch":
        if depth > 0:
            raise ProtocolError("allocate_batch cannot be nested")
        requests = doc.get("requests")
        if not isinstance(requests, list) or not requests:
            raise ProtocolError("allocate_batch: 'requests' must be a non-empty list")
        for sub in requests:
            if not isinstance(sub, dict):
                raise ProtocolError("allocate_batch: every request must be an object")
            if sub.get("op") not in MUTATING_OPS:
                raise ProtocolError(
                    f"allocate_batch: nested op must be one of {sorted(MUTATING_OPS)}"
                )
            validate_request(sub, resources, depth=depth + 1)
        return
    _require_str(doc, "category")
    _require_int(doc, "task_id")
    if op == OP_RETRY:
        _require_vector(doc, "previous", resources)
        _require_vector(doc, "observed", resources)
        exhausted = doc.get("exhausted")
        if not isinstance(exhausted, list) or not exhausted:
            raise ProtocolError(
                "allocate_retry: 'exhausted' must be a non-empty list of resource keys"
            )
        managed = {res.key for res in resources}
        for key in exhausted:
            if key not in managed:
                raise ProtocolError(
                    f"allocate_retry: exhausted resource {key!r} is not managed "
                    f"(managed: {sorted(managed)})"
                )
    elif op == OP_RECORD:
        _require_vector(doc, "peaks", resources)
        significance = doc.get("significance")
        if significance is not None and (
            isinstance(significance, bool)
            or not isinstance(significance, (int, float))
        ):
            raise ProtocolError("record: 'significance' must be a number when given")


def encode(doc: Mapping[str, Any]) -> bytes:
    """One response/request document as a compact JSON line."""
    return (json.dumps(doc, indent=None, separators=(",", ":")) + "\n").encode("utf-8")


def ok_response(request_id: Optional[Any], result: Mapping[str, Any]) -> Dict[str, Any]:
    doc: Dict[str, Any] = {"ok": True, "result": dict(result)}
    if request_id is not None:
        doc["id"] = request_id
    return doc


def error_response(
    request_id: Optional[Any],
    code: str,
    message: str,
    retry_after: Optional[float] = None,
) -> Dict[str, Any]:
    """A typed error document: ``{"ok": false, "error": {code, message}}``.

    ``retry_after`` (seconds) is attached for overload shedding so
    well-behaved clients back off by at least that much before retrying.
    """
    error: Dict[str, Any] = {"code": code, "message": message}
    if retry_after is not None:
        error["retry_after"] = retry_after
    doc: Dict[str, Any] = {"ok": False, "error": error}
    if request_id is not None:
        doc["id"] = request_id
    return doc
