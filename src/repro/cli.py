"""Command-line entry point: regenerate any paper table or figure.

Usage (installed as ``repro-experiments``, also ``python -m repro.cli``)::

    repro-experiments figure2
    repro-experiments figure4
    repro-experiments figure5 --tasks 500 --workers 20
    repro-experiments figure6
    repro-experiments table1
    repro-experiments scaling --tasks 10000
    repro-experiments ablation
    repro-experiments hybrid
    repro-experiments all

Each command prints the reproduced rows/series as plain text.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.experiments import figure2, figure3, figure4, figure5, figure6, table1
from repro.experiments import ablation, convergence, hybrid_study, robustness, scaling
from repro.experiments.config import ExperimentConfig
from repro.sim.faults import FAULT_PROFILES, make_fault_config

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Regenerate the paper's tables and figures.",
    )
    parser.add_argument(
        "experiment",
        choices=[
            "figure2",
            "figure3",
            "figure4",
            "figure5",
            "figure6",
            "table1",
            "scaling",
            "ablation",
            "hybrid",
            "robustness",
            "convergence",
            "all",
        ],
        help="which artifact to regenerate",
    )
    parser.add_argument("--tasks", type=int, default=1000, help="tasks per synthetic workflow")
    parser.add_argument("--workers", type=int, default=20, help="worker pool size")
    parser.add_argument("--seed", type=int, default=0, help="workflow generation seed")
    parser.add_argument(
        "--ramp-up", type=float, default=600.0, help="pool ramp-up window (seconds)"
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes for grid experiments (figure5/figure6); "
        "results are identical to the serial run",
    )
    parser.add_argument(
        "--faults",
        choices=list(FAULT_PROFILES),
        default="none",
        help="seeded fault-injection profile applied to every simulation "
        "(worker preemption, mid-task kills, dispatch failures; "
        "'chaos' adds capacity degradation)",
    )
    parser.add_argument(
        "--fault-rate",
        type=float,
        default=1.0 / 600.0,
        help="mean fault rate (events/second) for the stochastic profiles",
    )
    parser.add_argument(
        "--fault-seed",
        type=int,
        default=0,
        help="RNG seed of the fault schedule (same seed => same faults, "
        "bit-identical replay)",
    )
    parser.add_argument("--verbose", action="store_true", help="print per-cell progress")
    return parser


def _config(args: argparse.Namespace) -> ExperimentConfig:
    return ExperimentConfig(
        n_tasks=args.tasks,
        n_workers=args.workers,
        workflow_seed=args.seed,
        ramp_up_seconds=args.ramp_up,
        faults=make_fault_config(
            args.faults, rate=args.fault_rate, seed=args.fault_seed
        ),
    )


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    config = _config(args)
    targets = (
        ["figure2", "figure3", "figure4", "figure5", "figure6", "table1"]
        if args.experiment == "all"
        else [args.experiment]
    )
    for target in targets:
        if target == "figure2":
            print(figure2.render(figure2.run(seed=args.seed)))
        elif target == "figure3":
            print(figure3.render(figure3.run(seed=args.seed)))
        elif target == "figure4":
            print(figure4.render(figure4.run(n_tasks=args.tasks, seed=args.seed)))
        elif target == "figure5":
            print(
                figure5.render(
                    figure5.run(config=config, verbose=args.verbose, jobs=args.jobs)
                )
            )
        elif target == "figure6":
            print(
                figure6.render(
                    figure6.run(config=config, verbose=args.verbose, jobs=args.jobs)
                )
            )
        elif target == "table1":
            print(table1.render(table1.run()))
        elif target == "scaling":
            counts = [c for c in (500, 1000, 2000, 5000, 10000) if c <= args.tasks] or [args.tasks]
            print(scaling.render(scaling.run(task_counts=counts, config=config.with_(n_tasks=1000))))
        elif target == "ablation":
            print(ablation.render(ablation.run(config)))
        elif target == "hybrid":
            print(hybrid_study.render(hybrid_study.run(config)))
        elif target == "robustness":
            if args.faults != "none":
                # Compare the chosen fault profile against the
                # fault-free baseline; the config's own faults field is
                # overridden per profile inside the sweep.
                print(
                    robustness.render_fault_sweep(
                        robustness.run_fault_sweep(
                            config.with_(faults=None),
                            profiles=("none", args.faults),
                            fault_rate=args.fault_rate,
                            fault_seed=args.fault_seed,
                        )
                    )
                )
            else:
                print(robustness.render_seed_sweep(robustness.run_seed_sweep(config)))
        elif target == "convergence":
            print(convergence.render(convergence.run(config)))
        print()
    return 0


if __name__ == "__main__":
    sys.exit(main())
