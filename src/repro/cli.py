"""Command-line entry point: regenerate any paper table or figure.

Usage (installed as ``repro-experiments``, also ``python -m repro.cli``)::

    repro-experiments figure2
    repro-experiments figure4
    repro-experiments figure5 --tasks 500 --workers 20
    repro-experiments figure6
    repro-experiments table1
    repro-experiments scaling --tasks 10000
    repro-experiments ablation
    repro-experiments hybrid
    repro-experiments all

Each command prints the reproduced rows/series as plain text.

``serve`` is different: it runs the allocation service as a long-lived
daemon (``docs/SERVICE.md``)::

    repro-experiments serve --socket /tmp/repro.sock --checkpoint-dir state/
    repro-experiments serve --port 7654 --shards 8 --service-algorithm greedy_bucketing
"""

from __future__ import annotations

import argparse
import signal
import sys
from typing import List, Optional

from repro.checkpoint import GracefulShutdown, GridInterrupted, write_text_atomic
from repro.core.base import ALGORITHM_REGISTRY
from repro.experiments import (
    ablation,
    convergence,
    figure2,
    figure3,
    figure4,
    figure5,
    figure6,
    hybrid_study,
    robustness,
    scaling,
    table1,
)
from repro.experiments.config import ExperimentConfig
from repro.service.config import DURABILITY_MODES
from repro.sim.faults import FAULT_PROFILES, make_fault_config
from repro.sim.resilience import (
    CircuitBreakerConfig,
    ResilienceConfig,
    RetryPolicyConfig,
)

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Regenerate the paper's tables and figures.",
    )
    parser.add_argument(
        "experiment",
        choices=[
            "figure2",
            "figure3",
            "figure4",
            "figure5",
            "figure6",
            "table1",
            "scaling",
            "ablation",
            "hybrid",
            "robustness",
            "resilience",
            "convergence",
            "service-chaos",
            "serve",
            "fsck",
            "snapshot-export",
            "snapshot-import",
            "all",
        ],
        help="which artifact to regenerate ('serve' runs the allocation "
        "service daemon; 'fsck'/'snapshot-export'/'snapshot-import' are "
        "offline storage tools for a service data dir)",
    )
    parser.add_argument("--tasks", type=int, default=1000, help="tasks per synthetic workflow")
    parser.add_argument("--workers", type=int, default=20, help="worker pool size")
    parser.add_argument("--seed", type=int, default=0, help="workflow generation seed")
    parser.add_argument(
        "--ramp-up", type=float, default=600.0, help="pool ramp-up window (seconds)"
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes for grid experiments (figure5/figure6); "
        "results are identical to the serial run",
    )
    parser.add_argument(
        "--faults",
        choices=list(FAULT_PROFILES),
        default="none",
        help="seeded fault-injection profile applied to every simulation "
        "(worker preemption, mid-task kills, dispatch failures; "
        "'chaos' adds capacity degradation)",
    )
    parser.add_argument(
        "--fault-rate",
        type=float,
        default=1.0 / 600.0,
        help="mean fault rate (events/second) for the stochastic profiles",
    )
    parser.add_argument(
        "--fault-seed",
        type=int,
        default=0,
        help="RNG seed of the fault schedule (same seed => same faults, "
        "bit-identical replay)",
    )
    parser.add_argument(
        "--fault-trace",
        metavar="LOG",
        default=None,
        help="HTCondor user log whose eviction (004) events drive the "
        "'trace' fault profile (requires --faults trace)",
    )
    parser.add_argument(
        "--retry-budget",
        type=int,
        metavar="N",
        default=None,
        help="dead-letter a task after N exhausted attempts instead of "
        "retrying forever (implies --quarantine)",
    )
    parser.add_argument(
        "--task-deadline",
        type=float,
        metavar="SECONDS",
        default=None,
        help="dead-letter a task once SECONDS of simulated time have "
        "passed since it first became ready (implies --quarantine)",
    )
    parser.add_argument(
        "--quarantine",
        action="store_true",
        help="enable poison-task quarantine; without --retry-budget the "
        "budget defaults to 10 exhausted attempts",
    )
    parser.add_argument(
        "--circuit-breaker",
        action="store_true",
        help="switch the allocator to conservative whole-machine "
        "allocations while the recent failed-allocation rate is high "
        "(closed/open/half-open recovery)",
    )
    parser.add_argument(
        "--checkpoint-dir",
        metavar="DIR",
        default=None,
        help="journal completed grid cells and snapshot the running "
        "simulation here (figure5/figure6); enables --resume after a "
        "crash or SIGINT/SIGTERM",
    )
    parser.add_argument(
        "--checkpoint-interval",
        type=float,
        default=30.0,
        help="wall-clock seconds between in-cell snapshots (default 30)",
    )
    parser.add_argument(
        "--resume",
        action="store_true",
        help="continue from --checkpoint-dir instead of starting fresh; "
        "the resumed run is bit-identical to an uninterrupted one",
    )
    parser.add_argument(
        "--out",
        metavar="FILE",
        default=None,
        help="also write the rendered text to FILE (atomic replace)",
    )
    parser.add_argument("--verbose", action="store_true", help="print per-cell progress")
    service = parser.add_argument_group(
        "serve", "allocation-service daemon options (docs/SERVICE.md)"
    )
    service.add_argument(
        "--socket",
        metavar="PATH",
        default=None,
        help="serve on this UNIX socket (mutually exclusive with --port)",
    )
    service.add_argument(
        "--host", default="127.0.0.1", help="TCP bind address (default 127.0.0.1)"
    )
    service.add_argument(
        "--port",
        type=int,
        default=0,
        help="TCP port (0 = ephemeral; the bound endpoint is announced "
        "on stdout as one JSON line)",
    )
    service.add_argument(
        "--shards",
        type=int,
        default=4,
        help="single-writer allocation shards (categories hash across them)",
    )
    service.add_argument(
        "--service-algorithm",
        choices=sorted(ALGORITHM_REGISTRY),
        default="exhaustive_bucketing",
        help="allocation algorithm every shard runs",
    )
    service.add_argument(
        "--service-seed",
        type=int,
        default=0,
        help="base seed shard allocator seeds are derived from",
    )
    service.add_argument(
        "--durability",
        choices=list(DURABILITY_MODES),
        default="batch",
        help="WAL commit policy under --checkpoint-dir (default: one "
        "fsync per coalesced batch)",
    )
    service.add_argument(
        "--max-connections",
        type=int,
        default=128,
        help="concurrent wire connections; excess connections get a "
        "typed 'overloaded' error with retry_after and a clean close",
    )
    service.add_argument(
        "--read-timeout",
        type=float,
        metavar="SECONDS",
        default=None,
        help="per-connection read deadline; a connection idle (or "
        "slow-loris dribbling) past it mid-request gets a typed "
        "'timeout' error and is disconnected (default: no deadline)",
    )
    service.add_argument(
        "--dedup-window",
        type=int,
        default=1024,
        help="per-shard idempotency window: keyed mutating requests "
        "repeating a remembered key are answered with the stored "
        "response verbatim (exactly-once across retries; 0 disables)",
    )
    service.add_argument(
        "--snapshot-retention",
        type=int,
        default=3,
        help="snapshot generations to keep on disk; older generations "
        "and their archived WAL segments are pruned after each cut",
    )
    storage = parser.add_argument_group(
        "storage tools", "fsck / snapshot-export / snapshot-import options"
    )
    storage.add_argument(
        "--data-dir",
        metavar="DIR",
        default=None,
        help="service data directory to audit (fsck), back up "
        "(snapshot-export), or restore into (snapshot-import)",
    )
    storage.add_argument(
        "--json",
        action="store_true",
        help="emit the fsck report as JSON instead of text",
    )
    storage.add_argument(
        "--archive",
        metavar="TARBALL",
        default=None,
        help="backup tarball path: written by snapshot-export, read by "
        "snapshot-import",
    )
    storage.add_argument(
        "--force",
        action="store_true",
        help="let snapshot-import overwrite a data dir that already "
        "holds service files",
    )
    service.add_argument(
        "--chaos-crash",
        metavar="SITE[:HIT]",
        default=None,
        help="test instrumentation: hard-exit the daemon (os._exit(70)) "
        "the HIT-th time the named crash site is reached "
        "(docs/SERVICE.md lists the sites); never use in production",
    )
    return parser


def _resilience(args: argparse.Namespace) -> Optional[ResilienceConfig]:
    """Build the resilience policy from the CLI knobs (None = paper-exact)."""
    wants_quarantine = (
        args.quarantine or args.retry_budget is not None or args.task_deadline is not None
    )
    if not wants_quarantine and not args.circuit_breaker:
        return None
    budget = args.retry_budget
    if wants_quarantine and budget is None and args.task_deadline is None:
        budget = 10
    return ResilienceConfig(
        retry=RetryPolicyConfig(budget=budget, deadline=args.task_deadline),
        breaker=CircuitBreakerConfig(enabled=args.circuit_breaker),
    )


def _config(args: argparse.Namespace) -> ExperimentConfig:
    return ExperimentConfig(
        n_tasks=args.tasks,
        n_workers=args.workers,
        workflow_seed=args.seed,
        ramp_up_seconds=args.ramp_up,
        faults=make_fault_config(
            args.faults,
            rate=args.fault_rate,
            seed=args.fault_seed,
            trace_file=args.fault_trace,
        ),
        resilience=_resilience(args),
    )


def _durable(config: ExperimentConfig, args: argparse.Namespace, target: str) -> ExperimentConfig:
    """Attach the checkpoint knobs for one grid target.

    Each target gets its own subdirectory of ``--checkpoint-dir`` so
    ``all`` never mixes journals with different grid digests.
    """
    if args.checkpoint_dir is None:
        return config
    import os

    return config.with_(
        checkpoint_dir=os.path.join(args.checkpoint_dir, target),
        checkpoint_interval=args.checkpoint_interval,
        resume=args.resume,
    )


def _serve(args: argparse.Namespace) -> int:
    """Run the allocation-service daemon until shutdown or a signal."""
    import asyncio

    from repro.core.allocator import AllocatorConfig
    from repro.service import CRASH_POINTS, ServiceConfig, run_daemon

    config = ServiceConfig(
        allocator=AllocatorConfig(
            algorithm=args.service_algorithm, seed=args.service_seed
        ),
        n_shards=args.shards,
        data_dir=args.checkpoint_dir,
        durability=args.durability,
        max_connections=args.max_connections,
        read_timeout=args.read_timeout,
        dedup_window=args.dedup_window,
        snapshot_retention=args.snapshot_retention,
    )
    if args.chaos_crash is not None:
        # Crash-point test instrumentation: die mid-operation at the
        # named site, exactly like an opportunistic node disappearing.
        site, _, hit = args.chaos_crash.partition(":")
        CRASH_POINTS.arm(site, at_hit=int(hit) if hit else 1, mode="exit")
    return asyncio.run(
        run_daemon(config, socket_path=args.socket, host=args.host, port=args.port)
    )


def _storage_tools(args: argparse.Namespace) -> int:
    """Offline data-dir tooling: fsck / snapshot-export / snapshot-import."""
    import json as _json

    from repro.service.fsck import (
        FSCK_FAILED,
        export_backup,
        import_backup,
        render_report,
        run_fsck,
    )

    if args.data_dir is None:
        print(f"[repro] {args.experiment} requires --data-dir", file=sys.stderr)
        return FSCK_FAILED
    try:
        if args.experiment == "fsck":
            report = run_fsck(args.data_dir)
            if args.json:
                print(_json.dumps(report.to_json(), indent=2, sort_keys=True))
            else:
                print(render_report(report))
            return report.exit_code
        if args.archive is None:
            print(f"[repro] {args.experiment} requires --archive", file=sys.stderr)
            return FSCK_FAILED
        if args.experiment == "snapshot-export":
            manifest = export_backup(args.data_dir, args.archive)
            print(
                f"[repro] exported {len(manifest['files'])} file(s) from "
                f"{args.data_dir} to {args.archive}"
            )
            return 0
        manifest = import_backup(args.archive, args.data_dir, force=args.force)
        print(
            f"[repro] restored {len(manifest['files'])} file(s) from "
            f"{args.archive} into {args.data_dir} (digests verified)"
        )
        return 0
    except (ValueError, OSError, KeyError) as exc:
        print(f"[repro] {args.experiment} failed: {exc}", file=sys.stderr)
        return FSCK_FAILED


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.experiment == "serve":
        return _serve(args)
    if args.experiment in ("fsck", "snapshot-export", "snapshot-import"):
        return _storage_tools(args)
    config = _config(args)
    targets = (
        ["figure2", "figure3", "figure4", "figure5", "figure6", "table1"]
        if args.experiment == "all"
        else [args.experiment]
    )
    rendered: List[str] = []

    def emit(text: str) -> None:
        print(text)
        rendered.append(text)

    shutdown = GracefulShutdown()
    try:
        with shutdown:
            _run_targets(targets, args, config, shutdown, emit)
    except GridInterrupted as exc:
        print(
            f"\n[repro] {exc}\n[repro] resume with: repro-experiments "
            f"{args.experiment} --checkpoint-dir {args.checkpoint_dir} --resume "
            "(plus your original options)",
            file=sys.stderr,
        )
        return 128 + (exc.signum if exc.signum is not None else signal.SIGTERM)
    if args.out is not None:
        write_text_atomic(args.out, "\n".join(rendered) + "\n")
    return 0


def _run_targets(targets, args, config, shutdown, emit) -> None:
    for target in targets:
        if target == "figure2":
            emit(figure2.render(figure2.run(seed=args.seed)))
        elif target == "figure3":
            emit(figure3.render(figure3.run(seed=args.seed)))
        elif target == "figure4":
            emit(figure4.render(figure4.run(n_tasks=args.tasks, seed=args.seed)))
        elif target == "figure5":
            emit(
                figure5.render(
                    figure5.run(
                        config=_durable(config, args, target),
                        verbose=args.verbose,
                        jobs=args.jobs,
                        shutdown=shutdown,
                    )
                )
            )
        elif target == "figure6":
            emit(
                figure6.render(
                    figure6.run(
                        config=_durable(config, args, target),
                        verbose=args.verbose,
                        jobs=args.jobs,
                        shutdown=shutdown,
                    )
                )
            )
        elif target == "table1":
            emit(table1.render(table1.run()))
        elif target == "scaling":
            counts = [c for c in (500, 1000, 2000, 5000, 10000) if c <= args.tasks] or [args.tasks]
            emit(scaling.render(scaling.run(task_counts=counts, config=config.with_(n_tasks=1000))))
        elif target == "ablation":
            emit(ablation.render(ablation.run(config)))
        elif target == "hybrid":
            emit(hybrid_study.render(hybrid_study.run(config)))
        elif target == "robustness":
            if args.faults != "none":
                # Compare the chosen fault profile against the
                # fault-free baseline; the config's own faults field is
                # overridden per profile inside the sweep.
                emit(
                    robustness.render_fault_sweep(
                        robustness.run_fault_sweep(
                            config.with_(faults=None),
                            profiles=("none", args.faults),
                            fault_rate=args.fault_rate,
                            fault_seed=args.fault_seed,
                        )
                    )
                )
            else:
                emit(robustness.render_seed_sweep(robustness.run_seed_sweep(config)))
        elif target == "resilience":
            profile = args.faults if args.faults != "none" else "poisson"
            budgets = (
                (None, args.retry_budget)
                if args.retry_budget is not None
                else (None, 10, 25)
            )
            emit(
                robustness.render_policy_matrix(
                    robustness.run_policy_matrix(
                        config.with_(faults=None, resilience=None),
                        profile=profile,
                        budgets=budgets,
                        fault_rate=args.fault_rate,
                        fault_seed=args.fault_seed,
                    )
                )
            )
        elif target == "convergence":
            emit(convergence.render(convergence.run(config)))
        elif target == "service-chaos":
            from repro.experiments import service_chaos

            emit(
                service_chaos.render(
                    service_chaos.run(seed=args.fault_seed)
                )
            )
        print()


if __name__ == "__main__":
    sys.exit(main())
