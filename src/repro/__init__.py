"""repro — Adaptive task-oriented resource allocation for dynamic workflows.

A from-scratch reproduction of *"Adaptive Task-Oriented Resource Allocation
for Large Dynamic Workflows on Opportunistic Resources"* (Phung & Thain,
IPDPS 2024).

The package is organized as:

``repro.core``
    The paper's primary contribution: the Greedy Bucketing and Exhaustive
    Bucketing allocation algorithms, the five comparison algorithms
    (Whole Machine, Max Seen, Min Waste, Max Throughput, Quantized
    Bucketing), and the :class:`~repro.core.allocator.TaskOrientedAllocator`
    that drives them with exploratory-mode bootstrap and retry policies.

``repro.sim``
    A discrete-event workflow-execution simulator standing in for the
    paper's Work Queue + HTCondor testbed: manager, scheduler, monitored
    workers with kill-on-overconsumption semantics, and an opportunistic
    worker pool with churn.

``repro.workflows``
    Workload generators: the five synthetic distributions of Figure 4 and
    trace-shaped generators for the ColmenaXTB and TopEFT production
    workflows of Figure 2.

``repro.metrics``
    Resource-waste decomposition (internal fragmentation vs. failed
    allocation) and Absolute Workflow Efficiency (AWE).

``repro.experiments``
    One module per paper table/figure that regenerates the corresponding
    rows/series, plus extension studies (scaling, ablations, hybrid).
"""

from repro.core.allocator import AllocatorConfig, ExploratoryConfig, TaskOrientedAllocator
from repro.core.base import ALGORITHM_REGISTRY, AllocationAlgorithm, make_algorithm
from repro.core.baselines import MaxSeen, WholeMachine
from repro.core.buckets import Bucket, BucketState
from repro.core.exhaustive import ExhaustiveBucketing
from repro.core.greedy import GreedyBucketing
from repro.core.hybrid import HybridBucketing
from repro.core.quantized import QuantizedBucketing
from repro.core.records import RecordList, ResourceRecord
from repro.core.resources import Resource, ResourceVector
from repro.core.tovar import MaxThroughput, MinWaste

__version__ = "1.0.0"

__all__ = [
    "Resource",
    "ResourceVector",
    "ResourceRecord",
    "RecordList",
    "Bucket",
    "BucketState",
    "GreedyBucketing",
    "ExhaustiveBucketing",
    "WholeMachine",
    "MaxSeen",
    "MinWaste",
    "MaxThroughput",
    "QuantizedBucketing",
    "HybridBucketing",
    "TaskOrientedAllocator",
    "ExploratoryConfig",
    "AllocatorConfig",
    "AllocationAlgorithm",
    "make_algorithm",
    "ALGORITHM_REGISTRY",
    "__version__",
]
