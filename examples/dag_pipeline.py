#!/usr/bin/env python
"""Dependency-structured workflow: a dynamic map-shuffle-reduce tree.

Dynamic workflow systems generate *dependent* tasks at runtime
(Figure 1).  This example builds a three-stage analysis tree with
:class:`~repro.workflows.dag.DynamicDAG` — 64 mappers, 8 combiners,
1 reducer, each stage with its own resource footprint — and runs it
under the adaptive allocator.  It shows:

* tasks becoming ready as their parents complete (stage barriers);
* per-category bucket states for stages with different footprints;
* the makespan against the DAG's critical-path lower bound.

Run:  python examples/dag_pipeline.py
"""

import numpy as np

from repro import AllocatorConfig
from repro.core.resources import CORES, MEMORY, ResourceVector
from repro.sim import SimulationConfig, WorkflowManager
from repro.sim.pool import PoolConfig
from repro.workflows.dag import DynamicDAG


def build_pipeline(rng: np.random.Generator) -> DynamicDAG:
    dag = DynamicDAG()
    mappers = [
        dag.add_task(
            "map",
            ResourceVector.of(
                cores=1,
                memory=float(rng.normal(800, 80)),
                disk=float(rng.uniform(50, 150)),
            ),
            duration=float(rng.lognormal(np.log(40), 0.3)),
        )
        for _ in range(64)
    ]
    combiners = [
        dag.add_task(
            "combine",
            ResourceVector.of(
                cores=2,
                memory=float(rng.normal(2500, 200)),
                disk=float(rng.uniform(200, 400)),
            ),
            duration=float(rng.lognormal(np.log(90), 0.25)),
            dependencies=mappers[i * 8 : (i + 1) * 8],
        )
        for i in range(8)
    ]
    dag.add_task(
        "reduce",
        ResourceVector.of(cores=4, memory=9000.0, disk=1200.0),
        duration=240.0,
        dependencies=combiners,
    )
    return dag


def main() -> None:
    rng = np.random.default_rng(47)
    dag = build_pipeline(rng)
    workflow = dag.to_workflow("map_shuffle_reduce")
    print(f"workflow: {workflow}")
    print(f"critical path lower bound: {dag.critical_path_length():.0f}s")

    manager = WorkflowManager(
        workflow,
        SimulationConfig(
            allocator=AllocatorConfig(algorithm="greedy_bucketing", seed=53),
            pool=PoolConfig(n_workers=8, ramp_up_seconds=120.0, seed=59),
        ),
    )
    result = manager.run()
    ledger = result.ledger

    print(f"makespan: {result.makespan:.0f}s "
          f"({result.makespan / dag.critical_path_length():.2f}x the lower bound)")
    print(f"\n{'stage':12s}{'tasks':>6s}{'AWE cores':>12s}{'AWE memory':>12s}")
    for category in ledger.categories():
        n = len(workflow.tasks_of(category))
        print(
            f"{category:12s}{n:>6d}"
            f"{ledger.awe_of_category(category, CORES):>12.3f}"
            f"{ledger.awe_of_category(category, MEMORY):>12.3f}"
        )

    print("\nmemory bucket states per stage:")
    for category in ledger.categories():
        algo = manager.allocator.algorithm(category, MEMORY)
        state = getattr(algo, "state", None)
        if state is not None:
            reps = ", ".join(f"{b.rep:.0f}" for b in state.buckets)
            print(f"  {category:12s} reps = [{reps}] MB")
    print(
        "\nThe single 'reduce' task never leaves exploration (only one "
        "record can ever exist), illustrating why the allocator keeps the "
        "conservative bootstrap around."
    )


if __name__ == "__main__":
    main()
