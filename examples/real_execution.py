#!/usr/bin/env python
"""Adaptive allocation of *real* processes (no simulator).

Runs actual Python functions under the adaptive allocator: each attempt
is a forked process whose memory allocation is enforced with
``RLIMIT_AS`` — exceed it and the attempt dies with ``MemoryError`` and
is retried larger, exactly the kill-and-retry semantics of the paper's
assumption 4.  Peak RSS and CPU usage are measured, fed back as
records, and the batch's real AWE is reported.

The workload mimics an analysis sweep: most tasks build a modest
working set, a few build a much larger one (the bimodal specialization
of Section II-D).

Run:  python examples/real_execution.py      (Linux only)
"""

import numpy as np

from repro.core.allocator import AllocatorConfig, ExploratoryConfig, TaskOrientedAllocator
from repro.core.resources import CORES, MEMORY, ResourceVector
from repro.executor import LocalExecutor, LocalExecutorConfig, reports_awe


def analysis_task(size_mb: int) -> float:
    """Build a working set of ~size_mb and do a little arithmetic on it."""
    cells = int(size_mb * 1024 * 1024 / 8)
    data = np.ones(cells, dtype=np.float64)
    data *= 1.0000001
    return float(data[::4096].sum())


def main() -> None:
    rng = np.random.default_rng(97)
    # 18 small (~30 MB) tasks with 3 large (~160 MB) ones mixed in.
    sizes = [30 + int(rng.integers(0, 8)) for _ in range(18)]
    for position in (6, 11, 16):
        sizes[position] = 160

    config = LocalExecutorConfig(
        capacity=ResourceVector.of(cores=4, memory=2_048),
        max_concurrency=2,
    )
    allocator = TaskOrientedAllocator(
        AllocatorConfig(
            algorithm="exhaustive_bucketing",
            resources=(CORES, MEMORY),
            machine_capacity=config.capacity,
            exploratory=ExploratoryConfig(min_records=4),
            seed=101,
        )
    )
    executor = LocalExecutor(config, allocator=allocator)
    print(f"running {len(sizes)} real tasks (sizes {sorted(set(sizes))} MB)...\n")
    reports = executor.map("analysis", analysis_task, sizes)

    print(f"{'task':>4s} {'size':>5s} {'attempts':>9s} {'final alloc':>12s} "
          f"{'peak RSS':>9s} {'outcome':>8s}")
    for size, report in zip(sizes, reports):
        final = report.attempts[-1]
        print(
            f"{report.task_id:>4d} {size:>4d}M {len(report.attempts):>9d} "
            f"{final.allocation[MEMORY]:>10.0f}MB {final.peak_memory_mb:>8.0f}M "
            f"{final.outcome:>8s}"
        )

    kills = sum(
        1 for r in reports for a in r.attempts if a.outcome == "memory_exhausted"
    )
    print(f"\nreal memory kills (RLIMIT_AS): {kills}")
    print(f"memory AWE of the batch: {reports_awe(reports, MEMORY):.3f}")
    state = allocator.algorithm("analysis", MEMORY).state
    if state is not None:
        reps = ", ".join(f"{b.rep:.0f}MB@{b.prob:.2f}" for b in state.buckets)
        print(f"learned memory buckets: [{reps}]")
    print(
        "\nThe large tasks were killed at the small tasks' bucket, retried "
        "upward, and became their own bucket — all against live processes."
    )


if __name__ == "__main__":
    main()
