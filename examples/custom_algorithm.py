#!/usr/bin/env python
"""Extending the library: plug in a custom allocation algorithm.

The registry makes the allocator open to user strategies: subclass
:class:`~repro.core.base.AllocationAlgorithm`, decorate it with
``register_algorithm``, and the simulator, experiment grid and CLI can
run it by name.  This example adds a percentile-with-headroom strategy
(allocate the 95th percentile of observed peaks times a safety factor)
and benchmarks it against the paper's algorithms on the bimodal
workload.

Run:  python examples/custom_algorithm.py
"""

from typing import Optional

import numpy as np

from repro import AllocatorConfig
from repro.core.base import AllocationAlgorithm, register_algorithm
from repro.core.records import RecordList
from repro.core.resources import MEMORY
from repro.sim import SimulationConfig, WorkflowManager
from repro.sim.pool import PoolConfig
from repro.workflows import make_synthetic_workflow


@register_algorithm
class PercentileHeadroom(AllocationAlgorithm):
    """Allocate the p-th percentile of observed peaks, plus headroom.

    A deliberately simple strategy a practitioner might hand-roll: it
    tolerates a bounded failure rate (the tasks above the percentile)
    in exchange for ignoring outliers.  Deterministic, so the allocator
    caches one prediction per state version.
    """

    name = "percentile_headroom"
    conservative_exploration = True  # reuse the cheap 1 GB bootstrap

    def __init__(
        self,
        percentile: float = 95.0,
        headroom: float = 1.05,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__(rng=rng)
        if not (0 < percentile <= 100):
            raise ValueError(f"percentile must be in (0, 100], got {percentile}")
        if headroom < 1.0:
            raise ValueError(f"headroom must be >= 1, got {headroom}")
        self.percentile = percentile
        self.headroom = headroom
        self._records = RecordList()

    def update(self, value, significance=1.0, task_id=-1):
        self._records.add(value, significance=significance, task_id=task_id)

    def predict(self):
        if not self._records:
            return None
        return float(
            np.percentile(self._records.values, self.percentile) * self.headroom
        )

    @property
    def n_records(self):
        return len(self._records)

    def reset(self):
        self._records = RecordList()


def main() -> None:
    workflow = make_synthetic_workflow("bimodal", n_tasks=600, seed=23)
    print(f"workflow: {workflow}\n")
    print(f"{'algorithm':24s}{'AWE memory':>12s}{'attempts':>10s}{'failed':>8s}")
    for algorithm in (
        "percentile_headroom",
        "max_seen",
        "exhaustive_bucketing",
    ):
        manager = WorkflowManager(
            workflow,
            SimulationConfig(
                allocator=AllocatorConfig(algorithm=algorithm, seed=37),
                pool=PoolConfig(n_workers=12, ramp_up_seconds=400.0, seed=41),
            ),
        )
        result = manager.run()
        print(
            f"{algorithm:24s}{result.ledger.awe(MEMORY):>12.3f}"
            f"{result.n_attempts:>10d}{result.n_failed_attempts:>8d}"
        )
    print(
        "\nThe 95th-percentile strategy rides between Max Seen (no failures, "
        "outlier-sized fragmentation) and the bucketing algorithms "
        "(mode-sized allocations, occasional retries)."
    )


if __name__ == "__main__":
    main()
