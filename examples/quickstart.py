#!/usr/bin/env python
"""Quickstart: allocate a dynamic workflow with Exhaustive Bucketing.

Builds a 500-task synthetic workflow whose memory follows the paper's
running example N(8 GB, 2 GB), runs it through the simulator twice —
once with the Whole Machine baseline, once with Exhaustive Bucketing —
and prints the efficiency difference the bucketing approach buys.

Run:  python examples/quickstart.py
"""

from repro import AllocatorConfig
from repro.core.resources import CORES, DISK, MEMORY
from repro.sim import SimulationConfig, WorkflowManager
from repro.sim.pool import PoolConfig
from repro.workflows import make_synthetic_workflow


def run(algorithm: str, workflow):
    manager = WorkflowManager(
        workflow,
        SimulationConfig(
            allocator=AllocatorConfig(algorithm=algorithm, seed=7),
            pool=PoolConfig(n_workers=10, ramp_up_seconds=300.0, seed=11),
        ),
    )
    return manager.run()


def main() -> None:
    workflow = make_synthetic_workflow("normal", n_tasks=500, seed=3)
    print(f"workflow: {workflow}")
    print()

    baseline = run("whole_machine", workflow)
    bucketing = run("exhaustive_bucketing", workflow)

    print(f"{'':24s}{'whole_machine':>16s}{'exhaustive_bucketing':>22s}")
    for res in (CORES, MEMORY, DISK):
        print(
            f"AWE ({res.key:6s})        "
            f"{baseline.ledger.awe(res):>16.3f}{bucketing.ledger.awe(res):>22.3f}"
        )
    print(
        f"{'attempts':24s}{baseline.n_attempts:>16d}{bucketing.n_attempts:>22d}"
    )
    print(
        f"{'failed attempts':24s}"
        f"{baseline.n_failed_attempts:>16d}{bucketing.n_failed_attempts:>22d}"
    )
    print()
    gain = bucketing.ledger.awe(MEMORY) / baseline.ledger.awe(MEMORY)
    print(
        f"Exhaustive Bucketing delivers {gain:.1f}x the memory efficiency of "
        "allocating whole workers, at the cost of a few kill-and-retry cycles."
    )


if __name__ == "__main__":
    main()
