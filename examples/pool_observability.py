#!/usr/bin/env python
"""Operating an opportunistic pool: utilization, queues, trace export.

The administrator's view the paper's introduction argues for: good
per-task allocations let the batch system backfill more tasks per
worker, raising facility utilization.  This example runs the same
bimodal workload under Whole Machine and Exhaustive Bucketing on an
identical churning pool and compares the *operational* signals:

* allocation-level pool utilization over time;
* ready-queue depth and makespan;
* the full attempt log, exported to CSV for external tooling.

Run:  python examples/pool_observability.py
"""

import tempfile
from pathlib import Path

from repro import AllocatorConfig
from repro.core.resources import CORES, DISK, MEMORY
from repro.experiments.reporting import format_series
from repro.sim import SimulationConfig, WorkflowManager
from repro.sim.observability import TimelineRecorder
from repro.sim.pool import ChurnConfig, PoolConfig
from repro.workflows import export_attempts_csv, make_synthetic_workflow


def run(algorithm: str, workflow):
    manager = WorkflowManager(
        workflow,
        SimulationConfig(
            allocator=AllocatorConfig(algorithm=algorithm, seed=73),
            pool=PoolConfig(
                n_workers=12,
                ramp_up_seconds=300.0,
                churn=ChurnConfig(
                    mean_lifetime=5400.0,
                    mean_interarrival=1200.0,
                    min_workers=4,
                    max_workers=16,
                ),
                seed=79,
            ),
        ),
    )
    recorder = TimelineRecorder(manager, period=120.0)
    result = manager.run()
    return manager, result, recorder.timeline


def main() -> None:
    workflow = make_synthetic_workflow("bimodal", n_tasks=600, seed=83)
    print(f"workflow: {workflow}\n")

    rows = []
    timelines = {}
    managers = {}
    for algorithm in ("whole_machine", "exhaustive_bucketing"):
        manager, result, timeline = run(algorithm, workflow)
        timelines[algorithm] = timeline
        managers[algorithm] = manager
        rows.append(
            (
                algorithm,
                result.makespan / 3600.0,
                timeline.mean_utilization("cores"),
                timeline.mean_utilization("memory"),
                timeline.peak_queue_depth(),
                result.n_evicted_attempts,
            )
        )

    print(f"{'algorithm':24s}{'makespan(h)':>12s}{'util cores':>12s}"
          f"{'util memory':>12s}{'peak queue':>12s}{'evictions':>10s}")
    for algorithm, makespan, uc, um, queue, evicted in rows:
        print(f"{algorithm:24s}{makespan:>12.2f}{uc:>12.2f}{um:>12.2f}"
              f"{queue:>12d}{evicted:>10d}")

    print()
    print(format_series(
        "memory utilization over time (exhaustive_bucketing)",
        timelines["exhaustive_bucketing"].utilization_series("memory"),
        max_points=12,
    ))

    out = Path(tempfile.gettempdir()) / "repro_attempts.csv"
    export_attempts_csv(
        managers["exhaustive_bucketing"]._tasks.values(),
        resources=(CORES, MEMORY, DISK),
        path=out,
    )
    print(f"\nattempt log exported to {out} "
          f"({sum(1 for _ in open(out)) - 1} attempts)")
    print(
        "\nWhole-machine allocations pin one task per worker, so its pool "
        "looks 'fully utilized' while doing a fraction of the work; the "
        "bucketing allocator's utilization is honest — and its makespan "
        "shows where the reclaimed capacity went."
    )


if __name__ == "__main__":
    main()
