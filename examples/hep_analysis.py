#!/usr/bin/env python
"""High-energy-physics analysis campaign (TopEFT-shaped).

The scenario the paper's introduction motivates: a Coffea-style event
analysis whose ~4,500 tasks arrive in three categories with very
different resource needs, run on an opportunistic pool with workers
joining and leaving mid-campaign.  The example shows:

* per-category allocator state (preprocessing / processing /
  accumulating are sized independently);
* survival of worker churn (evicted tasks are retried transparently);
* the per-category efficiency breakdown the accounting ledger keeps.

Run:  python examples/hep_analysis.py
"""

from repro import AllocatorConfig
from repro.core.resources import CORES, DISK, MEMORY
from repro.sim import SimulationConfig, WorkflowManager
from repro.sim.pool import ChurnConfig, PoolConfig
from repro.workflows import make_topeft_workflow


def main() -> None:
    workflow = make_topeft_workflow(seed=5, scale=0.25)  # ~1,100 tasks
    print(f"workflow: {workflow}")

    manager = WorkflowManager(
        workflow,
        SimulationConfig(
            allocator=AllocatorConfig(algorithm="exhaustive_bucketing", seed=13),
            pool=PoolConfig(
                n_workers=20,
                ramp_up_seconds=600.0,
                churn=ChurnConfig(
                    mean_lifetime=3600.0,      # workers reclaimed after ~1h
                    mean_interarrival=900.0,   # replacements trickle in
                    min_workers=5,
                    max_workers=30,
                ),
                seed=17,
            ),
        ),
    )
    result = manager.run()
    ledger = result.ledger

    print(f"\ncompleted {ledger.n_tasks} tasks in {result.makespan / 3600:.2f} sim-hours")
    print(
        f"attempts={result.n_attempts} "
        f"(failed={result.n_failed_attempts}, evicted={result.n_evicted_attempts}); "
        f"workers joined={result.workers_joined}, reclaimed={result.workers_left}"
    )

    print(f"\n{'category':16s}{'AWE cores':>12s}{'AWE memory':>12s}{'AWE disk':>12s}")
    for category in ledger.categories():
        print(
            f"{category:16s}"
            f"{ledger.awe_of_category(category, CORES):>12.3f}"
            f"{ledger.awe_of_category(category, MEMORY):>12.3f}"
            f"{ledger.awe_of_category(category, DISK):>12.3f}"
        )
    print(
        f"{'— overall —':16s}"
        f"{ledger.awe(CORES):>12.3f}{ledger.awe(MEMORY):>12.3f}{ledger.awe(DISK):>12.3f}"
    )

    print("\nbucket states at campaign end (memory, MB):")
    for category in ledger.categories():
        algo = manager.allocator.algorithm(category, MEMORY)
        state = getattr(algo, "state", None)
        if state is not None:
            reps = ", ".join(f"{b.rep:.0f}@{b.prob:.2f}" for b in state.buckets)
            print(f"  {category:16s} [{reps}]")

    print(
        "\nNote the constant 306 MB disk: the bucketing state collapses to a "
        "single exact bucket, which is how the paper reaches ~100 % disk "
        "efficiency on this workflow."
    )


if __name__ == "__main__":
    main()
