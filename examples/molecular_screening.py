#!/usr/bin/env python
"""Molecular screening campaign (ColmenaXTB-shaped) with phase change.

ColmenaXTB first ranks candidate molecules with neural-network inference
(``evaluate_mpnn``: ~1.1 GB memory, ~1 core), then switches to computing
atomization energies for the winners (``compute_atomization_energy``:
~200 MB but 0.9-3.6 cores — inherently stochastic threading).  The two
phases are the paper's showcase of *why categories must be allocated
independently* and how the significance weighting adapts across a phase
boundary.

The example compares Greedy and Exhaustive Bucketing on the same trace
and prints the per-phase efficiency plus the memory convergence series.

Run:  python examples/molecular_screening.py
"""

from repro import AllocatorConfig
from repro.core.resources import CORES, MEMORY
from repro.experiments.reporting import format_series
from repro.metrics.summary import convergence_series
from repro.sim import SimulationConfig, WorkflowManager
from repro.sim.pool import PoolConfig
from repro.workflows import make_colmena_workflow


def run(algorithm: str, workflow):
    manager = WorkflowManager(
        workflow,
        SimulationConfig(
            allocator=AllocatorConfig(algorithm=algorithm, seed=29),
            pool=PoolConfig(n_workers=15, ramp_up_seconds=450.0, seed=31),
        ),
    )
    return manager.run()


def main() -> None:
    workflow = make_colmena_workflow(seed=19)
    print(f"workflow: {workflow}")
    n_mpnn = len(workflow.tasks_of("evaluate_mpnn"))
    print(f"phase 1: {n_mpnn} evaluate_mpnn, phase 2: "
          f"{len(workflow) - n_mpnn} compute_atomization_energy\n")

    results = {
        algorithm: run(algorithm, workflow)
        for algorithm in ("greedy_bucketing", "exhaustive_bucketing")
    }

    print(f"{'category':28s}{'metric':>12s}{'greedy':>10s}{'exhaustive':>12s}")
    for category in workflow.categories():
        for res in (CORES, MEMORY):
            row = [
                results[a].ledger.awe_of_category(category, res)
                for a in ("greedy_bucketing", "exhaustive_bucketing")
            ]
            print(f"{category:28s}{'AWE ' + res.key:>12s}{row[0]:>10.3f}{row[1]:>12.3f}")

    print()
    series = convergence_series(results["exhaustive_bucketing"], MEMORY, window=60)
    print(format_series("memory efficiency over completions (EB, windowed)", series))
    print(
        "\nWatch the dip around the phase boundary: the allocator's old "
        "1.1 GB buckets over-allocate the first 200 MB energy tasks until "
        "fresh records (with higher significance) dominate the state."
    )


if __name__ == "__main__":
    main()
