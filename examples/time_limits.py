#!/usr/bin/env python
"""Managing wall time as a fourth resource dimension.

The paper's task model includes an execution-time component ``t`` with
allocation ``t_a`` (a task is killed when it runs past its allowance),
though the evaluation reports AWE only for cores/memory/disk.  This
example turns on wall-time management — add
:data:`~repro.core.resources.TIME` to the allocator's resource list —
and shows:

* bootstrap time allowances falling back to one hour (workers have no
  "time capacity" to copy);
* the allocator learning per-category duration distributions and
  tightening allowances, with kill-and-retry when a straggler exceeds
  its learned limit;
* wall-time AWE alongside the usual three resources.

Run:  python examples/time_limits.py
"""

from repro import AllocatorConfig
from repro.core.resources import CORES, DISK, MEMORY, TIME
from repro.sim import SimulationConfig, WorkflowManager
from repro.sim.pool import PoolConfig
from repro.workflows import make_synthetic_workflow


def main() -> None:
    workflow = make_synthetic_workflow("normal", n_tasks=400, seed=61)
    print(f"workflow: {workflow}")
    durations = [t.duration for t in workflow]
    print(f"durations: min {min(durations):.0f}s, max {max(durations):.0f}s\n")

    manager = WorkflowManager(
        workflow,
        SimulationConfig(
            allocator=AllocatorConfig(
                algorithm="exhaustive_bucketing",
                resources=(CORES, MEMORY, DISK, TIME),
                seed=67,
            ),
            pool=PoolConfig(n_workers=10, ramp_up_seconds=300.0, seed=71),
        ),
    )
    result = manager.run()
    ledger = result.ledger

    print(f"{'resource':10s}{'AWE':>8s}")
    for res in (CORES, MEMORY, DISK, TIME):
        print(f"{res.key:10s}{ledger.awe(res):>8.3f}")

    time_kills = sum(
        1
        for task in manager._tasks.values()
        for attempt in task.attempts
        if TIME in attempt.exhausted
    )
    print(f"\nwall-time kills: {time_kills} of {result.n_failed_attempts} failed attempts")

    algo = manager.allocator.algorithm("synthetic_normal", TIME)
    state = algo.state
    if state is not None:
        reps = ", ".join(f"{b.rep:.0f}s@{b.prob:.2f}" for b in state.buckets)
        print(f"learned duration buckets: [{reps}]")
    print(
        "\nTime allowances trade straggler kills against queue honesty: a "
        "batch system that knows tasks finish in ~2 minutes can backfill "
        "far more aggressively than one told every task may take an hour."
    )


if __name__ == "__main__":
    main()
