"""Compare two BENCH_core.json files and fail on regressions.

Usage::

    python scripts/bench_compare.py BASELINE.json CURRENT.json [--threshold 0.20]

Every timing metric (``*_s``, lower is better) present in both files is
compared; a metric is a regression when the current value exceeds the
baseline by more than the threshold (default 20%).  Speedup metrics
(``*_x``, higher is better) regress when they *drop* by more than the
threshold.  Metrics present in only one file are reported but never
fatal, so the suite can grow without breaking old baselines.

Exit status: 0 when no metric regressed, 1 otherwise.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Dict, List, Optional


def load_metrics(path: str) -> Dict[str, float]:
    with open(path) as fh:
        doc = json.load(fh)
    metrics = doc.get("metrics")
    if not isinstance(metrics, dict):
        raise SystemExit(f"{path}: no 'metrics' object (not a BENCH_core.json?)")
    return {k: float(v) for k, v in metrics.items()}


def compare(
    baseline: Dict[str, float], current: Dict[str, float], threshold: float
) -> List[str]:
    """Return one line per regressed metric (empty list = all clear)."""
    regressions: List[str] = []
    for key in sorted(set(baseline) & set(current)):
        old, new = baseline[key], current[key]
        if key.endswith("_x"):
            # Speedup factor: higher is better.
            if old > 0 and new < old * (1.0 - threshold):
                regressions.append(
                    f"{key}: {old:.3f}x -> {new:.3f}x "
                    f"({(old - new) / old:+.0%} slower-than-baseline speedup)"
                )
        else:
            # Timing: lower is better.
            if old > 0 and new > old * (1.0 + threshold):
                regressions.append(
                    f"{key}: {old:.6f}s -> {new:.6f}s ({(new - old) / old:+.0%})"
                )
    return regressions


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("baseline", help="baseline BENCH_core.json")
    parser.add_argument("current", help="current BENCH_core.json")
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.20,
        help="relative regression tolerance (default 0.20 = 20%%)",
    )
    args = parser.parse_args(argv)

    baseline = load_metrics(args.baseline)
    current = load_metrics(args.current)

    shared = sorted(set(baseline) & set(current))
    only_old = sorted(set(baseline) - set(current))
    only_new = sorted(set(current) - set(baseline))
    for key in only_old:
        print(f"note: metric {key} only in baseline")
    for key in only_new:
        print(f"note: metric {key} only in current")

    regressions = compare(baseline, current, args.threshold)
    for key in shared:
        old, new = baseline[key], current[key]
        delta = (new - old) / old if old else float("inf")
        print(f"{key}: {old:.6f} -> {new:.6f} ({delta:+.1%})")

    if regressions:
        print(
            f"\nFAIL: {len(regressions)} metric(s) regressed "
            f"beyond {args.threshold:.0%}:"
        )
        for line in regressions:
            print(f"  {line}")
        return 1
    print(f"\nOK: no metric regressed beyond {args.threshold:.0%}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
