"""Compare BENCH_core.json files and fail on regressions.

Usage::

    python scripts/bench_compare.py BASELINE.json CURRENT.json [CURRENT2.json ...]
        [--threshold 0.20] [--abs-floor-s 0.001]

Every timing metric (``*_s``, lower is better) present in both files is
compared; a metric is a regression when the current value exceeds the
baseline by more than the threshold (default 20%).  Speedup metrics
(``*_x``, higher is better) regress when they *drop* by more than the
threshold.  Metrics present in only one file are reported but never
fatal, so the suite can grow without breaking old baselines.

Two guards keep scheduler noise from tripping the gate:

* **Best-of-repeats.**  More than one CURRENT file may be given (e.g.
  the same suite run several times in CI); each metric is compared at
  its best value across the runs — min for timings, max for speedups.
  One noisy run can then only *hide* a regression seen in another, never
  invent one.
* **Absolute floor.**  Sub-millisecond timings (below ``--abs-floor-s``,
  default 1 ms) are dominated by timer resolution and cache state, where
  a 20% relative swing is routine; such metrics are exempt from the
  relative gate unless the *regressed* value also clears the floor.
  Deltas are still printed.

Exit status: 0 when no metric regressed, 1 otherwise.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Dict, List, Optional


def load_metrics(path: str) -> Dict[str, float]:
    with open(path) as fh:
        doc = json.load(fh)
    metrics = doc.get("metrics")
    if not isinstance(metrics, dict):
        raise SystemExit(f"{path}: no 'metrics' object (not a BENCH_core.json?)")
    return {k: float(v) for k, v in metrics.items()}


def merge_best(runs: List[Dict[str, float]]) -> Dict[str, float]:
    """Per-metric best across repeated runs (min timings, max speedups)."""
    merged: Dict[str, float] = {}
    for run in runs:
        for key, value in run.items():
            if key not in merged:
                merged[key] = value
            elif key.endswith("_x"):
                merged[key] = max(merged[key], value)
            else:
                merged[key] = min(merged[key], value)
    return merged


def compare(
    baseline: Dict[str, float],
    current: Dict[str, float],
    threshold: float,
    abs_floor_s: float = 0.001,
) -> List[str]:
    """Return one line per regressed metric (empty list = all clear)."""
    regressions: List[str] = []
    for key in sorted(set(baseline) & set(current)):
        old, new = baseline[key], current[key]
        if key.endswith("_x"):
            # Speedup factor: higher is better.
            if old > 0 and new < old * (1.0 - threshold):
                regressions.append(
                    f"{key}: {old:.3f}x -> {new:.3f}x "
                    f"({(old - new) / old:+.0%} slower-than-baseline speedup)"
                )
        else:
            # Timing (or footprint): lower is better.
            if key.endswith("_s") and new < abs_floor_s:
                # Below timer-noise scale: relative swings are not
                # evidence of a regression.
                continue
            if old > 0 and new > old * (1.0 + threshold):
                regressions.append(
                    f"{key}: {old:.6f} -> {new:.6f} ({(new - old) / old:+.0%})"
                )
    return regressions


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("baseline", help="baseline BENCH_core.json")
    parser.add_argument(
        "current",
        nargs="+",
        help="current BENCH_core.json (several = best-of-repeats)",
    )
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.20,
        help="relative regression tolerance (default 0.20 = 20%%)",
    )
    parser.add_argument(
        "--abs-floor-s",
        type=float,
        default=0.001,
        help=(
            "timing metrics whose current value is below this many "
            "seconds are exempt from the relative gate (default 1 ms)"
        ),
    )
    args = parser.parse_args(argv)

    baseline = load_metrics(args.baseline)
    current = merge_best([load_metrics(path) for path in args.current])

    shared = sorted(set(baseline) & set(current))
    only_old = sorted(set(baseline) - set(current))
    only_new = sorted(set(current) - set(baseline))
    for key in only_old:
        print(f"note: metric {key} only in baseline")
    for key in only_new:
        print(f"note: metric {key} only in current")

    regressions = compare(baseline, current, args.threshold, args.abs_floor_s)
    for key in shared:
        old, new = baseline[key], current[key]
        delta = (new - old) / old if old else float("inf")
        print(f"{key}: {old:.6f} -> {new:.6f} ({delta:+.1%})")

    if regressions:
        print(
            f"\nFAIL: {len(regressions)} metric(s) regressed "
            f"beyond {args.threshold:.0%}:"
        )
        for line in regressions:
            print(f"  {line}")
        return 1
    print(f"\nOK: no metric regressed beyond {args.threshold:.0%}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
