#!/usr/bin/env python
"""End-to-end kill-and-resume smoke test of the experiment CLI.

The acceptance criterion of the checkpoint subsystem, exercised on real
processes:

1. run ``repro-experiments figure5 --out ref.txt`` to completion — the
   reference output;
2. launch the same experiment with ``--checkpoint-dir``, SIGTERM it as
   soon as at least one grid cell is journaled (mid-run, arbitrary
   point), and require exit code 143 with **no** ``--out`` file
   published;
3. relaunch with ``--resume`` and require byte-identical output to the
   reference.

Exits 0 on success, 1 with a diagnostic on any violation.  Used by the
``resume-smoke`` CI lane; run locally with::

    python scripts/kill_resume_smoke.py [--keep] [--tasks N]
"""

from __future__ import annotations

import argparse
import os
import shutil
import signal
import subprocess
import sys
import tempfile
import time

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def _cli_env() -> dict:
    env = dict(os.environ)
    src = os.path.join(REPO_ROOT, "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    return env


def _cli(args: list) -> list:
    return [sys.executable, "-m", "repro.cli", "figure5", *args]


def _experiment_args(tasks: int) -> list:
    return ["--tasks", str(tasks), "--workers", "4", "--ramp-up", "60"]


def fail(message: str) -> "NoReturn":  # noqa: F821 - py3.9 compatibility
    print(f"FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--tasks", type=int, default=60, help="grid size knob")
    parser.add_argument(
        "--keep", action="store_true", help="keep the scratch directory"
    )
    args = parser.parse_args()

    scratch = tempfile.mkdtemp(prefix="kill-resume-smoke-")
    ref_path = os.path.join(scratch, "reference.txt")
    out_path = os.path.join(scratch, "resumed.txt")
    ckpt_dir = os.path.join(scratch, "ckpt")
    journal = os.path.join(ckpt_dir, "figure5", "journal.jsonl")
    env = _cli_env()
    try:
        # Step 1: the uninterrupted reference.
        print("[smoke] reference run ...")
        proc = subprocess.run(
            _cli([*_experiment_args(args.tasks), "--out", ref_path]),
            env=env,
            cwd=scratch,
            capture_output=True,
        )
        if proc.returncode != 0:
            fail(f"reference run exited {proc.returncode}: {proc.stderr.decode()[-500:]}")
        reference = open(ref_path, "rb").read()

        # Step 2: launch, SIGTERM once the journal shows real progress.
        print("[smoke] interrupted run ...")
        victim = subprocess.Popen(
            _cli(
                [
                    *_experiment_args(args.tasks),
                    "--checkpoint-dir",
                    ckpt_dir,
                    "--checkpoint-interval",
                    "0.2",
                    "--out",
                    out_path,
                ]
            ),
            env=env,
            cwd=scratch,
            stdout=subprocess.DEVNULL,
            stderr=subprocess.PIPE,
        )
        deadline = time.monotonic() + 120.0
        while time.monotonic() < deadline and victim.poll() is None:
            try:
                with open(journal, "rb") as handle:
                    journaled_cells = handle.read().count(b"\n") - 1
            except FileNotFoundError:
                journaled_cells = -1
            if journaled_cells >= 1:
                break
            time.sleep(0.05)
        if victim.poll() is not None:
            fail("run finished before a cell could be journaled; raise --tasks")
        victim.send_signal(signal.SIGTERM)
        stderr = victim.communicate(timeout=60)[1].decode()
        if victim.returncode != 143:
            fail(f"interrupted run exited {victim.returncode}, expected 143 (128+SIGTERM)")
        if "--resume" not in stderr:
            fail(f"interrupt message lacks the resume hint: {stderr[-300:]}")
        if os.path.exists(out_path):
            fail("interrupted run published its --out file; partial results leaked")
        print(f"[smoke] killed mid-run (>= {journaled_cells} cells journaled), rc=143")

        # Step 3: resume and byte-compare.
        print("[smoke] resumed run ...")
        proc = subprocess.run(
            _cli(
                [
                    *_experiment_args(args.tasks),
                    "--checkpoint-dir",
                    ckpt_dir,
                    "--resume",
                    "--out",
                    out_path,
                ]
            ),
            env=env,
            cwd=scratch,
            capture_output=True,
        )
        if proc.returncode != 0:
            fail(f"resumed run exited {proc.returncode}: {proc.stderr.decode()[-500:]}")
        resumed = open(out_path, "rb").read()
        if resumed != reference:
            fail(
                "resumed output differs from the uninterrupted reference "
                f"({len(resumed)} vs {len(reference)} bytes) — resume is not "
                "bit-identical"
            )
        print(f"[smoke] OK: resumed output is byte-identical ({len(reference)} bytes)")
        return 0
    finally:
        if args.keep:
            print(f"[smoke] scratch kept at {scratch}")
        else:
            shutil.rmtree(scratch, ignore_errors=True)


if __name__ == "__main__":
    sys.exit(main())
