"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.records import RecordList
from repro.core.resources import ResourceVector


@pytest.fixture
def rng():
    return np.random.default_rng(1234)


@pytest.fixture
def normal_records(rng) -> RecordList:
    """200 records from the paper's running example N(8 GB, 2 GB)."""
    records = RecordList()
    for task_id, value in enumerate(np.clip(rng.normal(8000, 2000, 200), 50, None)):
        records.add(float(value), significance=float(task_id + 1), task_id=task_id)
    return records


@pytest.fixture
def bimodal_records(rng) -> RecordList:
    """Two clearly separated clusters: 200 MB and 1000 MB."""
    records = RecordList()
    task_id = 0
    for value in rng.normal(200, 10, 60):
        records.add(float(max(value, 1.0)), significance=float(task_id + 1), task_id=task_id)
        task_id += 1
    for value in rng.normal(1000, 20, 60):
        records.add(float(max(value, 1.0)), significance=float(task_id + 1), task_id=task_id)
        task_id += 1
    return records


@pytest.fixture
def small_alloc() -> ResourceVector:
    return ResourceVector.of(cores=1, memory=1000, disk=1000)
