"""Tests for Greedy Bucketing (Algorithm 1)."""

import numpy as np
import pytest

from repro.core.greedy import (
    GreedyBucketing,
    greedy_break_indices,
    greedy_break_indices_literal,
)
from repro.core.records import RecordList


def make_records(values, sigs=None):
    rl = RecordList()
    sigs = sigs or [1.0] * len(values)
    for task_id, (v, s) in enumerate(zip(values, sigs)):
        rl.add(v, significance=s, task_id=task_id)
    return rl


class TestGreedyBreakIndices:
    def test_single_record(self):
        rl = make_records([5.0])
        assert greedy_break_indices(rl) == [0]

    def test_identical_values_one_bucket(self):
        rl = make_records([10.0] * 20)
        assert greedy_break_indices(rl) == [19]

    def test_separated_clusters_split(self, bimodal_records):
        breaks = greedy_break_indices(bimodal_records)
        assert len(breaks) >= 2
        assert breaks[-1] == len(bimodal_records) - 1
        # The split isolates the low cluster from the high one: some
        # break must fall between value 300 and 900.
        values = bimodal_records.values
        assert any(300 < values[b] < 900 or values[b] <= 300 for b in breaks[:-1])

    def test_breaks_sorted_and_terminal(self, normal_records):
        breaks = greedy_break_indices(normal_records)
        assert breaks == sorted(set(breaks))
        assert breaks[-1] == len(normal_records) - 1

    def test_paper_two_record_split_rule(self):
        # Equal significance: split iff v1 < v2 / 2 (derived from the
        # four-case cost; see test_cost.py).
        assert greedy_break_indices(make_records([2.0, 10.0])) == [0, 1]
        assert greedy_break_indices(make_records([6.0, 10.0])) == [1]

    def test_matches_literal_implementation(self, bimodal_records):
        fast = greedy_break_indices(bimodal_records)
        literal = greedy_break_indices_literal(bimodal_records)
        assert fast == literal

    def test_matches_literal_on_normal(self, normal_records):
        assert greedy_break_indices(normal_records) == greedy_break_indices_literal(
            normal_records
        )

    def test_max_buckets_cap(self, bimodal_records):
        capped = greedy_break_indices(bimodal_records, max_buckets=1)
        assert capped == [len(bimodal_records) - 1]

    def test_invalid_max_buckets(self, normal_records):
        with pytest.raises(ValueError):
            greedy_break_indices(normal_records, max_buckets=0)

    def test_invalid_segment(self, normal_records):
        with pytest.raises(IndexError):
            greedy_break_indices(normal_records, lo=5, hi=len(normal_records))

    def test_deep_recursion_uses_explicit_stack(self):
        # A geometric sequence keeps splitting; must not hit Python's
        # recursion limit.
        values = [2.0**i for i in range(400)]
        rl = make_records(values)
        breaks = greedy_break_indices(rl)
        assert breaks[-1] == 399


class TestGreedyBucketingAlgorithm:
    def test_registry_name(self):
        assert GreedyBucketing.name == "greedy_bucketing"
        assert GreedyBucketing.conservative_exploration is True
        assert GreedyBucketing.deterministic_predictions is False

    def test_no_records_no_prediction(self):
        gb = GreedyBucketing(rng=np.random.default_rng(0))
        assert gb.predict() is None
        assert gb.predict_retry(10.0, 12.0) is None
        assert gb.state is None

    def test_predict_returns_bucket_rep(self, bimodal_records):
        gb = GreedyBucketing(rng=np.random.default_rng(0))
        for r in bimodal_records:
            gb.update(r.value, r.significance, r.task_id)
        reps = {b.rep for b in gb.state.buckets}
        for _ in range(20):
            assert gb.predict() in reps

    def test_retry_climbs(self, bimodal_records):
        gb = GreedyBucketing(rng=np.random.default_rng(0))
        for r in bimodal_records:
            gb.update(r.value, r.significance, r.task_id)
        low_rep = min(b.rep for b in gb.state.buckets)
        retry = gb.predict_retry(low_rep, low_rep)
        assert retry is not None and retry > low_rep

    def test_retry_above_max_returns_none(self, bimodal_records):
        gb = GreedyBucketing(rng=np.random.default_rng(0))
        for r in bimodal_records:
            gb.update(r.value, r.significance, r.task_id)
        top = max(b.rep for b in gb.state.buckets)
        assert gb.predict_retry(top, top) is None

    def test_lazy_recompute_batches_updates(self, bimodal_records):
        gb = GreedyBucketing(rng=np.random.default_rng(0))
        for r in bimodal_records:
            gb.update(r.value, r.significance, r.task_id)
        assert gb.recomputations == 0
        gb.predict()
        assert gb.recomputations == 1
        gb.predict()
        gb.predict_retry(1.0, 1.0)
        assert gb.recomputations == 1  # no new records, no recompute
        gb.update(500.0, 1.0, 999)
        gb.predict()
        assert gb.recomputations == 2

    def test_reset(self, bimodal_records):
        gb = GreedyBucketing(rng=np.random.default_rng(0))
        for r in bimodal_records:
            gb.update(r.value, r.significance, r.task_id)
        gb.predict()
        gb.reset()
        assert gb.n_records == 0
        assert gb.predict() is None

    def test_state_validates(self, normal_records):
        gb = GreedyBucketing(rng=np.random.default_rng(0))
        for r in normal_records:
            gb.update(r.value, r.significance, r.task_id)
        gb.state.validate()
