"""Tests for the TaskOrientedAllocator."""

import pytest

from repro.core.allocator import AllocatorConfig, ExploratoryConfig, TaskOrientedAllocator
from repro.core.resources import (
    CORES,
    DISK,
    MEMORY,
    PAPER_WORKER_CAPACITY,
    ResourceVector,
)


def bootstrap(alloc, category="proc", n=10, peaks=None):
    """Feed n completed records so the category leaves exploration."""
    peaks = peaks or ResourceVector.of(cores=2, memory=8000, disk=500)
    for task_id in range(n):
        alloc.observe(category, peaks, task_id=task_id)
    return alloc


class TestConfig:
    def test_defaults_match_paper(self):
        cfg = AllocatorConfig()
        assert cfg.exploratory.min_records == 10
        assert cfg.exploratory.allocation[MEMORY] == 1000
        assert cfg.machine_capacity == PAPER_WORKER_CAPACITY
        assert cfg.doubling_factor == 2.0

    def test_unknown_algorithm_rejected(self):
        with pytest.raises(KeyError):
            AllocatorConfig(algorithm="nope")

    def test_doubling_factor_must_exceed_one(self):
        with pytest.raises(ValueError):
            AllocatorConfig(doubling_factor=1.0)

    def test_with_algorithm(self):
        cfg = AllocatorConfig().with_algorithm("max_seen")
        assert cfg.algorithm == "max_seen"

    def test_exploratory_validation(self):
        with pytest.raises(ValueError):
            ExploratoryConfig(min_records=-1)
        with pytest.raises(ValueError):
            ExploratoryConfig(mode="bogus")
        with pytest.raises(ValueError):
            ExploratoryConfig(explore_concurrency=0)

    def test_effective_explore_concurrency(self):
        assert ExploratoryConfig().effective_explore_concurrency == 10
        assert ExploratoryConfig(explore_concurrency=3).effective_explore_concurrency == 3
        assert ExploratoryConfig(min_records=0).effective_explore_concurrency == 1


class TestExploratoryMode:
    def test_bucketing_gets_conservative_bootstrap(self):
        alloc = TaskOrientedAllocator(AllocatorConfig(algorithm="greedy_bucketing", seed=0))
        assert alloc.conservative_exploration
        first = alloc.allocate("proc", 0)
        assert first == ResourceVector.of(cores=1, memory=1000, disk=1000)

    def test_alternatives_get_whole_machine(self):
        alloc = TaskOrientedAllocator(AllocatorConfig(algorithm="max_seen", seed=0))
        assert not alloc.conservative_exploration
        first = alloc.allocate("proc", 0)
        assert first == PAPER_WORKER_CAPACITY

    def test_forced_modes(self):
        conservative = TaskOrientedAllocator(
            AllocatorConfig(
                algorithm="max_seen",
                exploratory=ExploratoryConfig(mode="conservative"),
            )
        )
        assert conservative.allocate("p", 0)[MEMORY] == 1000
        whole = TaskOrientedAllocator(
            AllocatorConfig(
                algorithm="greedy_bucketing",
                exploratory=ExploratoryConfig(mode="whole_machine"),
            )
        )
        assert whole.allocate("p", 0) == PAPER_WORKER_CAPACITY

    def test_exploration_ends_after_min_records(self):
        alloc = TaskOrientedAllocator(AllocatorConfig(algorithm="exhaustive_bucketing", seed=0))
        assert alloc.in_exploration("proc")
        bootstrap(alloc, n=9)
        assert alloc.in_exploration("proc")
        alloc.observe("proc", ResourceVector.of(cores=2, memory=8000, disk=500), task_id=9)
        assert not alloc.in_exploration("proc")

    def test_exploration_is_per_category(self):
        alloc = TaskOrientedAllocator(AllocatorConfig(algorithm="exhaustive_bucketing", seed=0))
        bootstrap(alloc, category="a", n=10)
        assert not alloc.in_exploration("a")
        assert alloc.in_exploration("b")

    def test_version_counter(self):
        alloc = TaskOrientedAllocator(AllocatorConfig(algorithm="max_seen", seed=0))
        assert alloc.version("proc") == 0
        alloc.observe("proc", ResourceVector.of(cores=1, memory=10, disk=10), task_id=0)
        assert alloc.version("proc") == 1


class TestSteadyState:
    def test_predictions_after_exploration(self):
        alloc = TaskOrientedAllocator(AllocatorConfig(algorithm="exhaustive_bucketing", seed=0))
        bootstrap(alloc)
        steady = alloc.allocate("proc", 10)
        # All records identical: the bucket rep equals the peak.
        assert steady == ResourceVector.of(cores=2, memory=8000, disk=500)

    def test_max_seen_granularity_wiring(self):
        alloc = TaskOrientedAllocator(AllocatorConfig(algorithm="max_seen", seed=0))
        bootstrap(alloc, peaks=ResourceVector.of(cores=0.9, memory=306, disk=306))
        steady = alloc.allocate("proc", 10)
        # Memory/disk round up to the 250 histogram; cores to 1.
        assert steady[MEMORY] == 500
        assert steady[DISK] == 500
        assert steady[CORES] == 1.0

    def test_whole_machine_capacity_wiring(self):
        alloc = TaskOrientedAllocator(AllocatorConfig(algorithm="whole_machine", seed=0))
        bootstrap(alloc)
        assert alloc.allocate("proc", 10) == PAPER_WORKER_CAPACITY

    def test_predictions_clamped_to_capacity(self):
        small = ResourceVector.of(cores=2, memory=4000, disk=4000)
        alloc = TaskOrientedAllocator(
            AllocatorConfig(algorithm="max_seen", machine_capacity=small, seed=0)
        )
        bootstrap(alloc, peaks=ResourceVector.of(cores=1, memory=3900, disk=100))
        # max_seen rounds 3900 -> 4000, already at capacity.
        assert alloc.allocate("proc", 10)[MEMORY] <= 4000

    def test_deterministic_predictions_cached(self):
        alloc = TaskOrientedAllocator(AllocatorConfig(algorithm="max_seen", seed=0))
        bootstrap(alloc)
        a = alloc.allocate("proc", 10)
        b = alloc.allocate("proc", 11)
        assert a is b  # same object, cached by (category, version)
        alloc.observe("proc", ResourceVector.of(cores=4, memory=9000, disk=500), task_id=12)
        c = alloc.allocate("proc", 13)
        assert c is not a


class TestRetries:
    def test_retry_grows_only_exhausted_resources(self):
        alloc = TaskOrientedAllocator(AllocatorConfig(algorithm="exhaustive_bucketing", seed=0))
        bootstrap(alloc)
        previous = ResourceVector.of(cores=2, memory=4000, disk=500)
        observed = ResourceVector.of(cores=1, memory=4000, disk=100)
        retry = alloc.allocate_retry(
            "proc", 20, previous=previous, observed=observed, exhausted=(MEMORY,)
        )
        assert retry[MEMORY] > 4000
        assert retry[CORES] == 2
        assert retry[DISK] == 500

    def test_retry_from_bucket_ladder(self):
        alloc = TaskOrientedAllocator(AllocatorConfig(algorithm="exhaustive_bucketing", seed=0))
        # Two clusters of records -> two buckets in memory.
        for task_id in range(10):
            peaks = ResourceVector.of(cores=1, memory=200 if task_id % 2 else 1000, disk=100)
            alloc.observe("proc", peaks, task_id=task_id)
        previous = ResourceVector.of(cores=1, memory=200, disk=100)
        observed = ResourceVector.of(cores=1, memory=200, disk=50)
        retry = alloc.allocate_retry(
            "proc", 20, previous=previous, observed=observed, exhausted=(MEMORY,)
        )
        assert retry[MEMORY] == 1000  # the higher bucket's rep

    def test_retry_doubles_when_no_higher_bucket(self):
        alloc = TaskOrientedAllocator(AllocatorConfig(algorithm="exhaustive_bucketing", seed=0))
        bootstrap(alloc)  # all records at memory=8000
        previous = ResourceVector.of(cores=2, memory=8000, disk=500)
        observed = ResourceVector.of(cores=2, memory=8000, disk=200)
        retry = alloc.allocate_retry(
            "proc", 20, previous=previous, observed=observed, exhausted=(MEMORY,)
        )
        assert retry[MEMORY] == 16000

    def test_exploratory_retry_doubles(self):
        alloc = TaskOrientedAllocator(AllocatorConfig(algorithm="greedy_bucketing", seed=0))
        previous = ResourceVector.of(cores=1, memory=1000, disk=1000)
        observed = ResourceVector.of(cores=0.5, memory=1000, disk=100)
        retry = alloc.allocate_retry(
            "proc", 0, previous=previous, observed=observed, exhausted=(MEMORY,)
        )
        assert retry[MEMORY] == 2000
        assert retry[CORES] == 1

    def test_retry_clamps_to_capacity(self):
        alloc = TaskOrientedAllocator(AllocatorConfig(algorithm="greedy_bucketing", seed=0))
        previous = ResourceVector.of(cores=1, memory=40000, disk=1000)
        observed = ResourceVector.of(cores=1, memory=40000, disk=100)
        retry = alloc.allocate_retry(
            "proc", 0, previous=previous, observed=observed, exhausted=(MEMORY,)
        )
        assert retry[MEMORY] == 64000  # capped at the worker

    def test_retry_requires_exhausted(self):
        alloc = TaskOrientedAllocator(AllocatorConfig(seed=0))
        with pytest.raises(ValueError):
            alloc.allocate_retry(
                "proc", 0,
                previous=ResourceVector.of(cores=1),
                observed=ResourceVector.of(cores=1),
                exhausted=(),
            )

    def test_retry_unmanaged_resource_rejected(self):
        from repro.core.resources import TIME

        alloc = TaskOrientedAllocator(AllocatorConfig(seed=0))
        with pytest.raises(KeyError):
            alloc.allocate_retry(
                "proc", 0,
                previous=ResourceVector.of(cores=1, memory=1, disk=1),
                observed=ResourceVector.of(cores=1, memory=1, disk=1),
                exhausted=(TIME,),
            )


class TestObserve:
    def test_default_significance_is_task_id_plus_one(self):
        alloc = TaskOrientedAllocator(AllocatorConfig(algorithm="greedy_bucketing", seed=0))
        alloc.observe("proc", ResourceVector.of(cores=1, memory=100, disk=100), task_id=0)
        algo = alloc.algorithm("proc", MEMORY)
        assert algo.records[0].significance == 1.0

    def test_explicit_significance(self):
        alloc = TaskOrientedAllocator(AllocatorConfig(algorithm="greedy_bucketing", seed=0))
        alloc.observe(
            "proc",
            ResourceVector.of(cores=1, memory=100, disk=100),
            task_id=0,
            significance=42.0,
        )
        assert alloc.algorithm("proc", MEMORY).records[0].significance == 42.0

    def test_records_count(self):
        alloc = TaskOrientedAllocator(AllocatorConfig(seed=0))
        assert alloc.records_count("proc") == 0
        bootstrap(alloc, n=4)
        assert alloc.records_count("proc") == 4

    def test_categories_and_reset(self):
        alloc = TaskOrientedAllocator(AllocatorConfig(seed=0))
        alloc.allocate("a", 0)
        alloc.allocate("b", 1)
        assert set(alloc.categories()) == {"a", "b"}
        alloc.reset()
        assert alloc.categories() == ()

    def test_overrides_via_kwargs(self):
        alloc = TaskOrientedAllocator(algorithm="max_seen", seed=3)
        assert alloc.algorithm_name == "max_seen"
