"""Tests for significance policies."""

import pytest

from repro.core.significance import (
    SIGNIFICANCE_REGISTRY,
    ExponentialDecaySignificance,
    TaskIdSignificance,
    UniformSignificance,
    WindowSignificance,
    make_significance_policy,
)


class TestRegistry:
    def test_all_policies_registered(self):
        assert set(SIGNIFICANCE_REGISTRY) >= {
            "task_id",
            "uniform",
            "exponential_decay",
            "window",
        }

    def test_make_by_name(self):
        assert isinstance(make_significance_policy("task_id"), TaskIdSignificance)
        assert isinstance(
            make_significance_policy("exponential_decay", decay=0.8),
            ExponentialDecaySignificance,
        )

    def test_unknown_policy(self):
        with pytest.raises(KeyError):
            make_significance_policy("linear_regression")


class TestTaskIdSignificance:
    def test_paper_rule(self):
        """Task with ID 1 has significance... IDs count from 0 here, so
        significance = ID + 1 (the paper counts from 1)."""
        policy = TaskIdSignificance()
        assert policy.significance(0) == 1.0
        assert policy.significance(41) == 42.0

    def test_negative_ids_clamped(self):
        assert TaskIdSignificance().significance(-5) == 1.0


class TestUniformSignificance:
    def test_constant(self):
        policy = UniformSignificance()
        assert policy.significance(0) == policy.significance(10**6) == 1.0


class TestExponentialDecaySignificance:
    def test_ratio_matches_decay(self):
        policy = ExponentialDecaySignificance(decay=0.9)
        ratio = policy.significance(10) / policy.significance(11)
        assert ratio == pytest.approx(0.9)

    def test_monotone_increasing(self):
        policy = ExponentialDecaySignificance(decay=0.95)
        values = [policy.significance(i) for i in range(50)]
        assert values == sorted(values)

    def test_stays_finite_for_huge_ids(self):
        policy = ExponentialDecaySignificance(decay=0.5)
        assert policy.significance(10**7) < float("inf")
        assert policy.significance(10**7) > 0

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            ExponentialDecaySignificance(decay=1.0)
        with pytest.raises(ValueError):
            ExponentialDecaySignificance(decay=0.5, rebase=0)


class TestWindowSignificance:
    def test_old_records_negligible(self):
        policy = WindowSignificance(window=100)
        # A record a full window older carries ~0.1 % of the weight.
        ratio = policy.significance(0) / policy.significance(100)
        assert ratio < 0.002

    def test_validation(self):
        with pytest.raises(ValueError):
            WindowSignificance(window=5)


class TestPolicyInAllocator:
    def test_allocator_uses_configured_policy(self):
        from repro.core.allocator import AllocatorConfig, TaskOrientedAllocator
        from repro.core.resources import MEMORY, ResourceVector

        alloc = TaskOrientedAllocator(
            AllocatorConfig(
                algorithm="greedy_bucketing", significance="uniform", seed=0
            )
        )
        alloc.observe("p", ResourceVector.of(cores=1, memory=100, disk=10), task_id=5)
        assert alloc.algorithm("p", MEMORY).records[0].significance == 1.0

    def test_allocator_accepts_policy_instance(self):
        from repro.core.allocator import AllocatorConfig, TaskOrientedAllocator
        from repro.core.resources import MEMORY, ResourceVector

        alloc = TaskOrientedAllocator(
            AllocatorConfig(
                algorithm="greedy_bucketing",
                significance=ExponentialDecaySignificance(decay=0.5),
                seed=0,
            )
        )
        alloc.observe("p", ResourceVector.of(cores=1, memory=100, disk=10), task_id=2)
        assert alloc.algorithm("p", MEMORY).records[0].significance == pytest.approx(4.0)

    def test_unknown_policy_name_rejected(self):
        from repro.core.allocator import AllocatorConfig, TaskOrientedAllocator

        with pytest.raises(KeyError):
            TaskOrientedAllocator(AllocatorConfig(significance="bogus"))
