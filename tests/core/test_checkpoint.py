"""Tests for the checkpoint primitives and durable allocator state.

Covers the JSON-safe building blocks in :mod:`repro.checkpoint` (atomic
writes, WAL journals, envelopes, RNG capture) plus the ``state_dict`` /
``load_state`` round-trips they enable: a restored RecordList or
allocator must be *bit-identical* to the original — not just numerically
close — because the resume proofs in ``tests/sim/test_resume.py`` hash
the state and compare digests.
"""

import json
import os

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.checkpoint import (
    FORMAT_VERSION,
    CheckpointError,
    GracefulShutdown,
    append_jsonl,
    canonical_json,
    generator_state,
    load_checkpoint,
    read_jsonl,
    restore_generator,
    save_checkpoint,
    state_digest,
    write_json_atomic,
    write_text_atomic,
)
from repro.core.allocator import AllocatorConfig, ExploratoryConfig, TaskOrientedAllocator
from repro.core.base import ALGORITHM_REGISTRY
from repro.core.records import RecordList
from repro.core.resources import ResourceVector

# -- atomic IO ----------------------------------------------------------------


def test_write_text_atomic_creates_parents_and_leaves_no_tmp(tmp_path):
    target = tmp_path / "deep" / "nested" / "report.txt"
    write_text_atomic(str(target), "hello\n")
    assert target.read_text() == "hello\n"
    # No stray temp files: everything in the directory is the target.
    assert os.listdir(target.parent) == ["report.txt"]


def test_write_text_atomic_replaces_existing(tmp_path):
    target = tmp_path / "out.txt"
    write_text_atomic(str(target), "old")
    write_text_atomic(str(target), "new")
    assert target.read_text() == "new"


def test_write_json_atomic_round_trips_floats_exactly(tmp_path):
    # repr-based shortest encoding: every float64 survives JSON exactly.
    values = [0.1, 1 / 3, 1e-300, 123456789.123456789, float(np.nextafter(1.0, 2.0))]
    target = tmp_path / "doc.json"
    write_json_atomic(str(target), {"values": values})
    loaded = json.loads(target.read_text())
    assert loaded["values"] == values  # exact equality, not approx


# -- WAL journal --------------------------------------------------------------


def test_read_jsonl_round_trip(tmp_path):
    path = str(tmp_path / "journal.jsonl")
    docs = [{"i": 0}, {"i": 1, "x": [1.5, 2.5]}, "bare-string"]
    for doc in docs:
        append_jsonl(path, doc)
    assert read_jsonl(path) == docs


def test_read_jsonl_drops_torn_tail(tmp_path):
    path = str(tmp_path / "journal.jsonl")
    append_jsonl(path, {"i": 0})
    append_jsonl(path, {"i": 1})
    with open(path, "a", encoding="utf-8") as handle:
        handle.write('{"i": 2, "tr')  # crash mid-append
    assert read_jsonl(path) == [{"i": 0}, {"i": 1}]


def test_read_jsonl_rejects_mid_file_corruption(tmp_path):
    path = str(tmp_path / "journal.jsonl")
    with open(path, "w", encoding="utf-8") as handle:
        handle.write('{"i": 0}\nnot json\n{"i": 2}\n')
    with pytest.raises(CheckpointError, match="malformed line 2"):
        read_jsonl(path)


# -- envelope -----------------------------------------------------------------


def test_checkpoint_envelope_round_trip(tmp_path):
    path = str(tmp_path / "snap.json")
    save_checkpoint(path, "simulation", {"events": 42, "now": 13.5})
    kind, payload = load_checkpoint(path)
    assert kind == "simulation"
    assert payload == {"events": 42, "now": 13.5}
    # Expected-kind check passes and fails as appropriate.
    load_checkpoint(path, kind="simulation")
    with pytest.raises(CheckpointError, match="holds a 'simulation' snapshot"):
        load_checkpoint(path, kind="grid")


def test_load_checkpoint_rejects_wrong_magic_version_and_garbage(tmp_path):
    path = str(tmp_path / "bad.json")
    write_json_atomic(path, {"magic": "something-else", "version": 1})
    with pytest.raises(CheckpointError, match="not a repro checkpoint"):
        load_checkpoint(path)
    write_json_atomic(
        path,
        {
            "magic": "repro-checkpoint",
            "version": FORMAT_VERSION + 1,
            "kind": "simulation",
            "payload": {},
        },
    )
    with pytest.raises(CheckpointError, match="format version"):
        load_checkpoint(path)
    with open(path, "w", encoding="utf-8") as handle:
        handle.write("{ torn")
    with pytest.raises(CheckpointError, match="cannot read"):
        load_checkpoint(path)
    with pytest.raises(CheckpointError, match="cannot read"):
        load_checkpoint(str(tmp_path / "missing.json"))


# -- canonical hashing & RNG state --------------------------------------------


def test_canonical_json_is_order_insensitive():
    assert canonical_json({"b": 1, "a": 2}) == canonical_json({"a": 2, "b": 1})
    assert state_digest({"b": 1, "a": 2}) == state_digest({"a": 2, "b": 1})
    assert state_digest({"a": 1}) != state_digest({"a": 2})


def test_generator_state_round_trip():
    rng = np.random.default_rng(99)
    rng.normal(size=17)  # advance into an arbitrary mid-stream position
    saved = generator_state(rng)
    expected = rng.normal(size=8).tolist()

    fresh = np.random.default_rng(0)
    restore_generator(fresh, saved)
    assert fresh.normal(size=8).tolist() == expected


def test_generator_state_is_json_safe():
    state = generator_state(np.random.default_rng(3))
    json.dumps(state)  # no numpy scalars may remain


def test_restore_generator_rejects_kind_mismatch():
    rng = np.random.default_rng(0)
    state = generator_state(rng)
    state["bit_generator"] = "MT19937"
    with pytest.raises(CheckpointError, match="RNG kind mismatch"):
        restore_generator(np.random.default_rng(0), state)


# -- GracefulShutdown ---------------------------------------------------------


def test_graceful_shutdown_trip_semantics():
    shutdown = GracefulShutdown(install=False)
    with shutdown:
        assert not shutdown.triggered
        shutdown.trip(15)
        assert shutdown.triggered
        assert shutdown.signum == 15


# -- RecordList round-trip (property-based) -----------------------------------

record_triples = st.lists(
    st.tuples(
        st.floats(min_value=1e-3, max_value=1e9, allow_nan=False, allow_infinity=False),
        st.floats(min_value=1e-2, max_value=1e4, allow_nan=False, allow_infinity=False),
    ),
    min_size=0,
    max_size=80,
)


def _build(pairs):
    records = RecordList()
    for task_id, (value, sig) in enumerate(pairs):
        records.add(float(value), significance=float(sig), task_id=task_id)
    return records


@given(record_triples)
@settings(max_examples=60, deadline=None)
def test_record_list_state_round_trip_is_bit_exact(pairs):
    original = _build(pairs)
    state = original.state_dict()
    # The state must survive an actual JSON round trip, as on disk.
    restored = RecordList.from_state(json.loads(json.dumps(state)))
    assert state_digest(restored.state_dict()) == state_digest(state)
    # Prefix buffers are stored verbatim, never recomputed: byte-compare.
    n = len(original)
    assert restored.sig_prefix.tobytes() == original.sig_prefix.tobytes()
    assert restored.sigval_prefix.tobytes() == original.sigval_prefix.tobytes()
    assert restored.values.tobytes() == original.values.tobytes()
    assert len(restored) == n


@given(record_triples)
@settings(max_examples=30, deadline=None)
def test_restored_record_list_continues_identically(pairs):
    """Adding the same record to original and restored diverges nowhere."""
    original = _build(pairs)
    restored = RecordList.from_state(original.state_dict())
    for records in (original, restored):
        records.add(3333.25, significance=7.5, task_id=10_000)
    assert state_digest(original.state_dict()) == state_digest(restored.state_dict())


def test_record_list_from_state_rejects_inconsistent_lengths():
    state = _build([(1.0, 1.0), (2.0, 1.0)]).state_dict()
    state["sig_prefix"] = state["sig_prefix"][:-1]
    with pytest.raises(ValueError, match="lengths differ"):
        RecordList.from_state(state)


# -- allocator round-trip, every registered algorithm -------------------------


def _exercise(alloc, offset=0):
    """A fixed observe/allocate workload; returns the allocations made."""
    rng = np.random.default_rng(2024)
    out = []
    for task_id in range(offset, offset + 12):
        out.append(alloc.allocate("proc", task_id))
        peak = ResourceVector.of(
            cores=1 + (task_id % 3),
            memory=float(np.clip(rng.normal(8000, 2000), 50, None)),
            disk=100.0 + 10.0 * task_id,
        )
        alloc.observe("proc", peak, task_id=task_id)
    out.append(alloc.allocate("merge", offset + 100))
    return out


@pytest.mark.parametrize("algorithm", sorted(ALGORITHM_REGISTRY))
def test_allocator_state_round_trip(algorithm):
    config = AllocatorConfig(
        algorithm=algorithm, seed=7, exploratory=ExploratoryConfig(min_records=3)
    )
    original = TaskOrientedAllocator(config)
    _exercise(original)
    state = json.loads(json.dumps(original.state_dict()))  # via-disk round trip

    restored = TaskOrientedAllocator(config)
    restored.load_state(state)
    assert state_digest(restored.state_dict()) == state_digest(state)

    # The restored allocator's *future* must match, not just its past:
    # same predictions, same RNG stream continuation.
    assert _exercise(restored, offset=50) == _exercise(original, offset=50)
    assert state_digest(restored.state_dict()) == state_digest(original.state_dict())


def test_allocator_load_state_refuses_config_mismatch():
    donor = TaskOrientedAllocator(AllocatorConfig(algorithm="max_seen", seed=1))
    _exercise(donor)
    state = donor.state_dict()
    other = TaskOrientedAllocator(AllocatorConfig(algorithm="greedy_bucketing", seed=1))
    with pytest.raises(CheckpointError, match="snapshot is for algorithm"):
        other.load_state(state)
