"""Tests for the resource model."""

import pytest

from repro.core.resources import (
    CORES,
    DISK,
    MEMORY,
    PAPER_EXPLORATORY_ALLOCATION,
    PAPER_WORKER_CAPACITY,
    RESOURCES,
    TIME,
    Resource,
    ResourceVector,
    resource,
)


class TestResource:
    def test_predefined_resources_exist(self):
        assert CORES.key == "cores"
        assert MEMORY.unit == "MB"
        assert DISK.unit == "MB"
        assert TIME.unit == "s"

    def test_equality_is_by_key(self):
        assert Resource("cores") == CORES
        assert Resource("cores", unit="whatever") == CORES

    def test_hashable_by_key(self):
        assert len({CORES, Resource("cores"), MEMORY}) == 2

    def test_lookup_by_key(self):
        assert resource("memory") is MEMORY

    def test_unknown_key_raises(self):
        with pytest.raises(KeyError, match="unknown resource"):
            resource("plutonium")

    def test_register_new_resource(self):
        gpus = RESOURCES.register("gpus", unit="devices")
        assert resource("gpus") is gpus
        # Re-registering the same key returns the same object.
        assert RESOURCES.register("gpus", unit="devices") is gpus

    def test_register_conflicting_unit_raises(self):
        RESOURCES.register("fpga_luts", unit="luts")
        with pytest.raises(ValueError, match="already registered"):
            RESOURCES.register("fpga_luts", unit="gates")

    def test_invalid_key_rejected(self):
        with pytest.raises(ValueError):
            Resource("")
        with pytest.raises(ValueError):
            Resource("no spaces")


class TestResourceVector:
    def test_of_constructor_drops_zeros(self):
        v = ResourceVector.of(cores=2, memory=0)
        assert CORES in v
        assert MEMORY not in v
        assert v[MEMORY] == 0.0  # absent means zero

    def test_string_keys_resolve(self):
        v = ResourceVector({"cores": 4})
        assert v[CORES] == 4.0

    def test_kwargs_constructor(self):
        v = ResourceVector(cores=2, memory=512)
        assert v[CORES] == 2 and v[MEMORY] == 512

    def test_negative_component_rejected(self):
        with pytest.raises(ValueError, match="negative"):
            ResourceVector.of(cores=-1)

    def test_nan_component_rejected(self):
        with pytest.raises(ValueError, match="NaN"):
            ResourceVector({CORES: float("nan")})

    def test_fits_within(self):
        usage = ResourceVector.of(cores=2, memory=900)
        limit = ResourceVector.of(cores=4, memory=1000)
        assert usage.fits_within(limit)
        assert not limit.fits_within(usage)

    def test_fits_within_handles_missing_components(self):
        usage = ResourceVector.of(cores=1)
        limit = ResourceVector.of(cores=2, memory=100)
        assert usage.fits_within(limit)
        # A component present in usage but missing from the limit fails.
        assert not ResourceVector.of(disk=1).fits_within(limit)

    def test_exceeded_by(self):
        limit = ResourceVector.of(cores=2, memory=1000)
        usage = ResourceVector.of(cores=3, memory=500)
        assert limit.exceeded_by(usage) == (CORES,)

    def test_exceeded_by_boundary_is_not_exceeding(self):
        limit = ResourceVector.of(cores=2)
        assert limit.exceeded_by(ResourceVector.of(cores=2)) == ()

    def test_add_and_subtract(self):
        a = ResourceVector.of(cores=2, memory=100)
        b = ResourceVector.of(cores=1, memory=300)
        assert (a + b)[CORES] == 3
        # Subtraction clamps at zero.
        assert (a - b)[MEMORY] == 0.0

    def test_scale(self):
        v = ResourceVector.of(cores=2) * 2.5
        assert v[CORES] == 5.0
        with pytest.raises(ValueError):
            v * -1

    def test_componentwise_max_min(self):
        a = ResourceVector.of(cores=1, memory=800)
        b = ResourceVector.of(cores=4, memory=200)
        assert a.componentwise_max(b) == ResourceVector.of(cores=4, memory=800)
        assert a.componentwise_min(b) == ResourceVector.of(cores=1, memory=200)

    def test_replace_and_restrict(self):
        v = ResourceVector.of(cores=1, memory=100, disk=50)
        assert v.replace(CORES, 8)[CORES] == 8
        restricted = v.restrict([CORES, MEMORY])
        assert DISK not in restricted

    def test_equality_ignores_explicit_zeros(self):
        assert ResourceVector({CORES: 1.0, MEMORY: 0.0}) == ResourceVector({CORES: 1.0})

    def test_hash_consistent_with_equality(self):
        a = ResourceVector({CORES: 1.0, MEMORY: 0.0})
        b = ResourceVector({CORES: 1.0})
        assert hash(a) == hash(b)

    def test_is_zero(self):
        assert ResourceVector().is_zero()
        assert not ResourceVector.of(cores=1).is_zero()

    def test_paper_constants(self):
        assert PAPER_WORKER_CAPACITY[CORES] == 16
        assert PAPER_WORKER_CAPACITY[MEMORY] == 64_000
        assert PAPER_EXPLORATORY_ALLOCATION == ResourceVector.of(
            cores=1, memory=1000, disk=1000
        )

    def test_mapping_protocol(self):
        v = ResourceVector.of(cores=2, memory=100)
        assert len(v) == 2
        assert set(v) == {CORES, MEMORY}
        assert dict(v)[CORES] == 2.0

    def test_raw_exposes_components(self):
        v = ResourceVector.of(cores=2)
        assert v.raw == {CORES: 2.0}
