"""Equivalence: array-backed RecordList vs the seed implementation.

The fast path in :mod:`repro.core.records` replaced the seed's sorted
Python-object list (kept as
:class:`repro.core.records_legacy.LegacyRecordList`) with preallocated
numpy buffers and incremental prefix sums.  These property-based tests
drive both implementations through random insert/evict sequences and
assert the observable API agrees:

* record order (values, significances, task ids) — exactly;
* prefix sums and weighted means — to float tolerance (the incremental
  maintenance associates the additions differently than a full cumsum);
* ``index_below`` and eviction survivors — exactly.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.records import RecordList, ResourceRecord
from repro.core.records_legacy import LegacyRecordList

# One record as (value, significance, task_id); values repeat often so
# tie-breaking paths are exercised.
record_strategy = st.tuples(
    st.sampled_from([0.0, 1.0, 1.5, 2.0, 5.0, 5.0, 100.0, 1e6])
    | st.floats(min_value=0.0, max_value=1e9, allow_nan=False, allow_infinity=False),
    st.sampled_from([1.0, 2.0, 2.0, 7.5])
    | st.floats(min_value=1e-6, max_value=1e6, allow_nan=False, allow_infinity=False),
    st.integers(min_value=-1, max_value=10_000),
)

sequence_strategy = st.lists(record_strategy, min_size=1, max_size=60)


def _assert_equivalent(new: RecordList, old: LegacyRecordList) -> None:
    assert len(new) == len(old)
    np.testing.assert_array_equal(new.values, old.values)
    np.testing.assert_array_equal(new.significances, old.significances)
    assert [r.task_id for r in new] == [r.task_id for r in old]
    np.testing.assert_allclose(new.sig_prefix, old.sig_prefix, rtol=1e-12, atol=1e-12)
    np.testing.assert_allclose(
        new.sigval_prefix, old.sigval_prefix, rtol=1e-12, atol=1e-9
    )
    assert new.total_significance() == pytest.approx(old.total_significance())
    n = len(new)
    probes = {0.0, 1.0, float(old.values[0]), float(old.values[-1]), 1e12}
    for probe in probes:
        assert new.index_below(probe) == old.index_below(probe)
    # A few deterministic subranges, including the full range.
    ranges = [(0, n - 1)]
    if n >= 3:
        ranges += [(1, n - 1), (0, n // 2), (n // 3, 2 * n // 3)]
    # Range queries subtract prefix sums, so their rounding error scales
    # with the *prefix* magnitude, not the difference: a subrange whose
    # true sum is tiny next to the running total cancels catastrophically,
    # and weighted_mean then divides by a possibly-tiny significance
    # total, amplifying that absolute error further.  Both
    # implementations are correctly rounded individually; the tolerance
    # must follow the condition number, not a fixed rel.
    eps = np.finfo(float).eps
    sp_scale = float(np.max(np.abs(old.sig_prefix)))
    svp_scale = float(np.max(np.abs(old.sigval_prefix)))
    slack = 8 * max(n, 8) * eps  # accumulated over incremental maintenance
    for lo, hi in ranges:
        den = max(old.sig_sum(lo, hi), np.finfo(float).tiny)
        assert new.sig_sum(lo, hi) == pytest.approx(
            old.sig_sum(lo, hi), rel=1e-6, abs=slack * sp_scale
        )
        assert new.weighted_mean(lo, hi) == pytest.approx(
            old.weighted_mean(lo, hi), rel=1e-6, abs=slack * svp_scale / den
        )
        assert new.max_value(lo, hi) == old.max_value(lo, hi)


@settings(max_examples=200, deadline=None)
@given(sequence_strategy)
def test_append_sequences_match_seed_implementation(ops):
    new, old = RecordList(), LegacyRecordList()
    for value, sig, task_id in ops:
        new.add(value, significance=sig, task_id=task_id)
        old.add(value, significance=sig, task_id=task_id)
    _assert_equivalent(new, old)


@settings(max_examples=150, deadline=None)
@given(sequence_strategy, st.integers(min_value=1, max_value=20))
def test_windowed_eviction_matches_seed_implementation(ops, capacity):
    new = RecordList(capacity=capacity)
    old = LegacyRecordList(capacity=capacity)
    for value, sig, task_id in ops:
        new.add(value, significance=sig, task_id=task_id)
        old.add(value, significance=sig, task_id=task_id)
        assert len(new) <= capacity
    _assert_equivalent(new, old)


@settings(max_examples=100, deadline=None)
@given(sequence_strategy)
def test_bulk_construction_matches_seed_implementation(ops):
    records = [
        ResourceRecord(value=v, significance=s, task_id=t) for v, s, t in ops
    ]
    _assert_equivalent(RecordList(records), LegacyRecordList(records))


@settings(max_examples=100, deadline=None)
@given(sequence_strategy, st.integers(min_value=1, max_value=10))
def test_bulk_construction_with_capacity_matches(ops, capacity):
    records = [
        ResourceRecord(value=v, significance=s, task_id=t) for v, s, t in ops
    ]
    _assert_equivalent(
        RecordList(records, capacity=capacity),
        LegacyRecordList(records, capacity=capacity),
    )


@settings(max_examples=100, deadline=None)
@given(sequence_strategy)
def test_extend_matches_seed_implementation(ops):
    mid = len(ops) // 2
    new, old = RecordList(), LegacyRecordList()
    for value, sig, task_id in ops[:mid]:
        new.add(value, significance=sig, task_id=task_id)
        old.add(value, significance=sig, task_id=task_id)
    tail = [ResourceRecord(value=v, significance=s, task_id=t) for v, s, t in ops[mid:]]
    new.extend(tail)
    old.extend(tail)
    _assert_equivalent(new, old)


class TestArrayBackedInternals:
    """Behaviours specific to the array-backed implementation."""

    def test_views_are_snapshots_across_mutation(self):
        rl = RecordList()
        rl.add(1.0)
        before = rl.values
        rl.add(2.0)
        # The old array must not be mutated in place by the append.
        assert list(before) == [1.0]
        assert list(rl.values) == [1.0, 2.0]

    def test_buffer_growth_preserves_contents(self):
        rl = RecordList()
        values = list(range(1, 200))  # crosses several doubling boundaries
        for v in reversed(values):
            rl.add(float(v))
        assert list(rl.values) == [float(v) for v in values]
        assert rl.sig_sum(0, len(values) - 1) == pytest.approx(len(values))

    def test_single_eviction_fast_path_matches_stable_tie_break(self):
        # Two records tie on minimal significance: the earlier index
        # (lower value) must be evicted, as the seed's stable sort did.
        new = RecordList(capacity=2)
        old = LegacyRecordList(capacity=2)
        for rl in (new, old):
            rl.add(10.0, significance=1.0, task_id=0)
            rl.add(20.0, significance=1.0, task_id=1)
            rl.add(30.0, significance=5.0, task_id=2)
        np.testing.assert_array_equal(new.values, old.values)
        assert list(new.values) == [20.0, 30.0]

    def test_task_ids_view(self):
        rl = RecordList()
        rl.add(2.0, task_id=7)
        rl.add(1.0, task_id=3)
        assert list(rl.task_ids) == [3, 7]
        with pytest.raises(ValueError):
            rl.task_ids[0] = 0

    def test_add_validates_like_resource_record(self):
        rl = RecordList()
        with pytest.raises(ValueError):
            rl.add(-1.0)
        with pytest.raises(ValueError):
            rl.add(float("nan"))
        with pytest.raises(ValueError):
            rl.add(1.0, significance=0.0)

    def test_negative_indexing_and_slices(self):
        rl = RecordList()
        for v in [3.0, 1.0, 2.0]:
            rl.add(v)
        assert rl[-1].value == 3.0
        assert [r.value for r in rl[0:2]] == [1.0, 2.0]
        with pytest.raises(IndexError):
            rl[3]
