"""Tests for the Tovar et al. job-sizing strategies."""

import numpy as np
import pytest

from repro.core.tovar import MaxThroughput, MinWaste


def feed(algo, values):
    for task_id, v in enumerate(values):
        algo.update(float(v), task_id=task_id)
    return algo


class TestMinWaste:
    def test_registry_and_flags(self):
        assert MinWaste.name == "min_waste"
        assert MinWaste.conservative_exploration is False
        assert MinWaste.deterministic_predictions is True

    def test_no_records_no_prediction(self):
        assert MinWaste().predict() is None

    def test_single_record_predicts_it(self):
        assert feed(MinWaste(), [500.0]).predict() == 500.0

    def test_prediction_is_an_observed_value(self, rng):
        values = np.clip(rng.normal(8000, 2000, 300), 50, None)
        mw = feed(MinWaste(), values)
        assert mw.predict() in set(values)

    def test_identical_values(self):
        mw = feed(MinWaste(), [306.0] * 40)
        assert mw.predict() == 306.0

    def test_objective_is_actually_minimized(self, rng):
        """Brute-force the expected waste over candidates and compare."""
        values = np.sort(np.clip(rng.normal(100, 30, 60), 1, None))
        mw = feed(MinWaste(), values)
        pick = mw.predict()
        max_seen = values.max()

        def expected_waste(a):
            total = 0.0
            for v in values:
                if v <= a:
                    total += a - v
                else:
                    total += a + (max_seen - v)
            return total / len(values)

        best = min(set(values), key=expected_waste)
        assert expected_waste(pick) == pytest.approx(expected_waste(best))

    def test_retry_goes_to_max_seen(self, rng):
        values = np.clip(rng.normal(100, 30, 50), 1, None)
        mw = feed(MinWaste(), values)
        pick = mw.predict()
        if pick < values.max():
            assert mw.predict_retry(pick, pick) == values.max()

    def test_retry_beyond_max_returns_none(self):
        mw = feed(MinWaste(), [10.0, 20.0])
        assert mw.predict_retry(20.0, 25.0) is None

    def test_lazy_recompute(self):
        mw = feed(MinWaste(), [10.0, 20.0, 30.0])
        first = mw.predict()
        assert mw.predict() == first  # cached
        mw.update(100.0)
        assert mw.predict() is not None  # recomputed without error

    def test_reset(self):
        mw = feed(MinWaste(), [10.0])
        mw.reset()
        assert mw.predict() is None


class TestMaxThroughput:
    def test_registry(self):
        assert MaxThroughput.name == "max_throughput"

    def test_maximizes_success_per_resource(self, rng):
        values = np.sort(np.clip(rng.normal(100, 30, 60), 1, None))
        mt = feed(MaxThroughput(), values)
        pick = mt.predict()

        def inverse_throughput(a):
            f = np.mean(values <= a)
            return a / f

        best = min(set(values), key=inverse_throughput)
        assert inverse_throughput(pick) == pytest.approx(inverse_throughput(best))

    def test_picks_at_most_min_waste_on_heavy_tail(self, rng):
        """Max Throughput under-allocates relative to Min Waste.

        Throughput ignores the cost of retries, so on a heavy-tailed
        distribution it must not pick a larger first allocation than
        Min Waste does.
        """
        values = np.clip(500 + rng.exponential(3000, 400), 1, None)
        mw = feed(MinWaste(), values)
        mt = feed(MaxThroughput(), values)
        assert mt.predict() <= mw.predict()

    def test_objectives_differ_from_min_waste(self, rng):
        """The two strategies pick different values on a bimodal mix.

        (A regression guard: an earlier formulation made the objectives
        differ by a constant, collapsing them to the same argmin.)
        """
        rng = np.random.default_rng(7)
        low = rng.normal(100, 5, 300)
        high = rng.normal(1000, 30, 100)
        values = np.clip(np.concatenate([low, high]), 1, None)
        mw = feed(MinWaste(), values)
        mt = feed(MaxThroughput(), values)
        assert mt.predict() != mw.predict()

    def test_single_record(self):
        assert feed(MaxThroughput(), [42.0]).predict() == 42.0

    def test_retry_to_max(self):
        mt = feed(MaxThroughput(), [10.0, 50.0, 100.0])
        pick = mt.predict()
        assert pick < 100.0
        assert mt.predict_retry(pick, pick) == 100.0
