"""Tests for the expected-waste cost kernels."""

import numpy as np
import pytest

from repro.core.buckets import BucketState
from repro.core.cost import (
    exhaustive_cost,
    exhaustive_cost_reference,
    expected_waste_table,
    greedy_split_cost_reference,
    greedy_split_costs,
)
from repro.core.records import RecordList


def make_records(pairs):
    rl = RecordList()
    for task_id, (value, sig) in enumerate(pairs):
        rl.add(value, significance=sig, task_id=task_id)
    return rl


class TestGreedyCost:
    def test_vectorized_matches_reference(self, normal_records):
        hi = len(normal_records) - 1
        costs = greedy_split_costs(normal_records, 0, hi)
        for i in range(0, hi + 1, 7):
            assert costs[i] == pytest.approx(
                greedy_split_cost_reference(normal_records, 0, i, hi), rel=1e-9
            )

    def test_vectorized_matches_reference_on_subsegment(self, normal_records):
        lo, hi = 20, 120
        costs = greedy_split_costs(normal_records, lo, hi)
        for i in range(lo, hi + 1, 11):
            assert costs[i - lo] == pytest.approx(
                greedy_split_cost_reference(normal_records, lo, i, hi), rel=1e-9
            )

    def test_one_bucket_cost_is_rep_minus_mean(self):
        rl = make_records([(10.0, 1.0), (20.0, 1.0), (30.0, 1.0)])
        costs = greedy_split_costs(rl, 0, 2)
        assert costs[-1] == pytest.approx(30.0 - 20.0)

    def test_two_identical_values_prefer_single_bucket(self):
        rl = make_records([(10.0, 1.0), (10.0, 1.0)])
        costs = greedy_split_costs(rl, 0, 1)
        # Splitting equal values can only add retry risk.
        assert costs[-1] <= costs[0] + 1e-12

    def test_paper_two_record_example(self):
        # v1=2, v2=10, equal significance: split wins iff v1 < v2/2.
        rl = make_records([(2.0, 1.0), (10.0, 1.0)])
        costs = greedy_split_costs(rl, 0, 1)
        # Split cost: p1*p2*v2 = 0.25*10 = 2.5; one bucket: 10 - 6 = 4.
        assert costs[0] == pytest.approx(2.5)
        assert costs[1] == pytest.approx(4.0)
        assert costs[0] < costs[1]

    def test_costs_non_negative(self, normal_records):
        costs = greedy_split_costs(normal_records, 0, len(normal_records) - 1)
        assert (costs >= -1e-9).all()

    def test_invalid_segment_raises(self, normal_records):
        with pytest.raises(IndexError):
            greedy_split_costs(normal_records, 0, len(normal_records))
        with pytest.raises(IndexError):
            greedy_split_cost_reference(normal_records, 5, 3, 10)

    def test_single_record_segment(self):
        rl = make_records([(5.0, 1.0)])
        costs = greedy_split_costs(rl, 0, 0)
        assert costs[0] == pytest.approx(0.0)


class TestExhaustiveCost:
    def test_matches_reference_small(self):
        reps = [10.0, 20.0, 40.0]
        probs = [0.3, 0.5, 0.2]
        estimates = [8.0, 15.0, 35.0]
        fast = exhaustive_cost(np.array(reps), np.array(probs), np.array(estimates))
        slow = exhaustive_cost_reference(reps, probs, estimates)
        assert fast == pytest.approx(slow, rel=1e-12)

    def test_matches_reference_random(self, rng):
        for _ in range(10):
            n = int(rng.integers(1, 8))
            reps = np.sort(rng.uniform(1, 100, n))
            probs = rng.dirichlet(np.ones(n))
            estimates = reps * rng.uniform(0.5, 1.0, n)
            fast = exhaustive_cost(reps, probs, estimates)
            slow = exhaustive_cost_reference(list(reps), list(probs), list(estimates))
            assert fast == pytest.approx(slow, rel=1e-9)

    def test_single_bucket_cost(self):
        # One bucket: W = rep - estimate.
        assert exhaustive_cost(
            np.array([10.0]), np.array([1.0]), np.array([7.0])
        ) == pytest.approx(3.0)

    def test_table_upper_triangle_is_fragmentation(self):
        reps = np.array([10.0, 20.0])
        probs = np.array([0.5, 0.5])
        estimates = np.array([8.0, 18.0])
        table = expected_waste_table(reps, probs, estimates)
        assert table[0, 0] == pytest.approx(2.0)   # rep0 - est0
        assert table[0, 1] == pytest.approx(12.0)  # rep1 - est0
        assert table[1, 1] == pytest.approx(2.0)   # rep1 - est1

    def test_table_failure_chains(self):
        # Task in bucket 1, chose bucket 0: waste = rep0 + T[1][1]
        # (only one higher bucket to re-draw from).
        reps = np.array([10.0, 20.0])
        probs = np.array([0.5, 0.5])
        estimates = np.array([8.0, 18.0])
        table = expected_waste_table(reps, probs, estimates)
        assert table[1, 0] == pytest.approx(10.0 + 2.0)

    def test_three_bucket_chain_renormalizes(self):
        reps = np.array([10.0, 20.0, 30.0])
        probs = np.array([0.2, 0.3, 0.5])
        estimates = np.array([9.0, 19.0, 29.0])
        table = expected_waste_table(reps, probs, estimates)
        # Task in bucket 2, chose bucket 0: rep0 + renormalized
        # expectation over buckets 1 and 2.
        p1, p2 = 0.3 / 0.8, 0.5 / 0.8
        expected = 10.0 + p1 * table[2, 1] + p2 * table[2, 2]
        assert table[2, 0] == pytest.approx(expected)

    def test_cost_non_negative(self, rng):
        for _ in range(5):
            n = int(rng.integers(1, 6))
            reps = np.sort(rng.uniform(1, 100, n))
            probs = rng.dirichlet(np.ones(n))
            estimates = reps * rng.uniform(0.3, 1.0, n)
            assert exhaustive_cost(reps, probs, estimates) >= 0.0

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            expected_waste_table(np.array([1.0]), np.array([0.5, 0.5]), np.array([1.0]))

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            expected_waste_table(np.array([]), np.array([]), np.array([]))


class TestCostAgainstBucketState:
    def test_state_arrays_feed_cost(self, bimodal_records):
        state = BucketState(bimodal_records, [59, 119])
        two = exhaustive_cost(state.reps, state.probs, state.estimates)
        single = BucketState.single(bimodal_records)
        one = exhaustive_cost(single.reps, single.probs, single.estimates)
        # Clearly separated clusters: two buckets waste less in
        # expectation than one.
        assert two < one
