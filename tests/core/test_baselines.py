"""Tests for Whole Machine and Max Seen."""

import pytest

from repro.core.baselines import MaxSeen, WholeMachine


class TestWholeMachine:
    def test_registry_and_flags(self):
        assert WholeMachine.name == "whole_machine"
        assert WholeMachine.conservative_exploration is False
        assert WholeMachine.deterministic_predictions is True

    def test_always_predicts_capacity(self):
        wm = WholeMachine(capacity=64000.0)
        assert wm.predict() == 64000.0
        wm.update(100.0)
        assert wm.predict() == 64000.0

    def test_zero_capacity_predicts_none(self):
        assert WholeMachine(capacity=0.0).predict() is None

    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError):
            WholeMachine(capacity=-1.0)

    def test_retry_above_capacity_gives_up(self):
        wm = WholeMachine(capacity=100.0)
        assert wm.predict_retry(100.0, 100.0) is None
        assert wm.predict_retry(50.0, 60.0) == 100.0

    def test_record_counting_and_reset(self):
        wm = WholeMachine(capacity=10.0)
        wm.update(1.0)
        wm.update(2.0)
        assert wm.n_records == 2
        wm.reset()
        assert wm.n_records == 0


class TestMaxSeen:
    def test_registry_and_flags(self):
        assert MaxSeen.name == "max_seen"
        assert MaxSeen.conservative_exploration is False
        assert MaxSeen.deterministic_predictions is True

    def test_no_records_no_prediction(self):
        assert MaxSeen().predict() is None

    def test_tracks_maximum(self):
        ms = MaxSeen(granularity=0.0)
        for v in [100.0, 500.0, 300.0]:
            ms.update(v)
        assert ms.max_seen == 500.0
        assert ms.predict() == 500.0

    def test_histogram_rounding_paper_example(self):
        # Section V-C: 306 MB consumption -> 500 MB allocation with the
        # 250-wide histogram.
        ms = MaxSeen(granularity=250.0)
        ms.update(306.0)
        assert ms.predict() == 500.0

    def test_exact_multiple_not_rounded_up(self):
        ms = MaxSeen(granularity=250.0)
        ms.update(500.0)
        assert ms.predict() == 500.0

    def test_zero_granularity_is_exact(self):
        ms = MaxSeen(granularity=0.0)
        ms.update(306.0)
        assert ms.predict() == 306.0

    def test_negative_granularity_rejected(self):
        with pytest.raises(ValueError):
            MaxSeen(granularity=-1.0)

    def test_default_retry_uses_new_max(self):
        ms = MaxSeen(granularity=0.0)
        ms.update(100.0)
        # The failed task observed more than everything recorded: the
        # default retry has no better answer than None (doubling).
        assert ms.predict_retry(100.0, 150.0) is None
        ms.update(400.0)
        assert ms.predict_retry(100.0, 150.0) == 400.0

    def test_significance_ignored(self):
        ms = MaxSeen(granularity=0.0)
        ms.update(10.0, significance=100.0)
        ms.update(50.0, significance=0.5)
        assert ms.predict() == 50.0

    def test_reset(self):
        ms = MaxSeen()
        ms.update(306.0)
        ms.reset()
        assert ms.predict() is None
        assert ms.n_records == 0
