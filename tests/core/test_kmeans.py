"""Tests for k-means bucketing."""

import numpy as np
import pytest

from repro.core.kmeans import KMeansBucketing, kmeans_1d


class TestKmeans1D:
    def test_two_clear_clusters(self):
        values = np.sort(np.concatenate([
            np.random.default_rng(0).normal(100, 5, 50),
            np.random.default_rng(1).normal(1000, 20, 50),
        ]))
        centroids, labels = kmeans_1d(values, 2)
        assert centroids[0] == pytest.approx(100, abs=10)
        assert centroids[1] == pytest.approx(1000, abs=30)
        # Labels split exactly at the gap.
        assert (labels[:50] == 0).all() and (labels[50:] == 1).all()

    def test_k_greater_than_unique_values(self):
        values = np.array([5.0, 5.0, 5.0])
        centroids, labels = kmeans_1d(values, 4)
        assert centroids.size == 1
        assert (labels == 0).all()

    def test_centroids_ascending(self):
        rng = np.random.default_rng(2)
        values = np.sort(rng.uniform(0, 100, 200))
        centroids, _ = kmeans_1d(values, 5)
        assert (np.diff(centroids) >= 0).all()

    def test_single_cluster(self):
        values = np.array([1.0, 2.0, 3.0])
        centroids, labels = kmeans_1d(values, 1)
        assert centroids[0] == pytest.approx(2.0)
        assert (labels == 0).all()

    def test_deterministic(self):
        rng = np.random.default_rng(3)
        values = np.sort(rng.normal(50, 10, 100))
        a, _ = kmeans_1d(values, 3)
        b, _ = kmeans_1d(values, 3)
        assert np.array_equal(a, b)

    def test_validation(self):
        with pytest.raises(ValueError):
            kmeans_1d(np.array([1.0]), 0)
        with pytest.raises(ValueError):
            kmeans_1d(np.array([]), 2)


class TestKMeansBucketing:
    def test_registry(self):
        assert KMeansBucketing.name == "kmeans_bucketing"
        assert KMeansBucketing.deterministic_predictions is True

    def test_ladder_from_clusters(self):
        algo = KMeansBucketing(k=2)
        for i, v in enumerate([100.0, 110.0, 105.0, 1000.0, 1010.0]):
            algo.update(v, task_id=i)
        reps = algo.bucket_reps()
        assert reps == (110.0, 1010.0)
        assert algo.predict() == 110.0
        assert algo.predict_retry(110.0, 110.0) == 1010.0
        assert algo.predict_retry(1010.0, 1010.0) is None

    def test_no_records(self):
        algo = KMeansBucketing()
        assert algo.predict() is None
        assert algo.bucket_reps() is None

    def test_identical_records_single_rep(self):
        algo = KMeansBucketing(k=3)
        for i in range(10):
            algo.update(306.0, task_id=i)
        assert algo.bucket_reps() == (306.0,)

    def test_reps_are_observed_values(self):
        rng = np.random.default_rng(4)
        algo = KMeansBucketing(k=4)
        values = [float(v) for v in rng.normal(500, 100, 60)]
        for i, v in enumerate(values):
            algo.update(max(v, 1.0), task_id=i)
        for rep in algo.bucket_reps():
            assert rep in {max(v, 1.0) for v in values}

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            KMeansBucketing(k=0)

    def test_runs_in_simulator(self):
        from repro.experiments.config import ExperimentConfig
        from repro.experiments.runner import run_cell

        result = run_cell(
            "bimodal",
            "kmeans_bucketing",
            ExperimentConfig(n_tasks=80, n_workers=4, ramp_up_seconds=30.0),
        )
        assert result.ledger.n_tasks == 80

    def test_reset(self):
        algo = KMeansBucketing()
        algo.update(1.0, task_id=0)
        algo.reset()
        assert algo.n_records == 0
