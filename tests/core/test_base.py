"""Tests for the algorithm base contract and registry."""

import pytest

from repro.core.base import (
    ALGORITHM_REGISTRY,
    AllocationAlgorithm,
    make_algorithm,
    register_algorithm,
)


class _Stub(AllocationAlgorithm):
    """Minimal concrete algorithm for contract tests (not registered)."""

    name = "stub_for_tests"

    def __init__(self, prediction=None, rng=None):
        super().__init__(rng=rng)
        self._prediction = prediction
        self._count = 0

    def update(self, value, significance=1.0, task_id=-1):
        self._count += 1

    def predict(self):
        return self._prediction

    @property
    def n_records(self):
        return self._count

    def reset(self):
        self._count = 0


class TestRegistry:
    def test_paper_algorithms_registered(self):
        expected = {
            "whole_machine",
            "max_seen",
            "min_waste",
            "max_throughput",
            "quantized_bucketing",
            "greedy_bucketing",
            "exhaustive_bucketing",
        }
        assert expected <= set(ALGORITHM_REGISTRY)

    def test_extras_registered(self):
        assert {"hybrid_bucketing", "kmeans_bucketing"} <= set(ALGORITHM_REGISTRY)

    def test_make_algorithm(self):
        algo = make_algorithm("max_seen", granularity=100.0)
        assert algo.granularity == 100.0

    def test_make_unknown_rejected(self):
        with pytest.raises(KeyError, match="registered"):
            make_algorithm("gradient_descent")

    def test_register_requires_name(self):
        class Nameless(_Stub):
            name = ""

        with pytest.raises(ValueError, match="non-empty"):
            register_algorithm(Nameless)

    def test_register_rejects_duplicate_name(self):
        class Impostor(_Stub):
            name = "max_seen"

        with pytest.raises(ValueError, match="already registered"):
            register_algorithm(Impostor)

    def test_reregistering_same_class_is_idempotent(self):
        cls = ALGORITHM_REGISTRY["max_seen"]
        assert register_algorithm(cls) is cls


class TestDefaultRetryContract:
    def test_default_retry_uses_predict_when_it_grows(self):
        algo = _Stub(prediction=100.0)
        assert algo.predict_retry(50.0, 60.0) == 100.0

    def test_default_retry_declines_when_prediction_too_small(self):
        algo = _Stub(prediction=100.0)
        assert algo.predict_retry(100.0, 90.0) is None
        assert algo.predict_retry(80.0, 120.0) is None

    def test_default_retry_declines_without_prediction(self):
        assert _Stub(prediction=None).predict_retry(1.0, 1.0) is None

    def test_default_flags(self):
        assert _Stub.conservative_exploration is False
        assert _Stub.deterministic_predictions is True

    def test_repr_mentions_records(self):
        algo = _Stub()
        algo.update(1.0)
        assert "records=1" in repr(algo)
