"""The partition-scoring kernels vs their table-building reference.

:mod:`repro.core.cost` keeps the paper-literal ``probs @ T @ probs``
contraction as the reference implementation; the streaming kernels in
:mod:`repro.core.kernels` must agree with it to float tolerance (the
accumulation orders differ by design) and with each other, and
:func:`partition_stats` must agree with :class:`BucketState` *bit for
bit* — the allocator swaps freely between the two.
"""

import math

import numpy as np
import pytest

from repro.core.buckets import BucketState
from repro.core.cost import exhaustive_cost
from repro.core.exhaustive import evenly_spaced_break_indices
from repro.core.kernels import (
    HAVE_NUMBA,
    VECTOR_KERNEL_MIN_BUCKETS,
    partition_stats,
    partition_waste,
    partition_waste_batch,
    partition_waste_scalar,
    partition_waste_vector,
    waste_kernel_name,
)
from repro.core.records import RecordList


def make_records(n, seed=0):
    rng = np.random.default_rng(seed)
    rl = RecordList()
    for i, value in enumerate(rng.lognormal(mean=5.0, sigma=1.5, size=n)):
        rl.add(float(value), significance=float(i + 1), task_id=i)
    return rl


def random_partitions(records, rng, count=6):
    """Random valid partitions of ``records``, various widths."""
    n = len(records)
    partitions = []
    for _ in range(count):
        k = int(rng.integers(1, min(n, 12) + 1))
        interior = sorted(rng.choice(n - 1, size=k - 1, replace=False).tolist()) if k > 1 else []
        partitions.append([int(i) for i in interior] + [n - 1])
    return partitions


# -- waste kernels vs the cost-table reference --------------------------------


@pytest.mark.parametrize("seed", range(5))
def test_scalar_kernel_matches_exhaustive_cost(seed):
    records = make_records(40, seed=seed)
    rng = np.random.default_rng(100 + seed)
    for breaks in random_partitions(records, rng):
        reps, probs, estimates = partition_stats(records, breaks)
        got = partition_waste_scalar(reps, probs, estimates)
        want = exhaustive_cost(
            np.asarray(reps), np.asarray(probs), np.asarray(estimates)
        )
        assert got == pytest.approx(want, rel=1e-12, abs=1e-12)


@pytest.mark.parametrize("seed", range(5))
def test_vector_kernel_matches_scalar(seed):
    records = make_records(200, seed=seed)
    rng = np.random.default_rng(200 + seed)
    for breaks in random_partitions(records, rng, count=4):
        reps, probs, estimates = partition_stats(records, breaks)
        got = partition_waste_vector(
            np.asarray(reps), np.asarray(probs), np.asarray(estimates)
        )
        want = partition_waste_scalar(reps, probs, estimates)
        assert got == pytest.approx(want, rel=1e-9)


def test_batch_kernel_matches_per_config_scoring():
    records = make_records(300, seed=3)
    configs = [evenly_spaced_break_indices(records, k) for k in range(1, 11)]
    # Mixed widths, including the degenerate single-bucket configuration.
    flat_stats = [partition_stats(records, breaks) for breaks in configs]
    reps = np.concatenate([s[0] for s in flat_stats])
    probs = np.concatenate([s[1] for s in flat_stats])
    estimates = np.concatenate([s[2] for s in flat_stats])
    lengths = np.array([len(b) for b in configs])
    costs = partition_waste_batch(reps, probs, estimates, lengths)
    assert costs.shape == (len(configs),)
    for c, (r, p, e) in enumerate(flat_stats):
        assert costs[c] == pytest.approx(partition_waste_scalar(r, p, e), rel=1e-9)
        assert math.isfinite(costs[c])


def test_single_bucket_waste_is_rep_minus_estimate():
    records = make_records(25, seed=9)
    reps, probs, estimates = partition_stats(records, [len(records) - 1])
    assert probs == [1.0]
    expected = reps[0] - estimates[0]
    assert partition_waste_scalar(reps, probs, estimates) == pytest.approx(expected)
    assert partition_waste(reps, probs, estimates) == pytest.approx(expected)


# -- partition_stats vs BucketState: bit identity -----------------------------


@pytest.mark.parametrize("seed", range(4))
def test_partition_stats_bit_identical_to_bucket_state(seed):
    records = make_records(60, seed=seed)
    rng = np.random.default_rng(300 + seed)
    for breaks in random_partitions(records, rng):
        reps, probs, estimates = partition_stats(records, breaks)
        state = BucketState(records, breaks)
        assert reps == state.reps.tolist()  # exact, not approx
        assert probs == state.probs.tolist()
        assert estimates == state.estimates.tolist()


def test_trusted_bucket_state_equals_validated_state():
    """The hot-path trusted constructor adopts stats without changing them."""
    records = make_records(50, seed=7)
    breaks = evenly_spaced_break_indices(records, 8)
    stats = partition_stats(records, breaks)
    trusted = BucketState(records, list(breaks), stats=stats, trusted=True)
    validated = BucketState(records, list(breaks))
    assert trusted.reps.tolist() == validated.reps.tolist()
    assert trusted.probs.tolist() == validated.probs.tolist()
    assert trusted.estimates.tolist() == validated.estimates.tolist()
    assert [b.hi for b in trusted.buckets] == [b.hi for b in validated.buckets]


# -- dispatch -----------------------------------------------------------------


def test_waste_kernel_dispatch_boundaries():
    narrow = "numba" if HAVE_NUMBA else "scalar"
    assert waste_kernel_name(1) == narrow
    assert waste_kernel_name(VECTOR_KERNEL_MIN_BUCKETS - 1) == narrow
    assert waste_kernel_name(VECTOR_KERNEL_MIN_BUCKETS) == "vector"
    assert waste_kernel_name(10_000) == "vector"


def test_partition_waste_dispatch_agrees_across_tiers():
    records = make_records(400, seed=11)
    # Wide partition: force >= VECTOR_KERNEL_MIN_BUCKETS buckets.
    step = len(records) // (VECTOR_KERNEL_MIN_BUCKETS + 4)
    breaks = list(range(step - 1, len(records) - 1, step)) + [len(records) - 1]
    assert len(breaks) >= VECTOR_KERNEL_MIN_BUCKETS
    reps, probs, estimates = partition_stats(records, breaks)
    auto = partition_waste(reps, probs, estimates)
    assert auto == pytest.approx(partition_waste_scalar(reps, probs, estimates), rel=1e-9)
    # At the paper's cap the dispatcher must round exactly like the
    # scalar kernel (numba, when present, shares its operation order).
    narrow_breaks = evenly_spaced_break_indices(records, 10)
    r, p, e = partition_stats(records, narrow_breaks)
    assert partition_waste(r, p, e) == partition_waste_scalar(r, p, e)
