"""Tests for Bucket / BucketState."""

import numpy as np
import pytest

from repro.core.buckets import Bucket, BucketState
from repro.core.records import RecordList


def make_records(pairs):
    rl = RecordList()
    for task_id, (value, sig) in enumerate(pairs):
        rl.add(value, significance=sig, task_id=task_id)
    return rl


class TestBucket:
    def test_fields(self):
        b = Bucket(lo=0, hi=2, rep=10.0, prob=0.5, estimate=7.0)
        assert b.count == 3

    def test_empty_range_rejected(self):
        with pytest.raises(ValueError):
            Bucket(lo=2, hi=1, rep=1.0, prob=0.5, estimate=1.0)

    def test_bad_probability_rejected(self):
        with pytest.raises(ValueError):
            Bucket(lo=0, hi=0, rep=1.0, prob=1.5, estimate=1.0)

    def test_estimate_above_rep_rejected(self):
        with pytest.raises(ValueError):
            Bucket(lo=0, hi=0, rep=1.0, prob=0.5, estimate=2.0)


class TestBucketState:
    def test_single_bucket(self):
        rl = make_records([(10.0, 1.0), (20.0, 1.0), (30.0, 1.0)])
        state = BucketState.single(rl)
        assert len(state) == 1
        assert state[0].rep == 30.0
        assert state[0].prob == pytest.approx(1.0)
        assert state[0].estimate == pytest.approx(20.0)
        state.validate()

    def test_two_buckets_reps_and_probs(self):
        rl = make_records([(10.0, 1.0), (20.0, 1.0), (100.0, 2.0)])
        state = BucketState(rl, [1, 2])
        assert [b.rep for b in state.buckets] == [20.0, 100.0]
        assert state[0].prob == pytest.approx(2.0 / 4.0)
        assert state[1].prob == pytest.approx(2.0 / 4.0)
        state.validate()

    def test_significance_weighted_probabilities(self):
        # Paper Section IV-A: probability = significance share.
        rl = make_records([(10.0, 1.0), (20.0, 9.0)])
        state = BucketState(rl, [0, 1])
        assert state[0].prob == pytest.approx(0.1)
        assert state[1].prob == pytest.approx(0.9)

    def test_weighted_estimates(self):
        rl = make_records([(10.0, 1.0), (30.0, 3.0)])
        state = BucketState.single(rl)
        assert state[0].estimate == pytest.approx((10 + 90) / 4)

    def test_breaks_must_cover_all_records(self):
        rl = make_records([(1.0, 1.0), (2.0, 1.0)])
        with pytest.raises(ValueError, match="last break index"):
            BucketState(rl, [0])

    def test_breaks_must_increase(self):
        rl = make_records([(1.0, 1.0), (2.0, 1.0), (3.0, 1.0)])
        with pytest.raises(ValueError, match="strictly increasing"):
            BucketState(rl, [1, 1, 2])

    def test_empty_records_rejected(self):
        with pytest.raises(ValueError):
            BucketState(RecordList(), [0])

    def test_choose_bucket_distribution(self):
        rl = make_records([(10.0, 1.0), (20.0, 9.0)])
        state = BucketState(rl, [0, 1])
        rng = np.random.default_rng(0)
        draws = [state.choose_bucket(rng).rep for _ in range(2000)]
        high_share = sum(1 for d in draws if d == 20.0) / len(draws)
        assert 0.85 < high_share < 0.95  # expect ~0.9

    def test_first_allocation_is_a_rep(self):
        rl = make_records([(10.0, 1.0), (20.0, 1.0), (30.0, 1.0)])
        state = BucketState(rl, [0, 1, 2])
        rng = np.random.default_rng(1)
        for _ in range(50):
            assert state.first_allocation(rng) in (10.0, 20.0, 30.0)

    def test_retry_only_considers_higher_buckets(self):
        rl = make_records([(10.0, 1.0), (20.0, 1.0), (30.0, 1.0)])
        state = BucketState(rl, [0, 1, 2])
        rng = np.random.default_rng(2)
        for _ in range(50):
            retry = state.retry_allocation(10.0, rng)
            assert retry in (20.0, 30.0)

    def test_retry_from_top_returns_none(self):
        rl = make_records([(10.0, 1.0), (20.0, 1.0)])
        state = BucketState(rl, [0, 1])
        rng = np.random.default_rng(3)
        assert state.retry_allocation(20.0, rng) is None
        assert state.retry_allocation(25.0, rng) is None

    def test_retry_single_eligible_is_deterministic(self):
        rl = make_records([(10.0, 1.0), (20.0, 1.0)])
        state = BucketState(rl, [0, 1])
        rng = np.random.default_rng(4)
        assert state.retry_allocation(15.0, rng) == 20.0

    def test_retry_renormalizes_suffix_probabilities(self):
        rl = make_records([(10.0, 8.0), (20.0, 1.0), (30.0, 1.0)])
        state = BucketState(rl, [0, 1, 2])
        rng = np.random.default_rng(5)
        draws = [state.retry_allocation(10.0, rng) for _ in range(2000)]
        assert set(draws) <= {20.0, 30.0}
        # Equal significances above: ~50/50 split.
        share = sum(1 for d in draws if d == 20.0) / len(draws)
        assert 0.4 < share < 0.6

    def test_probs_sum_to_one(self):
        rl = make_records([(float(v), float(v + 1)) for v in range(20)])
        state = BucketState(rl, [4, 9, 19])
        assert state.probs.sum() == pytest.approx(1.0)
        state.validate()
