"""Tests for the bucket-state diagnostics probes."""

import numpy as np
import pytest

from repro.core.allocator import AllocatorConfig, TaskOrientedAllocator
from repro.core.baselines import MaxSeen
from repro.core.diagnostics import AllocatorProbe, StateProbe
from repro.core.exhaustive import ExhaustiveBucketing
from repro.core.resources import MEMORY, ResourceVector


class TestStateProbe:
    def test_snapshots_on_update(self):
        eb = ExhaustiveBucketing(rng=np.random.default_rng(0))
        probe = StateProbe(eb)
        for i, value in enumerate([100.0, 200.0, 1000.0, 1100.0]):
            eb.update(value, significance=i + 1.0, task_id=i)
        assert len(probe.snapshots) == 4
        assert probe.snapshots[-1].n_records == 4
        assert probe.snapshots[-1].n_buckets >= 1

    def test_stride_subsamples(self):
        eb = ExhaustiveBucketing(rng=np.random.default_rng(0))
        probe = StateProbe(eb, stride=5)
        for i in range(12):
            eb.update(float(100 + i), significance=i + 1.0, task_id=i)
        assert len(probe.snapshots) == 2  # at records 5 and 10

    def test_snapshot_fields_consistent(self):
        eb = ExhaustiveBucketing(rng=np.random.default_rng(0))
        probe = StateProbe(eb)
        for i, value in enumerate([100.0] * 5 + [900.0] * 5):
            eb.update(value, significance=i + 1.0, task_id=i)
        snap = probe.snapshots[-1]
        assert len(snap.reps) == snap.n_buckets == len(snap.probs)
        assert abs(sum(snap.probs) - 1.0) < 1e-9
        assert snap.top_rep == max(snap.reps)
        assert snap.expected_allocation <= snap.top_rep

    def test_requires_bucketing_algorithm(self):
        with pytest.raises(TypeError):
            StateProbe(MaxSeen())

    def test_invalid_stride(self):
        with pytest.raises(ValueError):
            StateProbe(ExhaustiveBucketing(), stride=0)

    def test_detach_restores_update(self):
        eb = ExhaustiveBucketing(rng=np.random.default_rng(0))
        probe = StateProbe(eb)
        probe.detach()
        eb.update(100.0, task_id=0)
        assert probe.snapshots == []

    def test_summaries(self):
        eb = ExhaustiveBucketing(rng=np.random.default_rng(0))
        probe = StateProbe(eb)
        for i, value in enumerate([100.0, 900.0, 120.0, 880.0, 110.0]):
            eb.update(value, significance=i + 1.0, task_id=i)
        assert probe.max_buckets_seen() >= 1
        assert len(probe.bucket_count_series()) == 5
        assert len(probe.expected_allocation_series()) == 5


class TestAllocatorProbe:
    def test_probes_attach_per_category_resource(self):
        alloc = TaskOrientedAllocator(
            AllocatorConfig(algorithm="exhaustive_bucketing", seed=0)
        )
        probe = AllocatorProbe(alloc)
        for task_id in range(4):
            alloc.observe(
                "proc",
                ResourceVector.of(cores=1, memory=500.0 + task_id, disk=100),
                task_id=task_id,
            )
        assert len(probe.probes) == 3  # cores, memory, disk
        memory_probe = probe.probe("proc", MEMORY)
        assert len(memory_probe.snapshots) == 4

    def test_max_buckets_paper_claim(self):
        """Feed a realistic stream: the bucket count never exceeds the
        paper's cap of 10 (Section V-A)."""
        rng = np.random.default_rng(3)
        alloc = TaskOrientedAllocator(
            AllocatorConfig(algorithm="exhaustive_bucketing", seed=0)
        )
        probe = AllocatorProbe(alloc, stride=5)
        for task_id in range(300):
            alloc.observe(
                "proc",
                ResourceVector.of(
                    cores=float(rng.uniform(1, 4)),
                    memory=float(rng.normal(8000, 2000)),
                    disk=float(rng.normal(8000, 2000)),
                ),
                task_id=task_id,
            )
        assert 1 <= probe.max_buckets_seen() <= 10

    def test_non_bucketing_algorithms_not_probed(self):
        alloc = TaskOrientedAllocator(AllocatorConfig(algorithm="max_seen", seed=0))
        probe = AllocatorProbe(alloc)
        alloc.observe("p", ResourceVector.of(cores=1, memory=10, disk=10), task_id=0)
        assert probe.probes == {}
        assert probe.max_buckets_seen() == 0

    def test_detach(self):
        alloc = TaskOrientedAllocator(
            AllocatorConfig(algorithm="greedy_bucketing", seed=0)
        )
        probe = AllocatorProbe(alloc)
        alloc.observe("p", ResourceVector.of(cores=1, memory=10, disk=10), task_id=0)
        n = len(probe.probe("p", MEMORY).snapshots)
        probe.detach()
        alloc.observe("p", ResourceVector.of(cores=1, memory=20, disk=10), task_id=1)
        assert len(probe.probe("p", MEMORY).snapshots) == n
