"""Tests for Exhaustive Bucketing (Algorithm 2)."""


import numpy as np
import pytest

from repro.core.buckets import BucketState
from repro.core.cost import exhaustive_cost
from repro.core.exhaustive import (
    PAPER_MAX_BUCKETS,
    ExhaustiveBucketing,
    evenly_spaced_break_indices,
    exhaustive_break_indices,
)
from repro.core.records import RecordList


def make_records(values, sigs=None):
    rl = RecordList()
    sigs = sigs or [1.0] * len(values)
    for task_id, (v, s) in enumerate(zip(values, sigs)):
        rl.add(v, significance=s, task_id=task_id)
    return rl


class TestEvenlySpacedBreaks:
    def test_k1_is_single_bucket(self):
        rl = make_records([1.0, 2.0, 3.0])
        assert evenly_spaced_break_indices(rl, 1) == [2]

    def test_k2_breaks_at_half_vmax(self):
        rl = make_records([10.0, 40.0, 60.0, 100.0])
        # candidate value 50 -> nearest record strictly below = 40 (idx 1)
        assert evenly_spaced_break_indices(rl, 2) == [1, 3]

    def test_candidates_map_strictly_below(self):
        rl = make_records([25.0, 50.0, 100.0])
        # k=2: candidate 50 -> record strictly below 50 is 25 (idx 0).
        assert evenly_spaced_break_indices(rl, 2) == [0, 2]

    def test_duplicate_mappings_removed(self):
        # All candidates collapse onto the same record.
        rl = make_records([1.0, 100.0])
        breaks = evenly_spaced_break_indices(rl, 5)
        assert breaks == [0, 1]

    def test_empty_mappings_dropped(self):
        # Candidates below the smallest record map to nothing.
        rl = make_records([90.0, 95.0, 100.0])
        breaks = evenly_spaced_break_indices(rl, 4)
        assert breaks[-1] == 2
        assert breaks == sorted(set(breaks))

    def test_invalid_k(self):
        rl = make_records([1.0])
        with pytest.raises(ValueError):
            evenly_spaced_break_indices(rl, 0)

    def test_single_record(self):
        rl = make_records([5.0])
        for k in range(1, 5):
            assert evenly_spaced_break_indices(rl, k) == [0]


class TestExhaustiveBreakIndices:
    def test_picks_minimum_cost_configuration(self, bimodal_records):
        breaks = exhaustive_break_indices(bimodal_records)
        chosen = BucketState(bimodal_records, breaks)
        chosen_cost = exhaustive_cost(chosen.reps, chosen.probs, chosen.estimates)
        # Every evenly spaced candidate configuration must cost >= chosen.
        for k in range(1, PAPER_MAX_BUCKETS + 1):
            candidate = evenly_spaced_break_indices(bimodal_records, k)
            state = BucketState(bimodal_records, candidate)
            cost = exhaustive_cost(state.reps, state.probs, state.estimates)
            assert chosen_cost <= cost + 1e-9

    def test_separated_clusters_split(self, bimodal_records):
        breaks = exhaustive_break_indices(bimodal_records)
        assert len(breaks) >= 2

    def test_identical_values_single_bucket(self):
        rl = make_records([306.0] * 50)
        assert exhaustive_break_indices(rl) == [49]

    def test_bucket_count_respects_cap(self, normal_records):
        for cap in (1, 2, 3):
            breaks = exhaustive_break_indices(normal_records, max_buckets=cap)
            assert len(breaks) <= cap

    def test_invalid_cap(self, normal_records):
        with pytest.raises(ValueError):
            exhaustive_break_indices(normal_records, max_buckets=0)


class TestExhaustiveBucketingAlgorithm:
    def test_registry_and_flags(self):
        assert ExhaustiveBucketing.name == "exhaustive_bucketing"
        assert ExhaustiveBucketing.conservative_exploration is True
        assert ExhaustiveBucketing.deterministic_predictions is False

    def test_paper_default_cap(self):
        eb = ExhaustiveBucketing()
        assert eb.max_buckets == PAPER_MAX_BUCKETS == 10

    def test_invalid_cap_rejected(self):
        with pytest.raises(ValueError):
            ExhaustiveBucketing(max_buckets=0)

    def test_no_records_no_prediction(self):
        eb = ExhaustiveBucketing(rng=np.random.default_rng(0))
        assert eb.predict() is None
        assert eb.state is None

    def test_predictions_are_reps(self, bimodal_records):
        eb = ExhaustiveBucketing(rng=np.random.default_rng(0))
        for r in bimodal_records:
            eb.update(r.value, r.significance, r.task_id)
        reps = {b.rep for b in eb.state.buckets}
        for _ in range(20):
            assert eb.predict() in reps

    def test_retry_ladder_terminates(self, bimodal_records):
        """Climbing from any start reaches the top in <= n_buckets steps."""
        eb = ExhaustiveBucketing(rng=np.random.default_rng(0))
        for r in bimodal_records:
            eb.update(r.value, r.significance, r.task_id)
        allocation = eb.predict()
        steps = 0
        while True:
            nxt = eb.predict_retry(allocation, allocation)
            if nxt is None:
                break
            assert nxt > allocation
            allocation = nxt
            steps += 1
            assert steps <= len(eb.state)

    def test_state_validates(self, normal_records):
        eb = ExhaustiveBucketing(rng=np.random.default_rng(0))
        for r in normal_records:
            eb.update(r.value, r.significance, r.task_id)
        eb.state.validate()

    def test_bucket_count_stays_small(self, normal_records):
        # The paper observes bucket counts rarely exceed 10; with the
        # cap they never do.
        eb = ExhaustiveBucketing(rng=np.random.default_rng(0))
        for r in normal_records:
            eb.update(r.value, r.significance, r.task_id)
        assert 1 <= len(eb.state) <= 10
