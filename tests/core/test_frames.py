"""Property tests for the CRC32 journal frame codec.

The frame layer is the bottom of the durability stack: every WAL
record, archived segment, and grid-journal row rides inside one frame.
These tests pin its three contracts:

* round-trip — any JSON-safe document encodes to one line that decodes
  back bit-identically (hypothesis-driven);
* detection — flipping any single bit of any byte of a framed record
  is detected (frames sit mid-journal so the torn-tail forgiveness
  cannot mask the flip);
* compatibility — journals written before frames existed (raw JSON
  lines) still read, including files mixing both formats.
"""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.checkpoint import (
    FRAME_PREFIX,
    JournalCorruptError,
    append_jsonl,
    decode_frame,
    encode_frame,
    read_jsonl,
)

json_scalars = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-(2**53), max_value=2**53),
    st.floats(allow_nan=False, allow_infinity=False),
    st.text(max_size=40),
)

json_docs = st.recursive(
    json_scalars,
    lambda children: st.one_of(
        st.lists(children, max_size=5),
        st.dictionaries(st.text(max_size=10), children, max_size=5),
    ),
    max_leaves=25,
)


@given(doc=json_docs)
@settings(max_examples=200, deadline=None)
def test_frame_round_trip(doc):
    line = encode_frame(doc)
    assert line.startswith(FRAME_PREFIX)
    assert "\n" not in line
    assert decode_frame(line) == json.loads(json.dumps(doc))


@given(docs=st.lists(json_docs, min_size=1, max_size=8))
@settings(max_examples=50, deadline=None)
def test_journal_round_trip_through_file(tmp_path_factory, docs):
    path = str(tmp_path_factory.mktemp("frames") / "journal.jsonl")
    for doc in docs:
        append_jsonl(path, doc)
    assert read_jsonl(path) == [json.loads(json.dumps(d)) for d in docs]


def test_single_bit_flip_detected_at_every_byte_position(tmp_path):
    """Exhaustively flip one bit in every byte of a mid-journal frame."""
    path = str(tmp_path / "journal.jsonl")
    victim = {"seq": 7, "op": "allocate", "category": "render", "x": [1.5, 2.5]}
    frame = (encode_frame(victim) + "\n").encode("utf-8")
    prefix = (encode_frame({"seq": 6}) + "\n").encode("utf-8")
    suffix = (encode_frame({"seq": 8}) + "\n").encode("utf-8")
    baseline = prefix + frame + suffix
    for byte_offset in range(len(frame)):
        for bit in range(8):
            corrupted = bytearray(baseline)
            corrupted[len(prefix) + byte_offset] ^= 1 << bit
            with open(path, "wb") as handle:
                handle.write(bytes(corrupted))
            with pytest.raises(JournalCorruptError):
                read_jsonl(path)


def test_bit_flip_in_final_complete_line_is_detected(tmp_path):
    """A newline-terminated final line is covered — torn-tail forgiveness
    only applies when the trailing newline itself never made it."""
    path = str(tmp_path / "journal.jsonl")
    append_jsonl(path, {"seq": 1})
    append_jsonl(path, {"seq": 2})
    with open(path, "rb") as handle:
        blob = bytearray(handle.read())
    # Flip one payload bit in the last frame (not the trailing newline).
    blob[-10] ^= 0x04
    with open(path, "wb") as handle:
        handle.write(bytes(blob))
    with pytest.raises(JournalCorruptError):
        read_jsonl(path)


def test_legacy_raw_json_journal_still_reads(tmp_path):
    path = str(tmp_path / "legacy.jsonl")
    docs = [{"i": 0}, {"i": 1, "x": "y"}, ["nested", 3]]
    with open(path, "w", encoding="utf-8") as handle:
        for doc in docs:
            handle.write(json.dumps(doc) + "\n")
    assert read_jsonl(path) == docs


def test_mixed_legacy_and_framed_journal_reads(tmp_path):
    """Upgrades append frames onto raw-JSON journals; both decode."""
    path = str(tmp_path / "mixed.jsonl")
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(json.dumps({"i": 0}) + "\n")
    append_jsonl(path, {"i": 1})
    with open(path, "a", encoding="utf-8") as handle:
        handle.write(json.dumps({"i": 2}) + "\n")
    append_jsonl(path, {"i": 3})
    assert read_jsonl(path) == [{"i": 0}, {"i": 1}, {"i": 2}, {"i": 3}]


def test_decode_frame_rejects_malformed_headers():
    good = encode_frame({"a": 1})
    for bad in (
        "F2 " + good[3:],  # wrong version tag
        "F1 notanumber deadbeef {}",  # length not an integer
        "F1 3 deadbeef {}",  # length does not match payload
        "F1 2 deadbeef {}",  # length matches, CRC does not
        good[:-1],  # truncated payload
        "F1 8 zzzzzzzz " + '{"a": 1}',  # non-hex crc
        "F1 8",  # header only
    ):
        with pytest.raises(ValueError):
            decode_frame(bad)


def test_torn_tail_still_forgiven_without_newline(tmp_path):
    path = str(tmp_path / "journal.jsonl")
    append_jsonl(path, {"seq": 1})
    full = encode_frame({"seq": 2})
    with open(path, "a", encoding="utf-8") as handle:
        handle.write(full[: len(full) // 2])  # crash mid-append, no "\n"
    assert read_jsonl(path) == [{"seq": 1}]
