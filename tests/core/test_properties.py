"""Property-based tests (hypothesis) on core invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.buckets import BucketState
from repro.core.cost import (
    exhaustive_cost,
    exhaustive_cost_reference,
    greedy_split_cost_reference,
    greedy_split_costs,
)
from repro.core.exhaustive import evenly_spaced_break_indices, exhaustive_break_indices
from repro.core.greedy import greedy_break_indices
from repro.core.records import RecordList
from repro.core.resources import CORES, MEMORY, ResourceVector

# -- strategies ---------------------------------------------------------------

record_values = st.lists(
    st.floats(min_value=0.001, max_value=1e6, allow_nan=False, allow_infinity=False),
    min_size=1,
    max_size=60,
)

record_pairs = st.lists(
    st.tuples(
        st.floats(min_value=0.001, max_value=1e6, allow_nan=False, allow_infinity=False),
        st.floats(min_value=0.01, max_value=1e3, allow_nan=False, allow_infinity=False),
    ),
    min_size=1,
    max_size=60,
)


def build_records(pairs):
    rl = RecordList()
    for task_id, (value, sig) in enumerate(pairs):
        rl.add(value, significance=sig, task_id=task_id)
    return rl


# -- RecordList ---------------------------------------------------------------


@given(record_pairs)
def test_record_list_stays_sorted(pairs):
    rl = build_records(pairs)
    values = rl.values
    assert (np.diff(values) >= 0).all()


@given(record_pairs)
def test_weighted_mean_bounded_by_extremes(pairs):
    rl = build_records(pairs)
    mean = rl.weighted_mean(0, len(rl) - 1)
    assert rl.values[0] - 1e-9 <= mean <= rl.values[-1] + 1e-9


@given(record_pairs)
def test_prefix_sums_match_direct_sums(pairs):
    rl = build_records(pairs)
    direct_sig = sum(r.significance for r in rl)
    assert rl.total_significance() == np.float64(rl.sig_prefix[-1])
    assert abs(rl.sig_prefix[-1] - direct_sig) <= 1e-6 * max(direct_sig, 1)


# -- BucketState ----------------------------------------------------------------


@given(record_pairs, st.randoms(use_true_random=False))
def test_any_partition_has_valid_state(pairs, rnd):
    rl = build_records(pairs)
    n = len(rl)
    # Random strictly-increasing break set ending at n-1.
    k = rnd.randint(1, min(5, n))
    breaks = sorted(rnd.sample(range(n - 1), min(k - 1, n - 1))) + [n - 1]
    state = BucketState(rl, breaks)
    state.validate()
    assert abs(state.probs.sum() - 1.0) < 1e-9
    assert (np.diff(state.reps) >= 0).all()
    for bucket in state.buckets:
        assert bucket.estimate <= bucket.rep + 1e-9


@given(record_pairs)
def test_retry_is_strictly_increasing_until_none(pairs):
    rl = build_records(pairs)
    state = BucketState(rl, greedy_break_indices(rl))
    rng = np.random.default_rng(0)
    allocation = float(state.reps[0])
    for _ in range(len(state) + 2):
        nxt = state.retry_allocation(allocation, rng)
        if nxt is None:
            break
        assert nxt > allocation
        allocation = nxt
    else:
        raise AssertionError("retry ladder did not terminate")


# -- cost kernels ------------------------------------------------------------------


@given(record_pairs)
def test_greedy_costs_match_reference_everywhere(pairs):
    rl = build_records(pairs)
    hi = len(rl) - 1
    costs = greedy_split_costs(rl, 0, hi)
    for i in range(hi + 1):
        ref = greedy_split_cost_reference(rl, 0, i, hi)
        assert abs(costs[i] - ref) <= 1e-6 * max(abs(ref), 1.0)


@given(record_pairs)
def test_greedy_costs_non_negative(pairs):
    rl = build_records(pairs)
    costs = greedy_split_costs(rl, 0, len(rl) - 1)
    assert (costs >= -1e-6).all()


@given(
    st.integers(min_value=1, max_value=6).flatmap(
        lambda n: st.tuples(
            st.lists(
                st.floats(min_value=0.1, max_value=1e4, allow_nan=False),
                min_size=n, max_size=n,
            ),
            st.lists(
                st.floats(min_value=0.01, max_value=1.0, allow_nan=False),
                min_size=n, max_size=n,
            ),
            st.lists(
                st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
                min_size=n, max_size=n,
            ),
        )
    )
)
def test_exhaustive_cost_matches_reference(data):
    raw_reps, raw_probs, est_fracs = data
    reps = np.sort(np.array(raw_reps))
    probs = np.array(raw_probs)
    probs = probs / probs.sum()
    estimates = reps * np.array(est_fracs)
    fast = exhaustive_cost(reps, probs, estimates)
    slow = exhaustive_cost_reference(list(reps), list(probs), list(estimates))
    assert abs(fast - slow) <= 1e-6 * max(abs(slow), 1.0)
    assert fast >= -1e-9


# -- break-index algorithms -----------------------------------------------------------


@given(record_pairs)
def test_greedy_breaks_partition_the_records(pairs):
    rl = build_records(pairs)
    breaks = greedy_break_indices(rl)
    assert breaks == sorted(set(breaks))
    assert breaks[-1] == len(rl) - 1
    assert all(0 <= b < len(rl) for b in breaks)


@given(record_pairs, st.integers(min_value=1, max_value=12))
def test_evenly_spaced_breaks_partition_the_records(pairs, k):
    rl = build_records(pairs)
    breaks = evenly_spaced_break_indices(rl, k)
    assert breaks == sorted(set(breaks))
    assert breaks[-1] == len(rl) - 1
    assert len(breaks) <= k


@given(record_pairs)
@settings(max_examples=30)
def test_exhaustive_choice_never_worse_than_single_bucket(pairs):
    rl = build_records(pairs)
    breaks = exhaustive_break_indices(rl)
    chosen = BucketState(rl, breaks)
    single = BucketState.single(rl)
    chosen_cost = exhaustive_cost(chosen.reps, chosen.probs, chosen.estimates)
    single_cost = exhaustive_cost(single.reps, single.probs, single.estimates)
    assert chosen_cost <= single_cost + 1e-6 * max(single_cost, 1.0)


# -- ResourceVector algebra ----------------------------------------------------------

component = st.floats(min_value=0.0, max_value=1e9, allow_nan=False, allow_infinity=False)


@given(component, component, component, component)
def test_vector_add_sub_roundtrip_dominates(c1, m1, c2, m2):
    a = ResourceVector({CORES: c1, MEMORY: m1})
    b = ResourceVector({CORES: c2, MEMORY: m2})
    # (a + b) - b >= a componentwise (equality up to float noise).
    roundtrip = (a + b) - b
    assert roundtrip[CORES] >= a[CORES] - 1e-6 * max(a[CORES], 1)
    assert roundtrip[MEMORY] >= a[MEMORY] - 1e-6 * max(a[MEMORY], 1)


@given(component, component, component, component)
def test_fits_within_consistent_with_exceeded_by(c1, m1, c2, m2):
    usage = ResourceVector({CORES: c1, MEMORY: m1})
    limit = ResourceVector({CORES: c2, MEMORY: m2})
    assert usage.fits_within(limit) == (limit.exceeded_by(usage) == ())


@given(component, component)
def test_componentwise_max_is_upper_bound(c, m):
    a = ResourceVector({CORES: c, MEMORY: m})
    b = ResourceVector({CORES: m, MEMORY: c})
    top = a.componentwise_max(b)
    assert a.fits_within(top) and b.fits_within(top)
