"""The ``rebucket_interval`` knob and the vectorized candidate mapping.

``rebucket_interval=1`` (the default) must be paper-exact: every new
record triggers the full partition search, and the resulting break
indices are identical to calling the search directly.  Larger intervals
re-anchor the cached partition between searches; those states must stay
valid partitions and fall back to the exact search on every k-th record.
"""

import numpy as np
import pytest

from repro.core.exhaustive import (
    ExhaustiveBucketing,
    evenly_spaced_break_indices,
    exhaustive_break_indices,
)
from repro.core.greedy import GreedyBucketing, greedy_break_indices
from repro.core.records import RecordList


def _stream(n, seed=0):
    rng = np.random.default_rng(seed)
    return np.clip(rng.normal(8000.0, 2000.0, n), 50.0, None)


class TestRebucketIntervalOne:
    """Default behaviour: identical break indices to the direct search."""

    @pytest.mark.parametrize(
        "algo_cls,direct",
        [
            (GreedyBucketing, greedy_break_indices),
            (ExhaustiveBucketing, exhaustive_break_indices),
        ],
    )
    def test_breaks_identical_to_direct_search_every_update(self, algo_cls, direct):
        algo = algo_cls(rng=np.random.default_rng(0), rebucket_interval=1)
        reference = RecordList()
        for task_id, value in enumerate(_stream(120)):
            sig = float(task_id + 1)
            algo.update(float(value), significance=sig, task_id=task_id)
            reference.add(float(value), significance=sig, task_id=task_id)
            state = algo.state
            expected = direct(reference)
            assert [b.hi for b in state.buckets] == list(expected)

    def test_interval_one_never_reanchors(self):
        algo = GreedyBucketing(rng=np.random.default_rng(0))
        for task_id, value in enumerate(_stream(50)):
            algo.update(float(value), significance=float(task_id + 1), task_id=task_id)
            _ = algo.state
        assert algo.rebucket_interval == 1
        assert algo.reanchors == 0
        assert algo.recomputations == 50


class TestRebucketIntervalK:
    @pytest.mark.parametrize("interval", [2, 5, 10])
    @pytest.mark.parametrize("algo_cls", [GreedyBucketing, ExhaustiveBucketing])
    def test_states_remain_valid_partitions(self, algo_cls, interval):
        algo = algo_cls(rng=np.random.default_rng(0), rebucket_interval=interval)
        for task_id, value in enumerate(_stream(150, seed=3)):
            algo.update(float(value), significance=float(task_id + 1), task_id=task_id)
            state = algo.state
            state.validate()
            assert state.n_records == task_id + 1
        assert algo.reanchors > 0
        assert algo.recomputations >= 150 // interval

    def test_full_search_runs_on_every_kth_record(self):
        algo = GreedyBucketing(rng=np.random.default_rng(0), rebucket_interval=4)
        reference = RecordList()
        for task_id, value in enumerate(_stream(80, seed=5)):
            sig = float(task_id + 1)
            algo.update(float(value), significance=sig, task_id=task_id)
            reference.add(float(value), significance=sig, task_id=task_id)
            state = algo.state
            if task_id % 4 == 0:
                # The first record, then every 4th after a full search,
                # runs the exact partition search.
                assert [b.hi for b in state.buckets] == list(
                    greedy_break_indices(reference)
                )

    def test_reanchoring_with_windowed_records(self):
        algo = ExhaustiveBucketing(
            rng=np.random.default_rng(0), record_capacity=40, rebucket_interval=3
        )
        for task_id, value in enumerate(_stream(200, seed=9)):
            algo.update(float(value), significance=float(task_id + 1), task_id=task_id)
            algo.state.validate()
        assert algo.n_records == 40

    def test_predictions_available_between_recomputes(self):
        algo = GreedyBucketing(rng=np.random.default_rng(2), rebucket_interval=7)
        for task_id, value in enumerate(_stream(30, seed=11)):
            algo.update(float(value), significance=float(task_id + 1), task_id=task_id)
            assert algo.predict() is not None

    def test_reset_clears_rebucket_state(self):
        algo = GreedyBucketing(rng=np.random.default_rng(0), rebucket_interval=3)
        for task_id, value in enumerate(_stream(10)):
            algo.update(float(value), significance=float(task_id + 1), task_id=task_id)
            _ = algo.state
        algo.reset()
        assert algo.recomputations == 0
        assert algo.reanchors == 0
        assert algo.state is None

    def test_invalid_interval_rejected(self):
        with pytest.raises(ValueError):
            GreedyBucketing(rebucket_interval=0)
        with pytest.raises(ValueError):
            ExhaustiveBucketing(rebucket_interval=-1)


class TestRebucketSimulationEquivalence:
    """Paper-exact end to end: explicit rebucket_interval=1 == default."""

    @pytest.mark.parametrize("algorithm", ["greedy_bucketing", "exhaustive_bucketing"])
    def test_awe_identical_at_interval_one(self, algorithm):
        from repro.experiments.config import ExperimentConfig
        from repro.experiments.runner import run_cell

        config = ExperimentConfig(n_tasks=60, n_workers=6)
        default = run_cell("uniform", algorithm, config)
        explicit = run_cell(
            "uniform",
            algorithm,
            config,
            algorithm_kwargs={"rebucket_interval": 1},
        )
        for res in default.ledger.resources:
            assert default.ledger.awe(res) == explicit.ledger.awe(res)
        assert default.n_attempts == explicit.n_attempts
        assert default.makespan == explicit.makespan


class TestVectorizedCandidateMapping:
    """evenly_spaced_break_indices: one searchsorted == the old loop."""

    @staticmethod
    def _loop_reference(records, k):
        n = len(records)
        last = n - 1
        if k == 1:
            return [last]
        v_max = float(records.values[last])
        ends = []
        for i in range(1, k):
            candidate_value = v_max * i / k
            idx = records.index_below(candidate_value)
            if idx is None or idx >= last:
                continue
            if not ends or idx > ends[-1]:
                ends.append(idx)
        ends.append(last)
        return ends

    @pytest.mark.parametrize("seed", range(8))
    def test_matches_loop_reference(self, seed):
        rng = np.random.default_rng(seed)
        records = RecordList()
        for i in range(int(rng.integers(1, 80))):
            records.add(
                float(rng.uniform(0.0, 1000.0)),
                significance=float(rng.uniform(0.1, 50.0)),
                task_id=i,
            )
        for k in range(1, 15):
            assert evenly_spaced_break_indices(records, k) == self._loop_reference(
                records, k
            )

    def test_identical_values_collapse_to_single_bucket(self):
        records = RecordList()
        for i in range(10):
            records.add(42.0, significance=float(i + 1), task_id=i)
        for k in range(1, 6):
            assert evenly_spaced_break_indices(records, k) == [9]
