"""Tests for Quantized Bucketing."""

import numpy as np
import pytest

from repro.core.quantized import QuantizedBucketing


def feed(algo, values):
    for task_id, v in enumerate(values):
        algo.update(float(v), task_id=task_id)
    return algo


class TestQuantizedBucketing:
    def test_registry_and_flags(self):
        assert QuantizedBucketing.name == "quantized_bucketing"
        assert QuantizedBucketing.conservative_exploration is False
        assert QuantizedBucketing.deterministic_predictions is True

    def test_default_splits_at_median(self):
        qb = feed(QuantizedBucketing(), [10.0, 20.0, 30.0, 40.0])
        assert qb.bucket_reps() == (20.0, 40.0)
        assert qb.predict() == 20.0

    def test_odd_count_median(self):
        qb = feed(QuantizedBucketing(), [10.0, 20.0, 30.0])
        assert qb.predict() == 20.0

    def test_no_records(self):
        qb = QuantizedBucketing()
        assert qb.predict() is None
        assert qb.predict_retry(1.0, 1.0) is None
        assert qb.bucket_reps() is None

    def test_retry_climbs_ladder(self):
        qb = feed(QuantizedBucketing(), [10.0, 20.0, 30.0, 40.0])
        assert qb.predict_retry(20.0, 20.0) == 40.0
        assert qb.predict_retry(40.0, 40.0) is None

    def test_retry_respects_observed_peak(self):
        qb = feed(QuantizedBucketing(), [10.0, 20.0, 30.0, 40.0])
        # Observed peak already above the max rep: nothing to offer.
        assert qb.predict_retry(20.0, 45.0) is None

    def test_duplicate_reps_collapsed(self):
        qb = feed(QuantizedBucketing(), [306.0] * 30)
        assert qb.bucket_reps() == (306.0,)
        assert qb.predict() == 306.0
        assert qb.predict_retry(306.0, 306.0) is None

    def test_multi_quantile_ladder(self):
        qb = QuantizedBucketing(quantiles=(0.25, 0.5, 0.75))
        feed(qb, [float(i) for i in range(1, 101)])
        reps = qb.bucket_reps()
        assert len(reps) == 4
        assert reps[-1] == 100.0
        assert list(reps) == sorted(reps)

    def test_quantile_validation(self):
        with pytest.raises(ValueError):
            QuantizedBucketing(quantiles=())
        with pytest.raises(ValueError):
            QuantizedBucketing(quantiles=(0.0,))
        with pytest.raises(ValueError):
            QuantizedBucketing(quantiles=(0.5, 0.5))
        with pytest.raises(ValueError):
            QuantizedBucketing(quantiles=(0.7, 0.3))

    def test_reps_are_observed_values(self, rng):
        values = np.clip(rng.normal(500, 100, 99), 1, None)
        qb = feed(QuantizedBucketing(), values)
        observed = set(values)
        for rep in qb.bucket_reps():
            assert rep in observed

    def test_significance_ignored(self):
        qb = QuantizedBucketing()
        qb.update(10.0, significance=1000.0, task_id=0)
        qb.update(20.0, significance=0.1, task_id=1)
        qb.update(30.0, significance=0.1, task_id=2)
        qb.update(40.0, significance=0.1, task_id=3)
        # Count-based median, not significance-weighted.
        assert qb.predict() == 20.0

    def test_reset(self):
        qb = feed(QuantizedBucketing(), [1.0, 2.0])
        qb.reset()
        assert qb.n_records == 0
        assert qb.predict() is None
