"""Tests for ResourceRecord / RecordList."""

import pytest

from repro.core.records import RecordList, ResourceRecord


class TestResourceRecord:
    def test_basic_construction(self):
        r = ResourceRecord(value=100.0, significance=2.0, task_id=7)
        assert r.value == 100.0 and r.significance == 2.0 and r.task_id == 7

    def test_orders_by_value(self):
        assert ResourceRecord(1.0) < ResourceRecord(2.0)

    def test_negative_value_rejected(self):
        with pytest.raises(ValueError):
            ResourceRecord(-1.0)

    def test_nonpositive_significance_rejected(self):
        with pytest.raises(ValueError):
            ResourceRecord(1.0, significance=0.0)
        with pytest.raises(ValueError):
            ResourceRecord(1.0, significance=-2.0)


class TestRecordList:
    def test_append_keeps_sorted(self):
        rl = RecordList()
        for v in [5.0, 1.0, 3.0, 2.0, 4.0]:
            rl.add(v)
        assert list(rl.values) == [1.0, 2.0, 3.0, 4.0, 5.0]

    def test_extend(self):
        rl = RecordList()
        rl.extend(ResourceRecord(v) for v in [3.0, 1.0, 2.0])
        assert list(rl.values) == [1.0, 2.0, 3.0]

    def test_len_iter_getitem_bool(self):
        rl = RecordList([ResourceRecord(2.0), ResourceRecord(1.0)])
        assert len(rl) == 2
        assert [r.value for r in rl] == [1.0, 2.0]
        assert rl[0].value == 1.0
        assert bool(rl)
        assert not RecordList()

    def test_prefix_sums(self):
        rl = RecordList()
        rl.add(10.0, significance=1.0)
        rl.add(20.0, significance=2.0)
        rl.add(30.0, significance=3.0)
        assert list(rl.sig_prefix) == [1.0, 3.0, 6.0]
        assert list(rl.sigval_prefix) == [10.0, 50.0, 140.0]

    def test_sig_sum_ranges(self):
        rl = RecordList()
        for i, v in enumerate([10.0, 20.0, 30.0, 40.0]):
            rl.add(v, significance=float(i + 1))
        assert rl.sig_sum(0, 3) == 10.0
        assert rl.sig_sum(1, 2) == 5.0
        assert rl.sig_sum(2, 2) == 3.0

    def test_weighted_mean_matches_direct_computation(self):
        rl = RecordList()
        values = [10.0, 20.0, 30.0]
        sigs = [1.0, 5.0, 2.0]
        for v, s in zip(values, sigs):
            rl.add(v, significance=s)
        expected = sum(v * s for v, s in zip(values, sigs)) / sum(sigs)
        assert rl.weighted_mean(0, 2) == pytest.approx(expected)

    def test_weighted_mean_subrange(self):
        rl = RecordList()
        for v, s in [(10.0, 1.0), (20.0, 3.0), (30.0, 1.0)]:
            rl.add(v, significance=s)
        assert rl.weighted_mean(1, 2) == pytest.approx((20 * 3 + 30) / 4)

    def test_max_value(self):
        rl = RecordList()
        for v in [5.0, 1.0, 9.0]:
            rl.add(v)
        assert rl.max_value(0, 2) == 9.0
        assert rl.max_value(0, 1) == 5.0

    def test_range_bounds_checked(self):
        rl = RecordList([ResourceRecord(1.0)])
        with pytest.raises(IndexError):
            rl.sig_sum(0, 1)
        with pytest.raises(IndexError):
            rl.weighted_mean(-1, 0)

    def test_index_below(self):
        rl = RecordList()
        for v in [10.0, 20.0, 30.0]:
            rl.add(v)
        assert rl.index_below(15.0) == 0
        assert rl.index_below(30.0) == 1   # strictly below
        assert rl.index_below(31.0) == 2
        assert rl.index_below(10.0) is None
        assert rl.index_below(5.0) is None

    def test_views_invalidate_on_append(self):
        rl = RecordList()
        rl.add(1.0)
        _ = rl.values
        rl.add(2.0)
        assert list(rl.values) == [1.0, 2.0]
        assert list(rl.sig_prefix) == [1.0, 2.0]

    def test_views_are_read_only(self):
        rl = RecordList([ResourceRecord(1.0)])
        with pytest.raises(ValueError):
            rl.values[0] = 5.0

    def test_capacity_evicts_lowest_significance(self):
        rl = RecordList(capacity=3)
        for i, v in enumerate([10.0, 20.0, 30.0, 40.0]):
            rl.add(v, significance=float(i + 1))
        assert len(rl) == 3
        # The significance-1 record (value 10) was evicted.
        assert list(rl.values) == [20.0, 30.0, 40.0]

    def test_invalid_capacity_rejected(self):
        with pytest.raises(ValueError):
            RecordList(capacity=0)

    def test_total_significance(self):
        rl = RecordList()
        assert rl.total_significance() == 0.0
        rl.add(1.0, significance=2.0)
        rl.add(2.0, significance=3.0)
        assert rl.total_significance() == 5.0

    def test_snapshot_is_immutable_copy(self):
        rl = RecordList([ResourceRecord(1.0)])
        snap = rl.snapshot()
        rl.add(2.0)
        assert len(snap) == 1
