"""Tests for ResourceRecord / RecordList."""

import pytest

from repro.core.records import RecordList, ResourceRecord


class TestResourceRecord:
    def test_basic_construction(self):
        r = ResourceRecord(value=100.0, significance=2.0, task_id=7)
        assert r.value == 100.0 and r.significance == 2.0 and r.task_id == 7

    def test_orders_by_value(self):
        assert ResourceRecord(1.0) < ResourceRecord(2.0)

    def test_negative_value_rejected(self):
        with pytest.raises(ValueError):
            ResourceRecord(-1.0)

    def test_nonpositive_significance_rejected(self):
        with pytest.raises(ValueError):
            ResourceRecord(1.0, significance=0.0)
        with pytest.raises(ValueError):
            ResourceRecord(1.0, significance=-2.0)


class TestRecordList:
    def test_append_keeps_sorted(self):
        rl = RecordList()
        for v in [5.0, 1.0, 3.0, 2.0, 4.0]:
            rl.add(v)
        assert list(rl.values) == [1.0, 2.0, 3.0, 4.0, 5.0]

    def test_extend(self):
        rl = RecordList()
        rl.extend(ResourceRecord(v) for v in [3.0, 1.0, 2.0])
        assert list(rl.values) == [1.0, 2.0, 3.0]

    def test_len_iter_getitem_bool(self):
        rl = RecordList([ResourceRecord(2.0), ResourceRecord(1.0)])
        assert len(rl) == 2
        assert [r.value for r in rl] == [1.0, 2.0]
        assert rl[0].value == 1.0
        assert bool(rl)
        assert not RecordList()

    def test_prefix_sums(self):
        rl = RecordList()
        rl.add(10.0, significance=1.0)
        rl.add(20.0, significance=2.0)
        rl.add(30.0, significance=3.0)
        assert list(rl.sig_prefix) == [1.0, 3.0, 6.0]
        assert list(rl.sigval_prefix) == [10.0, 50.0, 140.0]

    def test_sig_sum_ranges(self):
        rl = RecordList()
        for i, v in enumerate([10.0, 20.0, 30.0, 40.0]):
            rl.add(v, significance=float(i + 1))
        assert rl.sig_sum(0, 3) == 10.0
        assert rl.sig_sum(1, 2) == 5.0
        assert rl.sig_sum(2, 2) == 3.0

    def test_weighted_mean_matches_direct_computation(self):
        rl = RecordList()
        values = [10.0, 20.0, 30.0]
        sigs = [1.0, 5.0, 2.0]
        for v, s in zip(values, sigs):
            rl.add(v, significance=s)
        expected = sum(v * s for v, s in zip(values, sigs)) / sum(sigs)
        assert rl.weighted_mean(0, 2) == pytest.approx(expected)

    def test_weighted_mean_subrange(self):
        rl = RecordList()
        for v, s in [(10.0, 1.0), (20.0, 3.0), (30.0, 1.0)]:
            rl.add(v, significance=s)
        assert rl.weighted_mean(1, 2) == pytest.approx((20 * 3 + 30) / 4)

    def test_max_value(self):
        rl = RecordList()
        for v in [5.0, 1.0, 9.0]:
            rl.add(v)
        assert rl.max_value(0, 2) == 9.0
        assert rl.max_value(0, 1) == 5.0

    def test_range_bounds_checked(self):
        rl = RecordList([ResourceRecord(1.0)])
        with pytest.raises(IndexError):
            rl.sig_sum(0, 1)
        with pytest.raises(IndexError):
            rl.weighted_mean(-1, 0)

    def test_index_below(self):
        rl = RecordList()
        for v in [10.0, 20.0, 30.0]:
            rl.add(v)
        assert rl.index_below(15.0) == 0
        assert rl.index_below(30.0) == 1   # strictly below
        assert rl.index_below(31.0) == 2
        assert rl.index_below(10.0) is None
        assert rl.index_below(5.0) is None

    def test_views_invalidate_on_append(self):
        rl = RecordList()
        rl.add(1.0)
        _ = rl.values
        rl.add(2.0)
        assert list(rl.values) == [1.0, 2.0]
        assert list(rl.sig_prefix) == [1.0, 2.0]

    def test_views_are_read_only(self):
        rl = RecordList([ResourceRecord(1.0)])
        with pytest.raises(ValueError):
            rl.values[0] = 5.0

    def test_capacity_evicts_lowest_significance(self):
        rl = RecordList(capacity=3)
        for i, v in enumerate([10.0, 20.0, 30.0, 40.0]):
            rl.add(v, significance=float(i + 1))
        assert len(rl) == 3
        # The significance-1 record (value 10) was evicted.
        assert list(rl.values) == [20.0, 30.0, 40.0]

    def test_invalid_capacity_rejected(self):
        with pytest.raises(ValueError):
            RecordList(capacity=0)

    def test_total_significance(self):
        rl = RecordList()
        assert rl.total_significance() == 0.0
        rl.add(1.0, significance=2.0)
        rl.add(2.0, significance=3.0)
        assert rl.total_significance() == 5.0

    def test_snapshot_is_immutable_copy(self):
        rl = RecordList([ResourceRecord(1.0)])
        snap = rl.snapshot()
        rl.add(2.0)
        assert len(snap) == 1


class TestBoundedStores:
    """Capacity-bounded stores: the three compaction policies."""

    def test_unknown_compaction_policy_rejected(self):
        with pytest.raises(ValueError, match="unknown compaction policy"):
            RecordList(compaction="lru")

    def test_evict_min_reports_victim_index_and_value(self):
        rl = RecordList(capacity=2)
        rl.add(10.0, significance=5.0)
        rl.add(20.0, significance=9.0)
        rl.add(30.0, significance=7.0)
        assert rl.last_eviction == (0, 10.0)
        assert list(rl.values) == [20.0, 30.0]

    def test_add_position_accounts_for_eviction_shift(self):
        rl = RecordList(capacity=2)
        rl.add(10.0, significance=1.0)
        rl.add(30.0, significance=9.0)
        # Lands at index 1, then the index-0 victim shifts it to 0.
        assert rl.add(20.0, significance=7.0) == 0
        assert list(rl.values) == [20.0, 30.0]

    def test_add_returns_none_when_own_record_evicted(self):
        rl = RecordList(capacity=2)
        rl.add(10.0, significance=5.0)
        rl.add(20.0, significance=9.0)
        # The arrival itself is the lowest-significance record.
        assert rl.add(15.0, significance=1.0) is None
        assert list(rl.values) == [10.0, 20.0]

    def test_decay_compacts_in_batch_with_slack(self):
        from repro.core.records import BATCH_EVICTION, DECAY_SLACK

        capacity = 20
        rl = RecordList(capacity=capacity, compaction="decay")
        for i in range(capacity):
            rl.add(float(100 + i), significance=float(i + 1))
        assert rl.last_eviction is None
        rl.add(500.0, significance=100.0)
        # One batch cleared a slack fraction, not a single victim.
        assert rl.last_eviction == BATCH_EVICTION
        expected = max(1, capacity - int(capacity * DECAY_SLACK))
        assert len(rl) == expected
        # Lowest-significance (oldest) records went first.
        assert float(rl.significances.min()) > 1.0

    def test_decay_amortizes_next_inserts_without_evicting(self):
        rl = RecordList(capacity=20, compaction="decay")
        for i in range(21):
            rl.add(float(i + 1), significance=float(i + 1))
        n_after_batch = len(rl)
        rl.add(999.0, significance=99.0)
        assert rl.last_eviction is None  # slack absorbed it
        assert len(rl) == n_after_batch + 1

    def test_reservoir_is_seeded_and_deterministic(self):
        stream = [(float(v), float(s)) for v, s in zip(range(50), range(1, 51))]
        lists = []
        for _ in range(2):
            rl = RecordList(capacity=8, compaction="reservoir", seed=42)
            for v, s in stream:
                rl.add(v + 0.5, significance=s)
            lists.append(rl)
        assert len(lists[0]) == 8
        assert list(lists[0].values) == list(lists[1].values)
        assert list(lists[0].significances) == list(lists[1].significances)

    def test_reservoir_rejection_reports_no_mutation(self):
        rl = RecordList(capacity=4, compaction="reservoir", seed=0)
        rejected = retained = 0
        for i in range(200):
            pos = rl.add(float(i + 1), significance=1.0)
            if i < 4:
                # Fill phase: plain inserts, no sampling yet.
                assert pos is not None and rl.last_eviction is None
            elif pos is None:
                assert rl.last_eviction is None  # nothing was swapped out
                rejected += 1
            else:
                assert rl.last_eviction is not None  # replacement swap
                retained += 1
        assert len(rl) == 4
        assert rejected > 0 and retained > 0
        assert rl.seen == 200

    def test_seen_counts_compacted_away_records(self):
        rl = RecordList(capacity=3)
        for i in range(10):
            rl.add(float(i + 1), significance=float(i + 1))
        assert rl.seen == 10
        assert len(rl) == 3


class TestBatchEvictionEquivalence:
    """_evict_to_capacity's vectorized batch vs the one-at-a-time path."""

    @staticmethod
    def _populated(n, seed):
        import numpy as np

        rng = np.random.default_rng(seed)
        rl = RecordList()
        for i in range(n):
            rl.add(
                float(rng.uniform(1.0, 1000.0)),
                significance=float(rng.uniform(0.1, 50.0)),
                task_id=i,
            )
        return rl

    @pytest.mark.parametrize("seed", range(4))
    @pytest.mark.parametrize("target", [1, 7, 23])
    def test_batch_eviction_equals_repeated_single_eviction(self, seed, target):
        from repro.core.records import BATCH_EVICTION

        batch = self._populated(30, seed)
        legacy = self._populated(30, seed)
        batch._evict_to_capacity(target)
        assert batch.last_eviction == BATCH_EVICTION
        while len(legacy) > target:
            legacy._evict_one()
        assert list(batch.values) == list(legacy.values)
        assert list(batch.significances) == list(legacy.significances)
        assert list(batch.task_ids) == list(legacy.task_ids)
        assert list(batch.sig_prefix) == list(legacy.sig_prefix)

    def test_over_by_one_delegates_to_single_eviction(self):
        rl = self._populated(10, seed=9)
        victim = rl._evict_to_capacity(9)
        assert victim is not None
        assert rl.last_eviction == (victim, pytest.approx(rl.last_eviction[1]))
        assert len(rl) == 9


class TestBoundedFromArraysAndState:
    def test_from_arrays_with_capacity_matches_streaming(self):
        import numpy as np

        values = np.array([5.0, 1.0, 9.0, 3.0, 7.0, 2.0])
        sigs = np.array([1.0, 6.0, 2.0, 5.0, 4.0, 3.0])
        bulk = RecordList.from_arrays(values, sigs, capacity=4)
        streamed = RecordList(capacity=4)
        # Streaming evicts as it goes; bulk evicts once at the end — for
        # evict_min both keep exactly the top-significance records.
        for v, s in zip(values, sigs):
            streamed.add(float(v), significance=float(s))
        assert list(bulk.values) == list(streamed.values)
        assert list(bulk.significances) == list(streamed.significances)

    def test_from_arrays_reservoir_replays_stream(self):
        import numpy as np

        values = np.arange(1.0, 41.0)
        bulk = RecordList.from_arrays(values, capacity=6, compaction="reservoir", seed=3)
        streamed = RecordList(capacity=6, compaction="reservoir", seed=3)
        for v in values:
            streamed.add(float(v))
        assert list(bulk.values) == list(streamed.values)

    def test_bounded_state_roundtrip_continues_identically(self):
        stream = [(float(v % 17 + 1), float(v + 1)) for v in range(40)]
        original = RecordList(capacity=9, compaction="reservoir", seed=5)
        for v, s in stream[:25]:
            original.add(v, significance=s)
        import json

        restored = RecordList.from_state(json.loads(json.dumps(original.state_dict())))
        assert restored.capacity == 9
        assert restored.compaction == "reservoir"
        assert restored.seen == original.seen
        for v, s in stream[25:]:
            assert original.add(v, significance=s) == restored.add(v, significance=s)
        assert list(original.values) == list(restored.values)
        assert list(original.sig_prefix) == list(restored.sig_prefix)
