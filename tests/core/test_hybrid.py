"""Tests for the Quantized-then-Bucketing hybrid."""

import numpy as np
import pytest

from repro.core.exhaustive import ExhaustiveBucketing
from repro.core.hybrid import HybridBucketing
from repro.core.quantized import QuantizedBucketing


class TestHybridBucketing:
    def test_registry_and_flags(self):
        assert HybridBucketing.name == "hybrid_bucketing"
        assert HybridBucketing.conservative_exploration is True
        assert HybridBucketing.deterministic_predictions is False

    def test_starts_on_initial_algorithm(self):
        hb = HybridBucketing(switch_after=5, rng=np.random.default_rng(0))
        assert isinstance(hb.active, QuantizedBucketing)
        assert not hb.switched

    def test_switches_after_threshold(self):
        hb = HybridBucketing(switch_after=5, rng=np.random.default_rng(0))
        for i in range(5):
            hb.update(float(100 + i), task_id=i)
        assert hb.switched
        assert isinstance(hb.active, ExhaustiveBucketing)

    def test_primary_is_warm_at_handoff(self):
        """Both constituents ingest every record from the start."""
        hb = HybridBucketing(switch_after=10, rng=np.random.default_rng(0))
        for i in range(10):
            hb.update(float(100 + 10 * i), task_id=i)
        assert hb._primary.n_records == 10
        assert hb._initial.n_records == 10
        assert hb.predict() is not None

    def test_switch_after_zero_is_primary_immediately(self):
        hb = HybridBucketing(switch_after=0, rng=np.random.default_rng(0))
        assert isinstance(hb.active, ExhaustiveBucketing)

    def test_negative_switch_rejected(self):
        with pytest.raises(ValueError):
            HybridBucketing(switch_after=-1)

    def test_predictions_delegate_before_switch(self):
        hb = HybridBucketing(switch_after=100, rng=np.random.default_rng(0))
        for i, v in enumerate([10.0, 20.0, 30.0, 40.0]):
            hb.update(v, task_id=i)
        # Quantized: median of the 4 records.
        assert hb.predict() == 20.0
        assert hb.predict_retry(20.0, 20.0) == 40.0

    def test_custom_constituents(self):
        hb = HybridBucketing(
            initial="max_seen", primary="greedy_bucketing", switch_after=2
        )
        hb.update(100.0, task_id=0)
        assert hb.predict() is not None  # max_seen answers
        hb.update(200.0, task_id=1)
        assert hb.switched

    def test_unknown_constituent_rejected(self):
        with pytest.raises(KeyError):
            HybridBucketing(initial="nope")

    def test_reset(self):
        hb = HybridBucketing(switch_after=2, rng=np.random.default_rng(0))
        for i in range(3):
            hb.update(float(i + 1), task_id=i)
        hb.reset()
        assert hb.n_records == 0
        assert not hb.switched
        assert hb.predict() is None
