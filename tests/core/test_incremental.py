"""Incremental partition engines vs the full searches they shadow.

The exhaustive engine (:class:`IncrementalExhaustivePartition`) claims
*identity* with :func:`exhaustive_break_indices` — the hypothesis suite
here is the acceptance proof.  The greedy engine
(:class:`IncrementalGreedyPartition`) claims only a weaker fixpoint
property (every bucket locally unsplittable), which is what its suite
checks, along with the fragmentation bound and the bit-exact cache
round-trip.
"""

import json

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.exhaustive import (
    ExhaustiveBucketing,
    IncrementalExhaustivePartition,
    exhaustive_break_indices,
)
from repro.core.greedy import (
    GreedyBucketing,
    IncrementalGreedyPartition,
    greedy_break_indices,
)
from repro.core.kernels import partition_stats
from repro.core.records import RecordList

# -- strategies ---------------------------------------------------------------

streams = st.lists(
    st.tuples(
        st.floats(min_value=0.001, max_value=1e6, allow_nan=False, allow_infinity=False),
        st.floats(min_value=0.01, max_value=1e3, allow_nan=False, allow_infinity=False),
    ),
    min_size=1,
    max_size=50,
)


def feed(records, engine, value, significance=1.0, task_id=-1):
    """One streamed arrival, wired exactly as BucketingAlgorithm.update."""
    pos = records.add(value, significance=significance, task_id=task_id)
    eviction = records.last_eviction
    inserted = None if (pos is None and eviction is None) else float(value)
    engine.observe(inserted, eviction, pos)
    return pos


# -- exhaustive engine: identity with the full search -------------------------


@given(streams)
@settings(deadline=None)
def test_incremental_equals_full_search_unbounded(pairs):
    records = RecordList()
    engine = IncrementalExhaustivePartition(records)
    for task_id, (value, sig) in enumerate(pairs):
        feed(records, engine, value, sig, task_id)
        assert engine.break_indices() == exhaustive_break_indices(records)


@pytest.mark.parametrize("policy", ["evict_min", "decay", "reservoir"])
@given(streams)
@settings(deadline=None)
def test_incremental_equals_full_search_bounded(policy, pairs):
    """Evictions — single, batch and reservoir swaps — never break identity."""
    records = RecordList(capacity=7, compaction=policy)
    engine = IncrementalExhaustivePartition(records)
    for task_id, (value, sig) in enumerate(pairs):
        feed(records, engine, value, sig, task_id)
        assert engine.break_indices() == exhaustive_break_indices(records)


@given(streams, st.integers(min_value=1, max_value=10))
@settings(deadline=None)
def test_incremental_equals_full_search_any_bucket_cap(pairs, max_buckets):
    records = RecordList()
    engine = IncrementalExhaustivePartition(records, max_buckets=max_buckets)
    for task_id, (value, sig) in enumerate(pairs):
        feed(records, engine, value, sig, task_id)
        assert engine.break_indices() == exhaustive_break_indices(
            records, max_buckets=max_buckets
        )


@given(streams)
@settings(deadline=None)
def test_incremental_equals_full_search_interleaved_queries(pairs):
    """Querying only sometimes (batched completions) changes nothing."""
    records = RecordList()
    engine = IncrementalExhaustivePartition(records)
    for task_id, (value, sig) in enumerate(pairs):
        feed(records, engine, value, sig, task_id)
        if task_id % 3 == 0:
            assert engine.break_indices() == exhaustive_break_indices(records)
    assert engine.break_indices() == exhaustive_break_indices(records)


def test_shift_cache_path_stays_exact_without_resync():
    """Inserts below every candidate ride the O(1) shift cache, exactly."""
    records = RecordList()
    engine = IncrementalExhaustivePartition(records)
    for i, value in enumerate([5000.0, 8000.0, 12000.0, 20000.0]):
        feed(records, engine, value, significance=float(i + 1), task_id=i)
    assert engine.break_indices() == exhaustive_break_indices(records)
    assert engine.resyncs == 1
    # min candidate is v_max / 10 = 2000; everything below it takes the
    # base/shift fast path and must reuse the cached configurations.
    for i, value in enumerate([3.0, 170.0, 42.0, 999.0, 1500.0, 0.5] * 5):
        feed(records, engine, value, significance=1.0, task_id=100 + i)
        assert engine.break_indices() == exhaustive_break_indices(records)
    assert engine.resyncs == 1  # never fell back to a full remap


def test_new_maximum_desyncs_then_resyncs_exactly():
    records = RecordList()
    engine = IncrementalExhaustivePartition(records)
    for i, value in enumerate([100.0, 200.0, 300.0]):
        feed(records, engine, value, task_id=i)
    assert engine.break_indices() == exhaustive_break_indices(records)
    assert engine.synced
    feed(records, engine, 10_000.0, task_id=3)  # moves every candidate
    assert not engine.synced
    assert engine.break_indices() == exhaustive_break_indices(records)
    assert engine.synced and engine.resyncs == 2


def test_single_bucket_engine_has_no_candidates():
    records = RecordList()
    engine = IncrementalExhaustivePartition(records, max_buckets=1)
    assert engine.n_candidates == 0
    assert not engine.cheaper_than_full()
    feed(records, engine, 10.0)
    assert engine.break_indices() == [0]


def test_break_indices_empty_records_returns_none():
    records = RecordList()
    engine = IncrementalExhaustivePartition(records)
    assert engine.break_indices() is None


# -- exhaustive engine: consume_stats contract --------------------------------


def test_consume_stats_matches_partition_stats_bit_exactly():
    records = RecordList()
    engine = IncrementalExhaustivePartition(records)
    for i, value in enumerate([100.0, 250.0, 400.0, 900.0, 1500.0, 2500.0]):
        feed(records, engine, value, significance=float(i + 1), task_id=i)
    breaks = engine.break_indices()
    stats = engine.consume_stats(breaks)
    assert stats is not None
    reps, probs, estimates = stats
    ref_reps, ref_probs, ref_estimates = partition_stats(records, breaks)
    assert reps == ref_reps  # exact float equality, not approx
    assert probs == ref_probs
    assert estimates == ref_estimates


def test_consume_stats_is_one_shot_and_identity_keyed():
    records = RecordList()
    engine = IncrementalExhaustivePartition(records)
    for i, value in enumerate([10.0, 500.0, 900.0, 1300.0]):
        feed(records, engine, value, task_id=i)
    breaks = engine.break_indices()
    # An equal-but-distinct list is refused: the stats belong to the
    # exact object the engine just scored.
    assert engine.consume_stats(list(breaks)) is None
    assert engine.consume_stats(breaks) is not None
    assert engine.consume_stats(breaks) is None  # cleared on use


# -- exhaustive engine: checkpoint contract (rebuilt on load) -----------------


def test_exhaustive_cache_state_rebuilds_on_load():
    records = RecordList()
    engine = IncrementalExhaustivePartition(records)
    for i, value in enumerate([50.0, 600.0, 1200.0, 4000.0]):
        feed(records, engine, value, task_id=i)
    expected = engine.break_indices()
    assert engine.cache_state() is None  # nothing serialized
    restored = IncrementalExhaustivePartition(records)
    restored.restore_cache(None)
    assert not restored.synced
    assert restored.break_indices() == expected  # resynced from the records


def test_exhaustive_bucketing_state_roundtrip_mid_stream():
    """Kill/resume the whole algorithm mid-stream: identical continuations."""
    rng = np.random.default_rng(3)
    values = rng.lognormal(mean=6.0, sigma=1.0, size=60).tolist()

    def fresh():
        return ExhaustiveBucketing(rng=np.random.default_rng(17), record_capacity=25)

    original = fresh()
    for i, value in enumerate(values[:30]):
        original.update(value, significance=float(i + 1), task_id=i)
        original.predict()
    # JSON round-trip, as the checkpoint file would.
    snapshot = json.loads(json.dumps(original.state_dict()))
    resumed = fresh()
    resumed.load_state(snapshot)

    for i, value in enumerate(values[30:], start=30):
        original.update(value, significance=float(i + 1), task_id=i)
        resumed.update(value, significance=float(i + 1), task_id=i)
        assert resumed.predict() == original.predict()
    assert resumed.records.values.tolist() == original.records.values.tolist()
    assert [b.hi for b in resumed.state.buckets] == [
        b.hi for b in original.state.buckets
    ]


# -- greedy engine: local repair ----------------------------------------------


def greedy_feed(records, engine, value, significance=1.0, task_id=-1):
    return feed(records, engine, value, significance, task_id)


@given(streams)
@settings(deadline=None)
def test_greedy_repair_yields_valid_unsplittable_tiling(pairs):
    """After every query: a strict tiling whose buckets are all fixpoints."""
    records = RecordList()
    engine = IncrementalGreedyPartition(records)
    for task_id, (value, sig) in enumerate(pairs):
        greedy_feed(records, engine, value, sig, task_id)
        breaks = engine.break_indices()
        n = len(records)
        assert breaks[-1] == n - 1
        assert all(b2 > b1 for b1, b2 in zip(breaks, breaks[1:]))
        assert breaks[0] >= 0
        # Locality fixpoint: the greedy rule declines to split any bucket.
        lo = 0
        for hi in breaks:
            assert greedy_break_indices(records, lo, hi) == [hi]
            lo = hi + 1


def test_greedy_fragmentation_bound_forces_resync():
    records = RecordList()
    engine = IncrementalGreedyPartition(records)
    for i, value in enumerate([100.0, 200.0, 5000.0, 9000.0]):
        greedy_feed(records, engine, value, task_id=i)
    engine.break_indices()
    full = greedy_break_indices(records)
    # Restore an over-fragmented cache: the last full search allegedly
    # produced 1 bucket, but the cache carries len(records) of them —
    # past MAX_FRAGMENTATION, so the next query must re-search.
    engine.restore_cache(
        {"breaks": list(range(len(records))), "dirty": [], "full_count": 1}
    )
    before = engine.resyncs
    assert engine.break_indices() == full
    assert engine.resyncs == before + 1


def test_greedy_engine_desyncs_on_eviction():
    records = RecordList(capacity=5)
    engine = IncrementalGreedyPartition(records)
    for i, value in enumerate([10.0, 20.0, 3000.0, 4000.0, 5000.0]):
        greedy_feed(records, engine, value, significance=float(i + 1), task_id=i)
    engine.break_indices()
    assert engine.synced
    greedy_feed(records, engine, 7000.0, significance=10.0, task_id=9)  # evicts
    assert not engine.synced
    assert engine.break_indices() == greedy_break_indices(records)


def test_greedy_cache_roundtrip_is_bit_identical():
    records = RecordList()
    engine = IncrementalGreedyPartition(records)
    for i, value in enumerate([10.0, 20.0, 3000.0, 4000.0, 9000.0]):
        greedy_feed(records, engine, value, significance=float(i + 1), task_id=i)
    engine.break_indices()
    # Leave a pending repair in the cache: the dirty set must survive.
    greedy_feed(records, engine, 15.0, significance=7.0, task_id=10)
    cache = json.loads(json.dumps(engine.cache_state()))
    restored = IncrementalGreedyPartition(records)
    restored.restore_cache(cache)
    assert restored.synced
    assert restored.break_indices() == engine.break_indices()
    assert restored.cache_state() == engine.cache_state()


@pytest.mark.parametrize(
    "bad",
    [
        "garbage",
        {"breaks": []},
        {"breaks": [0, 2], "dirty": [5], "full_count": 1},  # dirty out of range
        {"breaks": [0, 2], "dirty": [], "full_count": 0},
        {"breaks": [0, "x"], "dirty": [], "full_count": 1},
    ],
)
def test_greedy_restore_rejects_malformed_state(bad):
    records = RecordList()
    engine = IncrementalGreedyPartition(records)
    for i, value in enumerate([10.0, 20.0, 30.0]):
        greedy_feed(records, engine, value, task_id=i)
    engine.break_indices()
    engine.restore_cache(bad)
    assert not engine.synced
    assert engine.break_indices() == greedy_break_indices(records)


def test_greedy_engine_is_opt_in_and_refused_under_bucket_cap():
    assert GreedyBucketing().partition_engine is None  # off by default
    assert GreedyBucketing(incremental=True).partition_engine is not None
    # The cap couples segments globally; locality (and the engine) is out.
    assert GreedyBucketing(incremental=True, max_buckets=4).partition_engine is None


def test_greedy_bucketing_incremental_stream_matches_engine_fixpoint():
    """The wired-up algorithm produces the engine's tiling, not garbage."""
    algo = GreedyBucketing(rng=np.random.default_rng(0), incremental=True)
    rng = np.random.default_rng(12)
    for i, value in enumerate(rng.normal(800.0, 200.0, size=80)):
        algo.update(max(float(value), 1.0), significance=float(i + 1), task_id=i)
        assert algo.predict() is not None
    breaks = [b.hi for b in algo.state.buckets]
    records = algo.records
    assert breaks[-1] == len(records) - 1
    lo = 0
    for hi in breaks:
        assert greedy_break_indices(records, lo, hi) == [hi]
        lo = hi + 1
