"""Tier-1 gate: reprolint over the real ``src/`` tree must stay clean.

This is the pytest face of the CI lint lane: any unbaselined finding —
a new wall-clock read in the simulation, an unpaired ``state_dict``, a
non-atomic artifact write — fails the default test run, not just the
lint job.  The committed baseline is expected to be (and stay) empty;
this test also fails if the baseline silently grows.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.analysis import analyze_paths, diff_against_baseline, load_baseline
from repro.analysis.baseline import DEFAULT_BASELINE_NAME

pytestmark = pytest.mark.analysis

REPO_ROOT = Path(__file__).resolve().parents[2]
SRC = REPO_ROOT / "src"
BASELINE = REPO_ROOT / DEFAULT_BASELINE_NAME


def test_src_tree_is_reprolint_clean():
    findings = analyze_paths([str(SRC)])
    diff = diff_against_baseline(findings, load_baseline(str(BASELINE)))
    assert not diff.new, "new reprolint findings:\n" + "\n".join(
        f.render() for f in diff.new
    )


def test_committed_baseline_is_empty():
    baseline = load_baseline(str(BASELINE))
    assert baseline.fingerprints == frozenset(), (
        "the baseline must stay empty — fix the violation or add an inline "
        f"pragma with a reason; entries: {sorted(baseline.fingerprints)}"
    )


def test_analysis_package_is_stdlib_only():
    # The lint lane runs before dependency install; keep it that way.
    import repro.analysis.core as core
    import repro.analysis.runner as runner

    for module in (core, runner):
        source = Path(module.__file__).read_text()
        assert "import numpy" not in source and "import scipy" not in source
