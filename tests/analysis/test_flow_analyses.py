"""Golden bad-fixture/clean-twin tests for the reproflow analyses.

Mirrors ``test_rules.py`` one level up: every interprocedural analysis
(F1..F5) must fire on its seeded-bug fixture with an exact finding
count and stay silent on the clean twin.  Fixtures live under
``tests/analysis/fixtures/flow/`` and are analyzed with *virtual*
``repro/...`` paths so the scoped analyses (async roots in
``repro/service``, the shard/allocator qualnames, the protocol module)
see them as in-scope repo files.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.analysis.core import ModuleSource, Project
from repro.analysis.flow.base import all_flow_analyses, get_flow_analysis
from repro.analysis.flow.runner import analyze_flow_project, analyze_flow_sources

FIXTURES = Path(__file__).parent / "fixtures" / "flow"

pytestmark = pytest.mark.analysis

DOC_PATH = "docs/SERVICE.md"

#: Every op in the F5 fixture protocol (f5_protocol.py REQUEST_OPS).
ALL_OPS = ("allocate", "record", "allocate_batch", "ping", "stats")


def _read(name: str) -> str:
    return (FIXTURES / name).read_text()


def _sources(pairs):
    return [(path, _read(name)) for path, name in pairs]


def _doc_table(ops) -> str:
    rows = "".join(f"| `{op}` | does {op} |\n" for op in ops)
    return (
        "# Allocation service\n\n## Wire protocol\n\n"
        "| op | meaning |\n| --- | --- |\n" + rows + "\n## Other section\n"
    )


_F5_SHARED = [
    ("repro/service/shards.py", "f5_shards.py"),
    ("repro/service/protocol.py", "f5_protocol.py"),
]
_F4_SHARED = [
    ("repro/checkpoint.py", "f4_checkpoint.py"),
    ("repro/service/shards.py", "f4_shards.py"),
]

#: analysis id -> (bad sources, clean sources, expected bad count,
#:                 bad docs, clean docs).  Sources are
#: (virtual_path, fixture_file); docs feed F5's SERVICE.md check.
CASES = {
    "F1": (
        [("repro/service/fixture.py", "f1_bad.py")],
        [("repro/service/fixture.py", "f1_clean.py")],
        4,
        None,
        None,
    ),
    "F2": (
        [
            ("repro/core/allocator.py", "f2_allocator.py"),
            ("repro/service/shards.py", "f2_bad.py"),
        ],
        [
            ("repro/core/allocator.py", "f2_allocator.py"),
            ("repro/service/shards.py", "f2_clean.py"),
        ],
        3,
        None,
        None,
    ),
    "F3": (
        [("repro/sim/recorder.py", "f3_bad.py")],
        [("repro/sim/recorder.py", "f3_clean.py")],
        3,
        None,
        None,
    ),
    "F4": (
        _F4_SHARED + [("repro/service/server.py", "f4_bad_server.py")],
        _F4_SHARED + [("repro/service/server.py", "f4_clean_server.py")],
        2,
        None,
        None,
    ),
    "F5": (
        _F5_SHARED
        + [
            ("repro/service/server.py", "f5_bad_server.py"),
            ("repro/service/client.py", "f5_bad_client.py"),
        ],
        _F5_SHARED
        + [
            ("repro/service/server.py", "f5_clean_server.py"),
            ("repro/service/client.py", "f5_clean_client.py"),
        ],
        6,
        _doc_table(("allocate", "record", "ping", "stats", "teleport")),
        _doc_table(ALL_OPS),
    ),
}


@pytest.mark.parametrize("analysis_id", sorted(CASES))
def test_analysis_fires_on_bad_fixture(analysis_id):
    bad, _clean, expected_count, bad_doc, _clean_doc = CASES[analysis_id]
    docs = {DOC_PATH: bad_doc} if bad_doc is not None else None
    findings = analyze_flow_sources(_sources(bad), docs=docs)
    fired = [f for f in findings if f.rule == analysis_id]
    assert fired, f"{analysis_id} did not fire on its bad fixture"
    assert len(fired) == expected_count, [f.render() for f in fired]
    for finding in fired:
        assert finding.line > 0 and finding.message


@pytest.mark.parametrize("analysis_id", sorted(CASES))
def test_analysis_silent_on_clean_twin(analysis_id):
    _bad, clean, _count, _bad_doc, clean_doc = CASES[analysis_id]
    docs = {DOC_PATH: clean_doc} if clean_doc is not None else None
    findings = analyze_flow_sources(_sources(clean), docs=docs)
    assert not findings, [f.render() for f in findings]


def test_every_registered_analysis_has_a_fixture_case():
    assert {a.id for a in all_flow_analyses()} == set(CASES)


def test_analysis_catalog_metadata():
    analyses = all_flow_analyses()
    assert [a.id for a in analyses] == [f"F{i}" for i in range(1, 6)]
    for analysis in analyses:
        assert analysis.name and analysis.description


def test_lookup_by_id_and_name_is_case_insensitive():
    assert get_flow_analysis("f3") is get_flow_analysis("Taint-Lane")
    assert get_flow_analysis("F9") is None
    assert get_flow_analysis("no-such-analysis") is None


# -- pragma integration ----------------------------------------------------------------

ASYNC_OFFENDER = "import time\n\n\nasync def tick():\n    time.sleep(1)\n"


def _flow_report(text: str):
    project = Project([ModuleSource(path="repro/service/mod.py", text=text)])
    return analyze_flow_project(project)


def test_flow_finding_without_pragma_survives():
    report = _flow_report(ASYNC_OFFENDER)
    assert [f.rule for f in report.findings] == ["F1"]
    assert report.suppressed["F1"] == 0


def test_flow_pragma_suppresses_and_is_counted():
    suppressed = ASYNC_OFFENDER.replace(
        "time.sleep(1)",
        "time.sleep(1)  # reprolint: disable=F1  # fixture exemption",
    )
    report = _flow_report(suppressed)
    assert not report.findings
    assert report.suppressed["F1"] == 1


def test_flow_pragma_accepts_analysis_name():
    by_name = ASYNC_OFFENDER.replace(
        "time.sleep(1)", "time.sleep(1)  # reprolint: disable=loop-blocking"
    )
    report = _flow_report(by_name)
    assert not report.findings and report.suppressed["F1"] == 1


def test_flow_parse_error_reported_as_r0():
    findings = analyze_flow_sources([("repro/service/broken.py", "async def (:\n")])
    assert [f.rule for f in findings] == ["R0"]


def test_selecting_a_single_analysis_limits_findings():
    bad, _clean, _count, _bad_doc, _clean_doc = CASES["F1"]
    only_f2 = analyze_flow_sources(
        _sources(bad), analyses=[get_flow_analysis("F2")]
    )
    assert not [f for f in only_f2 if f.rule == "F1"]
