# reprolint test fixture: R5 swallowed-except — minimal offenders.


def swallow_everything(task):
    try:
        task.run()
    except:  # noqa: E722  (the rule under test)
        return None


def swallow_quietly(task):
    try:
        task.run()
    except Exception:
        pass
