# reprolint test fixture: R7 cli-config-drift — offending CLI half.
# Scanned with the virtual path repro/cli.py next to r7_bad_config.py
# as repro/experiments/config.py: one dead flag, one stale keyword.
import argparse

from repro.experiments.config import ExperimentConfig


def build_parser():
    parser = argparse.ArgumentParser()
    parser.add_argument("--tasks", type=int, default=1000)
    parser.add_argument("--dead-flag", type=int, default=0)
    return parser


def main(argv=None):
    args = build_parser().parse_args(argv)
    config = ExperimentConfig(n_tasks=args.tasks, renamed_away=1)
    return config
