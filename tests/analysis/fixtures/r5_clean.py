# reprolint test fixture: R5 swallowed-except — clean twin.
# Specific exceptions, and a broad catch that actually handles.
import logging

log = logging.getLogger(__name__)


def handle_specific(task):
    try:
        task.run()
    except KeyError:
        return None


def handle_broadly_but_loudly(task):
    try:
        task.run()
    except Exception as exc:
        log.warning("task failed: %s", exc)
        raise
