# reprolint test fixture: R7 cli-config-drift — clean CLI half.
import argparse

from repro.experiments.config import ExperimentConfig


def build_parser():
    parser = argparse.ArgumentParser()
    parser.add_argument("--tasks", type=int, default=1000)
    parser.add_argument("--ramp-up", type=float, default=600.0)
    return parser


def main(argv=None):
    args = build_parser().parse_args(argv)
    config = ExperimentConfig(n_tasks=args.tasks, ramp_up_seconds=args.ramp_up)
    return config.with_(n_tasks=500)
