# reprolint test fixture: R3 state-symmetry — clean twins:
# a symmetric state_dict/load_state pair and a from_state classmethod.


class Symmetric:
    def __init__(self):
        self._count = 0
        self._cache = {}

    def state_dict(self):
        return {"count": self._count, "cache": dict(self._cache)}

    def load_state(self, state):
        self._count = int(state["count"])
        self._cache = dict(state["cache"])


class Rebuilt:
    def __init__(self, count):
        self.count = count

    def state_dict(self):
        return {"count": self.count}

    @classmethod
    def from_state(cls, state):
        return cls(count=int(state["count"]))
