"""F5 clean twin server: explicit branch for every admin/batch op."""


async def dispatch(doc):
    op = doc["op"]
    if op == "ping":
        return {"pong": True}
    if op == "stats":
        return {}
    if op == "allocate_batch":
        return {}
    return {}
