"""Shared F5 fixture: op constants (virtual repro/service/shards.py)."""

OP_ALLOCATE = "allocate"
OP_RECORD = "record"

MUTATING_OPS = (OP_ALLOCATE, OP_RECORD)
