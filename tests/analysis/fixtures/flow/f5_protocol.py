"""Shared F5 fixture: authoritative op set (virtual repro/service/protocol.py)."""
from repro.service.shards import MUTATING_OPS

ADMIN_OPS = ("ping", "stats")

REQUEST_OPS = MUTATING_OPS + ("allocate_batch",) + ADMIN_OPS
