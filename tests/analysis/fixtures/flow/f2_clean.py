"""F2 clean twin: every mutation rides the writer task or recovery."""
from repro.core.allocator import TaskOrientedAllocator


class AllocationShard:
    def __init__(self):
        self.seq = 0
        self.allocator = TaskOrientedAllocator()
        self._dedup = {}

    async def _writer_loop(self):
        self._commit({"op": "x"})

    def _commit(self, op):
        self.seq += 1
        self._dedup["k"] = op
        self.allocator.observe("c", 1.0)

    def stats(self):
        return {"seq": self.seq, "dedup": len(self._dedup)}

    def restore(self, state):
        self.seq = state["seq"]


def apply_op(shard, op):
    shard.allocator.load_state(op)
