"""F5 bad fixture: server dispatch drifts from REQUEST_OPS."""


async def dispatch(doc):
    op = doc["op"]
    if op == "ping":
        return {"pong": True}
    if op == "reboot":
        return {}
    if op == "allocate_batch":
        return {}
    return {}
