"""F3 clean twin: durable lanes fed only from logical/seeded state."""
import random

from repro.checkpoint import append_jsonl


class Recorder:
    def __init__(self, seed):
        self._rng = random.Random(seed)
        self._clock = 0
        self.token = f"client-{seed}"

    def stamp(self):
        self._clock += 1
        return self._clock

    def flush(self, path):
        doc = {"token": self.token, "at": self.stamp()}
        append_jsonl(path, doc)

    def state_dict(self):
        return {"seen": self.stamp(), "jitter": self._rng.random()}
