"""F2 bad fixture: shard state mutated outside the writer task."""
from repro.core.allocator import TaskOrientedAllocator


class AllocationShard:
    def __init__(self):
        self.seq = 0
        self.allocator = TaskOrientedAllocator()
        self._dedup = {}

    async def _writer_loop(self):
        self._commit({"op": "x"})

    def _commit(self, op):
        self.seq += 1
        self._dedup["k"] = op

    def sneaky_reset(self):
        self.seq = 0
        self._dedup.clear()
        self.allocator.observe("c", 1.0)

    def restore(self, state):
        self.seq = state["seq"]


def apply_op(shard, op):
    shard.allocator.load_state(op)
