"""F1 clean twin: blocking work confined to annotated sync boundaries."""
import asyncio
import os


async def handle_request(payload):
    await asyncio.to_thread(persist, payload)
    await asyncio.sleep(0.01)
    return True


def persist(doc):
    handle = open("/tmp/wal.log", "a")
    handle.write(str(doc))
    os.fsync(handle.fileno())
    handle.close()


# reproflow: sync-boundary -- deliberate group-commit choke point
def sanctioned(doc):
    handle = open("/tmp/wal.log", "a")
    handle.write(str(doc))
    handle.close()


async def boundary_user(doc):
    sanctioned(doc)
