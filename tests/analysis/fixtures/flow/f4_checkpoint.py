"""Shared F4 fixture: monitored exceptions (virtual repro/checkpoint.py)."""


class CheckpointError(RuntimeError):
    pass


class JournalCorruptError(CheckpointError):
    pass


def read_frame(line):
    if not line:
        raise JournalCorruptError("truncated frame")
    return line
