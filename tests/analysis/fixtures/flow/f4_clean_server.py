"""F4 clean twin: every monitored exception gets a typed catch."""
import asyncio

from repro.checkpoint import CheckpointError, read_frame
from repro.service.shards import AllocationShard, StorageUnavailable


class Server:
    def __init__(self):
        self.shard = AllocationShard()

    async def start(self):
        return await asyncio.start_server(self._handle, "127.0.0.1", 0)

    async def _handle(self, reader, writer):
        try:
            line = read_frame(b"x")
        except CheckpointError:
            return None
        try:
            self.shard.commit(None)
        except StorageUnavailable:
            return None
        try:
            self.shard.commit({})
        except StorageUnavailable:
            return None
        return line
