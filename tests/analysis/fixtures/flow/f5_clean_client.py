"""F5 clean twin client: one typed helper per wire op."""
from repro.service.shards import OP_ALLOCATE, OP_RECORD


class MiniClient:
    def call(self, doc):
        return doc

    def allocate(self):
        return self.call({"op": OP_ALLOCATE})

    def record(self):
        return self.call({"op": OP_RECORD})

    def allocate_batch(self):
        return self.call({"op": "allocate_batch"})

    def ping(self):
        return self.call({"op": "ping"})

    def stats(self):
        return self.call({"op": "stats"})
