"""F4 bad fixture: handler leaks monitored exceptions untyped."""
import asyncio

from repro.checkpoint import read_frame
from repro.service.shards import AllocationShard, StorageUnavailable


class Server:
    def __init__(self):
        self.shard = AllocationShard()

    async def start(self):
        return await asyncio.start_server(self._handle, "127.0.0.1", 0)

    async def _handle(self, reader, writer):
        line = read_frame(b"x")
        try:
            self.shard.commit(None)
        except StorageUnavailable:
            return None
        try:
            self.shard.commit({})
        except Exception:
            return None
        return line
