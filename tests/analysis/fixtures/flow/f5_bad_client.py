"""F5 bad fixture: client SDK drifts from REQUEST_OPS."""


class MiniClient:
    def call(self, doc):
        return doc

    def allocate(self):
        return self.call({"op": "allocate"})

    def record(self):
        return self.call({"op": "record"})

    def ping(self):
        return self.call({"op": "ping"})

    def stats(self):
        return self.call({"op": "stats"})

    def destroy(self):
        return self.call({"op": "destroy"})
