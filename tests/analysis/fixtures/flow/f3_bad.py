"""F3 bad fixture: clock/uuid values reaching durable lanes."""
import time
import uuid

from repro.checkpoint import append_jsonl


class Recorder:
    def __init__(self):
        self.token = uuid.uuid4().hex

    def stamp(self):
        return time.time()

    def flush(self, path):
        doc = {"token": self.token, "at": self.stamp()}
        append_jsonl(path, doc)

    def state_dict(self):
        return {"seen": self.stamp()}
