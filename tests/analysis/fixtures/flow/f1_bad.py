"""F1 bad fixture: async service code reaching blocking primitives."""
import os
import time


async def handle_request(payload):
    persist(payload)
    time.sleep(0.01)
    return True


def persist(doc):
    handle = open("/tmp/wal.log", "a")
    handle.write(str(doc))
    os.fsync(handle.fileno())
    handle.close()


# reproflow: sync-boundary -- deliberate choke point exercised by the clean path
def sanctioned(doc):
    handle = open("/tmp/wal.log", "a")
    handle.write(str(doc))
    handle.close()


async def boundary_user(doc):
    sanctioned(doc)
