"""Shared F2 fixture: stand-in allocator (virtual repro/core/allocator.py)."""


class TaskOrientedAllocator:
    def __init__(self):
        self.records = {}

    def observe(self, category, value):
        self.records[category] = value

    def load_state(self, state):
        self.records = dict(state)

    def state(self):
        return dict(self.records)
