"""Shared F4 fixture: storage fault source (virtual repro/service/shards.py)."""


class StorageUnavailable(RuntimeError):
    pass


class AllocationShard:
    def commit(self, doc):
        if doc is None:
            raise StorageUnavailable("degraded")
        return doc
