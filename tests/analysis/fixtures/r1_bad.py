# reprolint test fixture: R1 wall-clock — minimal offender.
# Scanned with the virtual path repro/sim/fixture.py (in scope).
import time as _time
from datetime import datetime


def stamp_event(events):
    events.append((_time.time(), "started"))
    events.append((_time.monotonic(), "monotonic"))
    events.append((datetime.now(), "dated"))
    events.append((datetime.today(), "today"))
