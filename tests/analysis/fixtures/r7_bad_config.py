# reprolint test fixture: R7 cli-config-drift — offending config half.
# ``orphan_knob`` has no CLI wiring and no pragma.
from dataclasses import dataclass


@dataclass(frozen=True)
class ExperimentConfig:
    n_tasks: int = 1000
    orphan_knob: float = 0.5
