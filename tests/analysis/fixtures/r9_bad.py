# reprolint test fixture: R9 raw-durable-write — minimal offenders.
# Each write targets a WAL or snapshot path without going through
# repro.checkpoint, bypassing CRC32 frames and fsync discipline.
import json
import os


def append_wal_record(record):
    with open("state/shard-00.wal", "a") as handle:
        handle.write(json.dumps(record) + "\n")


def overwrite_snapshot(data_dir, payload):
    with open(os.path.join(data_dir, "service.snapshot.json"), "w") as handle:
        handle.write(json.dumps(payload))


def rewrite_segment(data_dir, lines):
    with open(f"{data_dir}/shard-01.wal.g000002", mode="w") as handle:
        handle.writelines(lines)
