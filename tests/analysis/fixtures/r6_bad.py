# reprolint test fixture: R6 listener-purity — minimal offender.
# A registered post-event listener that rewinds the clock, schedules,
# and degrades pool capacity.


class MeddlingObserver:
    def __init__(self, engine, pool):
        self._engine = engine
        self._pool = pool
        engine.add_listener(self._after_event)

    def _after_event(self):
        self._engine._now = 0.0
        self._engine.schedule(1.0, lambda: None)
        self._pool.degrade_worker(0, 0.5)
