# reprolint test fixture: R7 cli-config-drift — clean config half.
# Every field is CLI-wired except one, which carries the pragma.
from dataclasses import dataclass


@dataclass(frozen=True)
class ExperimentConfig:
    n_tasks: int = 1000
    ramp_up_seconds: float = 600.0
    internal_knob: int = 7  # reprolint: disable=R7  # test-harness only
