# reprolint test fixture: R2 global-rng — minimal offender.
import random

import numpy as np
from random import randint


def jitter():
    return random.random() + random.uniform(0.0, 1.0)


def seed_everything(seed):
    random.seed(seed)
    np.random.seed(seed)
    return np.random.rand(4), randint(0, 10)
