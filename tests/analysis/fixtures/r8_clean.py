# reprolint test fixture: R8 impure-snapshot — clean twin.
# Serializes the generator's *state* without drawing from it; RNG
# draws outside state_dict are allowed (and R1 does not apply outside
# repro.sim/repro.core scope).
from repro.checkpoint import generator_state, restore_generator


class FaithfulSnapshot:
    def __init__(self, rng):
        self._rng = rng

    def step(self):
        return self._rng.random()

    def state_dict(self):
        return {"rng": generator_state(self._rng)}

    def load_state(self, state):
        restore_generator(self._rng, state["rng"])
