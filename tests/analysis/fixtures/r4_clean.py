# reprolint test fixture: R4 raw-artifact-write — clean twin.
# Reads are fine; writes go through the atomic helpers.
import json

from repro.checkpoint import append_jsonl, write_json_atomic, write_text_atomic


def publish_results(path, rows):
    write_json_atomic(path, rows)


def publish_text(path, text):
    write_text_atomic(path, json.dumps(text))


def append_log(path, doc):
    append_jsonl(path, doc)


def load_results(path):
    with open(path, "r", encoding="utf-8") as handle:
        return json.load(handle)
