# reprolint test fixture: R8 impure-snapshot — minimal offender.
# A state_dict that samples its RNG and reads the wall clock while
# serializing: the snapshot mutates the state it claims to capture.
import time


class DriftingSnapshot:
    def __init__(self, rng):
        self._rng = rng

    def state_dict(self):
        return {
            "nonce": self._rng.random(),
            "written_at": time.time(),
        }

    def load_state(self, state):
        self._rng = state["nonce"]
