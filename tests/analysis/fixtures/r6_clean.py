# reprolint test fixture: R6 listener-purity — clean twin.
# Observes state, keeps its own counters, never steers the engine.


class PureObserver:
    def __init__(self, engine, pool):
        self._engine = engine
        self._pool = pool
        self._events = 0
        self._last_now = 0.0
        engine.add_listener(self._after_event)

    def _after_event(self):
        self._events += 1
        self._last_now = self._engine.now


def schedule_normally(engine):
    # Scheduling outside a listener is of course allowed.
    engine.schedule(1.0, lambda: None)
