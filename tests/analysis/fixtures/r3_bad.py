# reprolint test fixture: R3 state-symmetry — two offenders:
# a state_dict with no restore path, and a pair whose field sets drift.


class NoRestore:
    def __init__(self):
        self._count = 0

    def state_dict(self):
        return {"count": self._count}


class FieldDrift:
    def __init__(self):
        self._count = 0
        self._cache = {}

    def state_dict(self):
        return {"count": self._count, "cache": dict(self._cache)}

    def load_state(self, state):
        self._count = int(state["count"])
