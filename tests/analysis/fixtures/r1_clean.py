# reprolint test fixture: R1 wall-clock — clean twin.
# Uses the engine clock instead of the host clock; time.time appearing
# in a string or as an attribute of a non-time object must not fire.


def stamp_event(engine, events):
    events.append((engine.now, "started"))
    note = "docs mention time.time() but never call it"
    events.append((engine.now, note))


class Stopwatch:
    def time(self):
        return 0.0


def use_local_time(clock: Stopwatch):
    return clock.time()
