# reprolint test fixture: R4 raw-artifact-write — minimal offenders.
import json
from pathlib import Path


def publish_results(path, rows):
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(rows, handle)


def publish_text(path, text):
    Path(path).write_text(text)


def append_log(path, line):
    with open(path, mode="a") as handle:
        handle.write(line)
