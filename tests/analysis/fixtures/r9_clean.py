# reprolint test fixture: R9 raw-durable-write — clean twin.
# Durable storage goes through repro.checkpoint; reads stay raw-friendly.
import os

from repro.checkpoint import JournalWriter, read_jsonl, write_text_atomic


def append_wal_record(record):
    with JournalWriter("state/shard-00.wal", sync="op") as journal:
        journal.append(record)


def overwrite_snapshot(data_dir, text):
    write_text_atomic(os.path.join(data_dir, "service.snapshot.json"), text)


def load_segment(data_dir):
    return read_jsonl(f"{data_dir}/shard-01.wal.g000002")
