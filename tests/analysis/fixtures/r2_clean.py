# reprolint test fixture: R2 global-rng — clean twin.
# Owned, seeded generators are the sanctioned pattern.
import random

import numpy as np


class Sampler:
    def __init__(self, seed):
        self._py = random.Random(seed)
        self._np = np.random.default_rng(seed)

    def draw(self):
        return self._py.random() + float(self._np.random())
