"""Tier-1 gate: the reproflow lane over the real ``src/`` tree stays clean.

Companion to ``test_reprolint_repo.py`` for the whole-program analyses:
any unbaselined interprocedural finding — blocking I/O newly reachable
from the event loop, a shard mutation outside the writer task, clock
taint reaching the WAL, an untyped escape to a handler, wire-protocol
drift — fails the default test run.  The committed flow baseline is
expected to be (and stay) empty.
"""

from __future__ import annotations

import json
import subprocess
import sys
from pathlib import Path

import pytest

from repro.analysis import diff_against_baseline, load_baseline
from repro.analysis.flow.base import all_flow_analyses
from repro.analysis.flow.runner import (
    DEFAULT_FLOW_BASELINE_NAME,
    analyze_flow_paths,
    load_default_docs,
)
from repro.analysis.sarif import validate_sarif

pytestmark = pytest.mark.analysis

REPO_ROOT = Path(__file__).resolve().parents[2]
SRC = REPO_ROOT / "src"
BASELINE = REPO_ROOT / DEFAULT_FLOW_BASELINE_NAME


def _repo_report():
    return analyze_flow_paths(
        [str(SRC)], docs=load_default_docs(str(REPO_ROOT))
    )


def test_src_tree_is_reproflow_clean():
    report = _repo_report()
    diff = diff_against_baseline(report.findings, load_baseline(str(BASELINE)))
    assert not diff.new, "new reproflow findings:\n" + "\n".join(
        f.render() for f in diff.new
    )


def test_committed_flow_baseline_is_empty():
    baseline = load_baseline(str(BASELINE))
    assert baseline.fingerprints == frozenset(), (
        "the flow baseline must stay empty — fix the violation or add an "
        "inline pragma / sync-boundary with a reason; entries: "
        f"{sorted(baseline.fingerprints)}"
    )


def test_repo_docs_are_fed_to_the_doc_aware_analyses():
    docs = load_default_docs(str(REPO_ROOT))
    assert "docs/SERVICE.md" in docs
    assert "## Wire protocol" in docs["docs/SERVICE.md"]


def test_suppression_counters_cover_every_analysis():
    report = _repo_report()
    assert set(report.suppressed) == {a.id for a in all_flow_analyses()}
    # The deliberate exemptions (client identity, perf-counter metrics)
    # are pragma-suppressed, not silently invisible.
    assert report.suppressed["F3"] >= 1


# -- CLI -------------------------------------------------------------------------------


def _run_cli(args, cwd):
    return subprocess.run(
        [sys.executable, "-m", "repro.analysis", *args],
        capture_output=True,
        text=True,
        cwd=cwd,
        env={
            "PYTHONPATH": str(REPO_ROOT / "src"),
            "PATH": "/usr/bin:/bin",
            "PYTHONHASHSEED": "0",
        },
    )


def test_cli_flow_lane_is_clean_and_emits_valid_sarif(tmp_path):
    sarif_path = tmp_path / "reproflow.sarif"
    result = _run_cli(
        ["src", "--flow", "--sarif", str(sarif_path)], cwd=REPO_ROOT
    )
    assert result.returncode == 0, result.stdout + result.stderr
    assert "[reproflow] clean" in result.stdout
    document = json.loads(sarif_path.read_text())
    assert validate_sarif(document) == []
    assert document["runs"][0]["tool"]["driver"]["name"] == "reproflow"


def test_cli_flow_list_rules_prints_the_catalog():
    result = _run_cli(["--flow", "--list-rules"], cwd=REPO_ROOT)
    assert result.returncode == 0
    for analysis in all_flow_analyses():
        assert analysis.id in result.stdout
        assert analysis.name in result.stdout


def test_cli_flow_select_unknown_analysis_exits_2(tmp_path):
    tree = tmp_path / "src" / "repro" / "service"
    tree.mkdir(parents=True)
    (tree / "mod.py").write_text("async def noop():\n    return None\n")
    unknown = _run_cli(["src", "--flow", "--select", "F9"], cwd=tmp_path)
    assert unknown.returncode == 2
    assert "unknown flow analysis" in unknown.stderr


def test_cli_flow_select_filters_analyses(tmp_path):
    tree = tmp_path / "src" / "repro" / "service"
    tree.mkdir(parents=True)
    (tree / "mod.py").write_text(
        "import time\n\n\nasync def tick():\n    time.sleep(1)\n"
    )
    full = _run_cli(["src", "--flow"], cwd=tmp_path)
    assert full.returncode == 1 and "F1[loop-blocking]" in full.stdout
    narrowed = _run_cli(["src", "--flow", "--select", "F5"], cwd=tmp_path)
    assert narrowed.returncode == 0, narrowed.stdout + narrowed.stderr
