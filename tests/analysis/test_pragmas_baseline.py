"""Pragma and baseline behaviour of the reprolint framework."""

from __future__ import annotations

import json
import subprocess
import sys
from pathlib import Path

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.analysis import (
    Finding,
    Severity,
    analyze_sources,
    diff_against_baseline,
    format_pragma,
    load_baseline,
    parse_pragma,
    write_baseline,
)

pytestmark = pytest.mark.analysis

REPO_ROOT = Path(__file__).resolve().parents[2]

OFFENDER = "import time as t\n\nWHEN = t.time()\n"
SUPPRESSED = "import time as t\n\nWHEN = t.time()  # reprolint: disable=R1\n"


def _r1(text: str):
    return [f for f in analyze_sources([("repro/sim/mod.py", text)]) if f.rule == "R1"]


# -- pragmas ---------------------------------------------------------------------------


def test_trailing_pragma_suppresses_same_line():
    assert _r1(OFFENDER)
    assert not _r1(SUPPRESSED)


def test_pragma_accepts_rule_name_and_all():
    by_name = OFFENDER.replace("t.time()", "t.time()  # reprolint: disable=wall-clock")
    by_all = OFFENDER.replace("t.time()", "t.time()  # reprolint: disable=all")
    assert not _r1(by_name)
    assert not _r1(by_all)


def test_pragma_for_other_rule_does_not_suppress():
    wrong = OFFENDER.replace("t.time()", "t.time()  # reprolint: disable=R4")
    assert _r1(wrong)


def test_standalone_comment_pragma_covers_next_line():
    text = (
        "import time as t\n"
        "\n"
        "# reprolint: disable=R1  # fixture exemption\n"
        "WHEN = t.time()\n"
    )
    assert not _r1(text)


def test_pragma_only_suppresses_its_own_line():
    text = SUPPRESSED + "\nLATER = t.time()\n"
    findings = _r1(text)
    assert len(findings) == 1 and findings[0].line == 5


@given(
    st.lists(
        st.one_of(
            st.sampled_from([f"R{i}" for i in range(1, 9)]),
            st.from_regex(r"[A-Za-z][A-Za-z0-9_\-]{0,20}", fullmatch=True),
        ),
        min_size=1,
        max_size=8,
    )
)
def test_pragma_parser_round_trips(rule_names):
    line = "x = 1  " + format_pragma(rule_names)
    parsed = parse_pragma(line)
    assert parsed == frozenset(name.lower() for name in rule_names)


def test_parse_pragma_ignores_ordinary_comments():
    assert parse_pragma("x = 1  # plain comment") is None
    assert parse_pragma("x = 1") is None


# -- baseline --------------------------------------------------------------------------


def _finding(path="repro/sim/mod.py", line=3, rule="R1"):
    return Finding(
        path=path,
        line=line,
        col=0,
        rule=rule,
        name="wall-clock",
        severity=Severity.ERROR,
        message="wall-clock read",
    )


def test_baseline_round_trip(tmp_path):
    path = str(tmp_path / "baseline.json")
    findings = [_finding(line=3), _finding(line=9, rule="R4")]
    write_baseline(path, findings)
    baseline = load_baseline(path)
    assert baseline.fingerprints == {f.fingerprint for f in findings}


def test_missing_baseline_is_empty(tmp_path):
    baseline = load_baseline(str(tmp_path / "absent.json"))
    assert baseline.fingerprints == frozenset()


def test_diff_splits_new_adopted_and_stale(tmp_path):
    path = str(tmp_path / "baseline.json")
    adopted = _finding(line=3)
    gone = _finding(line=99)
    write_baseline(path, [adopted, gone])
    current = [adopted, _finding(line=42)]
    diff = diff_against_baseline(current, load_baseline(path))
    assert [f.line for f in diff.new] == [42]
    assert [f.line for f in diff.adopted] == [3]
    assert diff.stale == [gone.fingerprint]


def test_corrupt_baseline_is_rejected(tmp_path):
    path = tmp_path / "bad.json"
    path.write_text(json.dumps({"version": 999}))
    with pytest.raises(ValueError):
        load_baseline(str(path))


def test_entry_for_deleted_file_goes_stale(tmp_path):
    path = str(tmp_path / "baseline.json")
    ghost = _finding(path="repro/sim/deleted.py", line=10)
    write_baseline(path, [ghost])
    diff = diff_against_baseline([], load_baseline(path))
    assert diff.stale == [ghost.fingerprint]
    assert not diff.new and not diff.adopted


def test_duplicate_baseline_entries_collapse(tmp_path):
    path = tmp_path / "baseline.json"
    entry = {"path": "repro/sim/mod.py", "rule": "R1", "line": 3, "message": "x"}
    path.write_text(json.dumps({"version": 1, "findings": [entry, dict(entry)]}))
    baseline = load_baseline(str(path))
    assert len(baseline.fingerprints) == 1
    diff = diff_against_baseline([_finding(line=3)], baseline)
    assert not diff.new and not diff.stale and len(diff.adopted) == 1


def test_moved_finding_is_new_and_old_entry_stale(tmp_path):
    path = str(tmp_path / "baseline.json")
    write_baseline(path, [_finding(line=3)])
    moved = _finding(line=4)  # same file/rule, shifted one line
    diff = diff_against_baseline([moved], load_baseline(path))
    assert [f.line for f in diff.new] == [4]
    assert diff.stale == [_finding(line=3).fingerprint]
    assert not diff.adopted


# -- CLI -------------------------------------------------------------------------------


def _run_cli(args, cwd):
    env_src = str(REPO_ROOT / "src")
    return subprocess.run(
        [sys.executable, "-m", "repro.analysis", *args],
        capture_output=True,
        text=True,
        cwd=cwd,
        env={"PYTHONPATH": env_src, "PATH": "/usr/bin:/bin", "PYTHONHASHSEED": "0"},
    )


def test_cli_exit_codes_and_baseline_flow(tmp_path):
    offender = tmp_path / "src" / "repro" / "sim" / "mod.py"
    offender.parent.mkdir(parents=True)
    offender.write_text(OFFENDER)

    dirty = _run_cli(["src"], cwd=tmp_path)
    assert dirty.returncode == 1
    assert "R1[wall-clock]" in dirty.stdout

    adopt = _run_cli(["src", "--write-baseline"], cwd=tmp_path)
    assert adopt.returncode == 0, adopt.stderr

    gated = _run_cli(["src"], cwd=tmp_path)
    assert gated.returncode == 0
    assert "baseline-adopted" in gated.stdout

    fixed = offender
    fixed.write_text("WHEN = 0.0\n")
    clean = _run_cli(["src"], cwd=tmp_path)
    assert clean.returncode == 0
    assert "stale baseline entry" in clean.stdout


def test_cli_json_output(tmp_path):
    offender = tmp_path / "src" / "repro" / "sim" / "mod.py"
    offender.parent.mkdir(parents=True)
    offender.write_text(OFFENDER)
    result = _run_cli(["src", "--json"], cwd=tmp_path)
    assert result.returncode == 1
    doc = json.loads(result.stdout)
    assert doc["new"] and doc["new"][0]["rule"] == "R1"
    assert doc["stale_baseline"] == []


def test_cli_single_rule_selection(tmp_path):
    offender = tmp_path / "src" / "repro" / "sim" / "mod.py"
    offender.parent.mkdir(parents=True)
    offender.write_text(OFFENDER)
    result = _run_cli(["src", "--rule", "R4"], cwd=tmp_path)
    assert result.returncode == 0  # R1 offender invisible to an R4-only run
    unknown = _run_cli(["src", "--rule", "nope"], cwd=tmp_path)
    assert unknown.returncode == 2


def test_cli_select_is_an_alias_of_rule(tmp_path):
    offender = tmp_path / "src" / "repro" / "sim" / "mod.py"
    offender.parent.mkdir(parents=True)
    offender.write_text(OFFENDER)
    selected = _run_cli(["src", "--select", "R1"], cwd=tmp_path)
    assert selected.returncode == 1
    assert "R1[wall-clock]" in selected.stdout
    unknown = _run_cli(["src", "--select", "R99"], cwd=tmp_path)
    assert unknown.returncode == 2
    assert "unknown rule" in unknown.stderr


def test_cli_json_reports_pragma_suppressed_counts(tmp_path):
    offender = tmp_path / "src" / "repro" / "sim" / "mod.py"
    offender.parent.mkdir(parents=True)
    offender.write_text(SUPPRESSED + "LATER = t.time()\n")
    result = _run_cli(["src", "--json"], cwd=tmp_path)
    assert result.returncode == 1  # the unsuppressed LATER read still gates
    doc = json.loads(result.stdout)
    assert doc["suppressed"]["R1"] == 1
    assert all(count == 0 for rule, count in doc["suppressed"].items() if rule != "R1")
    assert [f["rule"] for f in doc["new"]] == ["R1"]
