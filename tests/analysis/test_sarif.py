"""SARIF 2.1.0 emission: structure, validation, and file round-trip."""

from __future__ import annotations

import json

import pytest

from repro.analysis.core import Finding, Severity
from repro.analysis.sarif import (
    SARIF_VERSION,
    to_sarif,
    validate_sarif,
    write_sarif,
)

pytestmark = pytest.mark.analysis


def _finding(rule="F1", name="loop-blocking", line=7, col=4, severity=Severity.ERROR):
    return Finding(
        path="src/repro/service/server.py",
        line=line,
        col=col,
        rule=rule,
        name=name,
        severity=severity,
        message=f"{name} offender",
    )


SAMPLE = [
    _finding(),
    _finding(rule="F3", name="taint-lane", line=12, col=0),
    _finding(rule="F1", line=30),
    _finding(rule="R2", name="global-rng", severity=Severity.WARNING),
]


def test_emitted_document_is_schema_valid():
    document = to_sarif(SAMPLE, tool_name="reproflow")
    assert validate_sarif(document) == []
    assert validate_sarif(to_sarif([])) == []


def test_document_shape_and_rule_dedup():
    document = to_sarif(
        SAMPLE,
        tool_name="reproflow",
        rule_descriptions={"F1": "blocking I/O on the event loop"},
    )
    assert document["version"] == SARIF_VERSION
    (run,) = document["runs"]
    driver = run["tool"]["driver"]
    assert driver["name"] == "reproflow"
    # One descriptor per distinct rule that fired, sorted by id.
    assert [r["id"] for r in driver["rules"]] == ["F1", "F3", "R2"]
    assert driver["rules"][0]["shortDescription"] == {
        "text": "blocking I/O on the event loop"
    }
    assert "shortDescription" not in driver["rules"][1]
    assert len(run["results"]) == len(SAMPLE)


def test_result_carries_location_level_and_fingerprint():
    document = to_sarif([_finding()], tool_name="reproflow")
    (result,) = document["runs"][0]["results"]
    assert result["ruleId"] == "F1"
    assert result["level"] == "error"
    region = result["locations"][0]["physicalLocation"]["region"]
    assert region == {"startLine": 7, "startColumn": 5}  # col is 1-based
    uri = result["locations"][0]["physicalLocation"]["artifactLocation"]["uri"]
    assert uri == "src/repro/service/server.py"
    assert result["fingerprints"]["reprolint/v1"] == _finding().fingerprint


def test_warning_severity_maps_to_warning_level():
    document = to_sarif([_finding(severity=Severity.WARNING)])
    assert document["runs"][0]["results"][0]["level"] == "warning"


def test_write_sarif_round_trips(tmp_path):
    path = tmp_path / "lint.sarif"
    write_sarif(str(path), SAMPLE, tool_name="reprolint")
    document = json.loads(path.read_text())
    assert validate_sarif(document) == []
    assert document["runs"][0]["tool"]["driver"]["name"] == "reprolint"


@pytest.mark.parametrize(
    "mutate, expected_fragment",
    [
        (lambda d: d.update(version="9.9"), "version"),
        (lambda d: d.update(runs=[]), "runs"),
        (lambda d: d["runs"][0]["tool"]["driver"].pop("name"), "driver.name"),
        (
            lambda d: d["runs"][0]["results"][0].pop("message"),
            "message.text",
        ),
        (
            lambda d: d["runs"][0]["results"][0].update(level="fatal"),
            "level",
        ),
        (
            lambda d: d["runs"][0]["results"][0]["locations"][0][
                "physicalLocation"
            ]["region"].update(startLine=0),
            "startLine",
        ),
    ],
)
def test_validator_rejects_tampered_documents(mutate, expected_fragment):
    document = to_sarif(SAMPLE)
    mutate(document)
    problems = validate_sarif(document)
    assert problems, f"tampering with {expected_fragment} went undetected"
    assert any(expected_fragment in p for p in problems)


def test_validator_rejects_non_object_documents():
    assert validate_sarif(None)
    assert validate_sarif([1, 2, 3])
