"""Golden bad-snippet fixtures: every rule fires on its offender and
stays silent on the clean twin.

Fixtures live under ``tests/analysis/fixtures/`` and are analyzed with
*virtual* ``repro/...`` paths so the scoped rules (R1 in sim/core, R5
in sim/core/checkpoint, ...) see them as in-scope repo files.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.analysis import all_rules, analyze_sources

FIXTURES = Path(__file__).parent / "fixtures"

pytestmark = pytest.mark.analysis


def _read(name: str) -> str:
    return (FIXTURES / name).read_text()


def _findings(sources):
    return analyze_sources(sources)


def _rules_fired(findings):
    return {f.rule for f in findings}


#: rule id -> (bad sources, clean sources, expected finding count on bad).
#: Each source is (virtual_path, fixture_file).
CASES = {
    "R1": (
        [("repro/sim/fixture.py", "r1_bad.py")],
        [("repro/sim/fixture.py", "r1_clean.py")],
        4,
    ),
    "R2": (
        [("repro/workflows/fixture.py", "r2_bad.py")],
        [("repro/workflows/fixture.py", "r2_clean.py")],
        6,
    ),
    "R3": (
        [("repro/core/fixture.py", "r3_bad.py")],
        [("repro/core/fixture.py", "r3_clean.py")],
        2,
    ),
    "R4": (
        [("repro/experiments/fixture.py", "r4_bad.py")],
        [("repro/experiments/fixture.py", "r4_clean.py")],
        4,
    ),
    "R5": (
        [("repro/sim/fixture.py", "r5_bad.py")],
        [("repro/sim/fixture.py", "r5_clean.py")],
        2,
    ),
    "R6": (
        [("repro/sim/fixture.py", "r6_bad.py")],
        [("repro/sim/fixture.py", "r6_clean.py")],
        3,
    ),
    "R7": (
        [
            ("repro/cli.py", "r7_bad_cli.py"),
            ("repro/experiments/config.py", "r7_bad_config.py"),
        ],
        [
            ("repro/cli.py", "r7_clean_cli.py"),
            ("repro/experiments/config.py", "r7_clean_config.py"),
        ],
        3,
    ),
    "R8": (
        [("repro/experiments/fixture.py", "r8_bad.py")],
        [("repro/experiments/fixture.py", "r8_clean.py")],
        2,
    ),
    "R9": (
        [("repro/experiments/fixture.py", "r9_bad.py")],
        [("repro/experiments/fixture.py", "r9_clean.py")],
        3,
    ),
}


@pytest.mark.parametrize("rule_id", sorted(CASES))
def test_rule_fires_on_bad_fixture(rule_id):
    bad, _clean, expected_count = CASES[rule_id]
    findings = _findings([(path, _read(name)) for path, name in bad])
    fired = [f for f in findings if f.rule == rule_id]
    assert fired, f"{rule_id} did not fire on its bad fixture"
    assert len(fired) == expected_count, [f.render() for f in fired]
    for finding in fired:
        assert finding.line > 0 and finding.message


@pytest.mark.parametrize("rule_id", sorted(CASES))
def test_rule_silent_on_clean_twin(rule_id):
    _bad, clean, _count = CASES[rule_id]
    findings = _findings([(path, _read(name)) for path, name in clean])
    assert not findings, [f.render() for f in findings]


def test_every_registered_rule_has_a_fixture_case():
    assert {rule.id for rule in all_rules()} == set(CASES)


def test_rule_catalog_metadata():
    rules = all_rules()
    assert [r.id for r in rules] == [f"R{i}" for i in range(1, 10)]
    for rule in rules:
        assert rule.name and rule.description


def test_out_of_scope_paths_do_not_fire_scoped_rules():
    # The same wall-clock offender outside repro.sim/repro.core is R1-clean.
    findings = _findings([("repro/experiments/fixture.py", _read("r1_bad.py"))])
    assert "R1" not in _rules_fired(findings)


def test_parse_error_is_reported_not_raised():
    findings = _findings([("repro/sim/broken.py", "def broken(:\n")])
    assert [f.rule for f in findings] == ["R0"]
    assert findings[0].name == "parse-error"
