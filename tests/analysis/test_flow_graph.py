"""Unit and property tests for the reproflow call graph.

The graph is the substrate every F-analysis trusts: edges must resolve
through imports, annotations, and ``self.attr`` types, and the whole
structure must be deterministic — module discovery order or unrelated
additions must never change what the analyses see.
"""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.analysis.core import ModuleSource, Project
from repro.analysis.flow.graph import FILE_HANDLE, CallGraph

pytestmark = pytest.mark.analysis


def _graph(sources) -> CallGraph:
    project = Project(ModuleSource(path=p, text=t) for p, t in sources)
    return CallGraph.build(project)


ALLOCATOR_SRC = '''\
class TaskOrientedAllocator:
    def observe(self, category, value):
        return value
'''

SHARDS_SRC = '''\
from repro.core.allocator import TaskOrientedAllocator


class AllocationShard:
    def __init__(self):
        self.allocator = TaskOrientedAllocator()

    def commit(self, op):
        self.allocator.observe("cat", 1.0)


# reproflow: sync-boundary -- group commit is the sanctioned stall
def group_commit(shard: AllocationShard):
    shard.commit({})


def spill(doc):
    with open("/tmp/x", "a") as handle:
        handle.write(str(doc))
'''

SERVER_SRC = '''\
from repro.service.shards import AllocationShard, group_commit


async def drain(shard: AllocationShard):
    group_commit(shard)
    shard.commit({})
'''

MODS = [
    ("repro/core/allocator.py", ALLOCATOR_SRC),
    ("repro/service/shards.py", SHARDS_SRC),
    ("repro/service/server.py", SERVER_SRC),
]


# -- resolution ------------------------------------------------------------------------


def test_annotation_types_resolve_method_calls():
    graph = _graph(MODS)
    callees = {
        e.callee for e in graph.outgoing("repro.service.shards.group_commit")
    }
    assert "repro.service.shards.AllocationShard.commit" in callees


def test_self_attr_constructor_types_resolve_bound_calls():
    graph = _graph(MODS)
    callees = {
        e.callee
        for e in graph.outgoing("repro.service.shards.AllocationShard.commit")
    }
    assert "repro.core.allocator.TaskOrientedAllocator.observe" in callees


def test_imported_function_calls_are_internal_edges():
    graph = _graph(MODS)
    edges = {
        e.callee: e.internal for e in graph.outgoing("repro.service.server.drain")
    }
    assert edges["repro.service.shards.group_commit"] is True
    assert edges["repro.service.shards.AllocationShard.commit"] is True


def test_with_open_binds_a_file_handle():
    graph = _graph(MODS)
    callees = {e.callee for e in graph.outgoing("repro.service.shards.spill")}
    assert f"{FILE_HANDLE}.write" in callees


def test_sync_boundary_annotation_captures_reason():
    graph = _graph(MODS)
    info = graph.functions["repro.service.shards.group_commit"]
    assert info.sync_boundary == "group commit is the sanctioned stall"
    assert graph.functions["repro.service.shards.spill"].sync_boundary is None


def test_reachable_respects_blocked_functions():
    graph = _graph(MODS)
    everywhere = graph.reachable(["repro.service.server.drain"])
    assert "repro.core.allocator.TaskOrientedAllocator.observe" in everywhere
    fenced = graph.reachable(
        ["repro.service.server.drain"],
        blocked={"repro.service.shards.AllocationShard.commit"},
    )
    assert "repro.core.allocator.TaskOrientedAllocator.observe" not in fenced
    assert "repro.service.shards.group_commit" in fenced


# -- stability -------------------------------------------------------------------------


@given(st.permutations(MODS))
def test_signature_is_module_order_independent(ordering):
    assert _graph(ordering).signature() == _graph(MODS).signature()


@given(st.text(alphabet="abcdefghij", min_size=1, max_size=8))
def test_unrelated_module_never_removes_edges(stem):
    extra = (
        f"repro/extra_{stem}.py",
        f"def helper_{stem}():\n    return print('{stem}')\n",
    )
    base_rows = set(_graph(MODS).signature())
    grown_rows = set(_graph(MODS + [extra]).signature())
    assert base_rows <= grown_rows


def test_rebuilding_the_same_project_is_deterministic():
    assert _graph(MODS).signature() == _graph(MODS).signature()
