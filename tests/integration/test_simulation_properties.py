"""Property-based tests over whole simulations.

Hypothesis generates small random workflows and pool shapes; every run
must uphold the structural invariants regardless of algorithm:

* every task completes, exactly once, with a successful final attempt;
* the accounting identity (allocation = consumption + fragmentation +
  failed) holds per resource;
* AWE lands in (0, 1];
* each task's allocation sequence is componentwise non-decreasing
  across exhaustion retries;
* the run is deterministic given its seeds.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.allocator import AllocatorConfig, ExploratoryConfig
from repro.core.resources import CORES, DISK, MEMORY, ResourceVector
from repro.sim.manager import SimulationConfig, WorkflowManager
from repro.sim.pool import PoolConfig
from repro.sim.task import AttemptOutcome
from repro.workflows.spec import TaskSpec, WorkflowSpec

ALGORITHMS = (
    "max_seen",
    "min_waste",
    "quantized_bucketing",
    "greedy_bucketing",
    "exhaustive_bucketing",
)

task_strategy = st.tuples(
    st.floats(min_value=0.1, max_value=8.0),       # cores
    st.floats(min_value=10.0, max_value=15000.0),  # memory
    st.floats(min_value=1.0, max_value=15000.0),   # disk
    st.floats(min_value=1.0, max_value=300.0),     # duration
)

workflow_strategy = st.lists(task_strategy, min_size=3, max_size=25)


def build_workflow(raw_tasks):
    tasks = [
        TaskSpec(
            task_id=i,
            category="fuzz",
            consumption=ResourceVector.of(cores=c, memory=m, disk=d),
            duration=t,
        )
        for i, (c, m, d, t) in enumerate(raw_tasks)
    ]
    return WorkflowSpec("fuzz", tasks)


def run_simulation(raw_tasks, algorithm, seed=0, min_records=3):
    manager = WorkflowManager(
        build_workflow(raw_tasks),
        SimulationConfig(
            allocator=AllocatorConfig(
                algorithm=algorithm,
                seed=seed,
                exploratory=ExploratoryConfig(min_records=min_records),
            ),
            pool=PoolConfig(
                n_workers=2,
                capacity=ResourceVector.of(cores=16, memory=32000, disk=32000),
                seed=seed,
            ),
        ),
    )
    result = manager.run()
    return manager, result


@settings(max_examples=15, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(workflow_strategy, st.sampled_from(ALGORITHMS))
def test_every_task_completes_and_identity_holds(raw_tasks, algorithm):
    manager, result = run_simulation(raw_tasks, algorithm)
    assert result.ledger.n_tasks == len(raw_tasks)
    assert result.ledger.identity_holds()
    for task in manager._tasks.values():
        assert task.attempts[-1].outcome is AttemptOutcome.SUCCESS
        assert sum(
            1 for a in task.attempts if a.outcome is AttemptOutcome.SUCCESS
        ) == 1


@settings(max_examples=15, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(workflow_strategy, st.sampled_from(ALGORITHMS))
def test_awe_in_unit_interval(raw_tasks, algorithm):
    _, result = run_simulation(raw_tasks, algorithm)
    for res in (CORES, MEMORY, DISK):
        awe = result.ledger.awe(res)
        assert 0.0 < awe <= 1.0 + 1e-9


@settings(max_examples=15, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(workflow_strategy, st.sampled_from(ALGORITHMS))
def test_retry_allocations_never_shrink(raw_tasks, algorithm):
    manager, _ = run_simulation(raw_tasks, algorithm)
    for task in manager._tasks.values():
        for prev, cur in zip(task.attempts, task.attempts[1:]):
            for res in (CORES, MEMORY, DISK):
                assert cur.allocation[res] >= prev.allocation[res] - 1e-9


@settings(max_examples=8, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(workflow_strategy)
def test_runs_are_deterministic(raw_tasks):
    _, a = run_simulation(raw_tasks, "exhaustive_bucketing", seed=11)
    _, b = run_simulation(raw_tasks, "exhaustive_bucketing", seed=11)
    assert a.n_attempts == b.n_attempts
    assert a.makespan == b.makespan
    for res in (CORES, MEMORY, DISK):
        assert a.ledger.awe(res) == b.ledger.awe(res)


@settings(max_examples=8, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(workflow_strategy)
def test_exhausted_attempts_observed_at_most_allocation(raw_tasks):
    """The monitor can never report more consumption than the limit it
    enforced (for the exhausted resources)."""
    manager, _ = run_simulation(raw_tasks, "greedy_bucketing")
    for task in manager._tasks.values():
        for attempt in task.attempts:
            if attempt.outcome is AttemptOutcome.EXHAUSTED:
                for res in attempt.exhausted:
                    assert attempt.observed[res] <= attempt.allocation[res] + 1e-9
