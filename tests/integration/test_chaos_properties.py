"""Chaos property tests: random fault schedules x random workflows.

Hypothesis draws a workflow, an allocation algorithm and a fault
configuration (preemptions, mid-task kills, dispatch failures,
degradation — in any combination); regardless of the draw:

* the simulation terminates (no fault schedule can livelock the event
  loop — per-task fault caps and the survivor floor guarantee forward
  progress);
* the always-on :class:`InvariantChecker` stays silent — conservation
  laws hold under adversity, not just on the happy path;
* when at least one fault-free worker remains (``min_survivors >= 1``,
  which every drawn config respects), every task completes exactly
  once;
* the run replays bit-identically from its seeds.

The fast suite runs a trimmed example budget in CI; ``-m slow`` unlocks
the wide sweep across all seven paper algorithms.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.allocator import AllocatorConfig, ExploratoryConfig
from repro.core.resources import CORES, DISK, MEMORY, ResourceVector
from repro.experiments.config import PAPER_ALGORITHMS
from repro.sim.faults import (
    DegradationConfig,
    DispatchFaultConfig,
    FaultConfig,
    FixedPreemptions,
    PoissonPreemptions,
    TaskKillConfig,
)
from repro.sim.manager import SimulationConfig, WorkflowManager
from repro.sim.pool import PoolConfig
from repro.sim.task import AttemptOutcome
from repro.sim.trace import TraceRecorder
from repro.workflows.spec import TaskSpec, WorkflowSpec

task_strategy = st.tuples(
    st.floats(min_value=0.1, max_value=8.0),       # cores
    st.floats(min_value=10.0, max_value=15000.0),  # memory
    st.floats(min_value=1.0, max_value=15000.0),   # disk
    st.floats(min_value=1.0, max_value=200.0),     # duration
)

workflow_strategy = st.lists(task_strategy, min_size=3, max_size=15)

preemption_strategy = st.one_of(
    st.none(),
    st.lists(
        st.floats(min_value=1.0, max_value=500.0), min_size=1, max_size=4
    ).map(lambda ts: FixedPreemptions(times=tuple(sorted(ts)))),
    st.floats(min_value=1 / 400.0, max_value=1 / 40.0).map(
        lambda r: PoissonPreemptions(rate=r, until=2000.0)
    ),
)

kills_strategy = st.one_of(
    st.none(),
    st.floats(min_value=1 / 300.0, max_value=1 / 30.0).map(
        lambda r: TaskKillConfig(rate=r, until=2000.0, max_kills_per_task=3)
    ),
)

dispatch_strategy = st.one_of(
    st.none(),
    st.floats(min_value=0.05, max_value=0.4).map(
        lambda p: DispatchFaultConfig(probability=p, backoff=2.0, max_faults_per_task=4)
    ),
)

degradation_strategy = st.one_of(
    st.none(),
    st.floats(min_value=1 / 500.0, max_value=1 / 100.0).map(
        lambda r: DegradationConfig(rate=r, factor=0.6, floor_fraction=0.4, until=2000.0)
    ),
)

fault_strategy = st.builds(
    FaultConfig,
    preemption=preemption_strategy,
    kills=kills_strategy,
    dispatch=dispatch_strategy,
    degradation=degradation_strategy,
    seed=st.integers(min_value=0, max_value=2**16),
    min_survivors=st.integers(min_value=1, max_value=2),
)


def build_workflow(raw_tasks):
    tasks = [
        TaskSpec(
            task_id=i,
            category="fuzz",
            consumption=ResourceVector.of(cores=c, memory=m, disk=d),
            duration=t,
        )
        for i, (c, m, d, t) in enumerate(raw_tasks)
    ]
    return WorkflowSpec("chaos", tasks)


def run_chaos(raw_tasks, algorithm, faults, seed=0):
    manager = WorkflowManager(
        build_workflow(raw_tasks),
        SimulationConfig(
            allocator=AllocatorConfig(
                algorithm=algorithm,
                seed=seed,
                exploratory=ExploratoryConfig(min_records=3),
            ),
            pool=PoolConfig(
                n_workers=3,
                capacity=ResourceVector.of(cores=16, memory=32000, disk=32000),
                seed=seed,
            ),
            faults=faults,
        ),
    )
    result = manager.run()
    return manager, result


@settings(max_examples=20, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(workflow_strategy, st.sampled_from(PAPER_ALGORITHMS), fault_strategy)
def test_chaos_terminates_and_completes_every_task(raw_tasks, algorithm, faults):
    """Invariants are audited continuously (checker is on by default);
    a violation would raise out of run()."""
    manager, result = run_chaos(raw_tasks, algorithm, faults)
    assert result.n_tasks == len(raw_tasks)
    assert manager.invariants.events_checked > 0
    for task in manager.tasks():
        assert task.attempts[-1].outcome is AttemptOutcome.SUCCESS
        assert (
            sum(1 for a in task.attempts if a.outcome is AttemptOutcome.SUCCESS) == 1
        )


@settings(max_examples=15, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(workflow_strategy, st.sampled_from(PAPER_ALGORITHMS), fault_strategy)
def test_chaos_preserves_accounting_identity_and_awe(raw_tasks, algorithm, faults):
    _, result = run_chaos(raw_tasks, algorithm, faults)
    assert result.ledger.identity_holds()
    for res in (CORES, MEMORY, DISK):
        awe = result.ledger.awe(res)
        assert 0.0 < awe <= 1.0 + 1e-9


@settings(max_examples=10, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(workflow_strategy, fault_strategy)
def test_chaos_replays_bit_identically(raw_tasks, faults):
    def trace_once():
        manager = WorkflowManager(
            build_workflow(raw_tasks),
            SimulationConfig(
                allocator=AllocatorConfig(
                    algorithm="quantized_bucketing",
                    seed=3,
                    exploratory=ExploratoryConfig(min_records=3),
                ),
                pool=PoolConfig(
                    n_workers=3,
                    capacity=ResourceVector.of(cores=16, memory=32000, disk=32000),
                    seed=3,
                ),
                faults=faults,
            ),
        )
        recorder = TraceRecorder(manager)
        manager.run()
        return recorder.text()

    assert trace_once() == trace_once()


@settings(max_examples=10, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(workflow_strategy, fault_strategy)
def test_chaos_evictions_never_escalate_allocations(raw_tasks, faults):
    """Only exhaustion grows an allocation; eviction/kill retries keep
    the pinned one, so sequences stay componentwise non-decreasing."""
    manager, _ = run_chaos(raw_tasks, "max_seen", faults)
    for task in manager.tasks():
        for prev, cur in zip(task.attempts, task.attempts[1:]):
            for res in (CORES, MEMORY, DISK):
                assert cur.allocation[res] >= prev.allocation[res] - 1e-9
            if prev.outcome is AttemptOutcome.EVICTED:
                assert cur.allocation == prev.allocation


@pytest.mark.slow
@settings(max_examples=60, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(workflow_strategy, st.sampled_from(PAPER_ALGORITHMS), fault_strategy)
def test_chaos_wide_sweep(raw_tasks, algorithm, faults):
    """The slow, wide version of the termination/invariant sweep."""
    manager, result = run_chaos(raw_tasks, algorithm, faults)
    assert result.n_tasks == len(raw_tasks)
    assert result.ledger.identity_holds()
    for task in manager.tasks():
        assert task.attempts[-1].outcome is AttemptOutcome.SUCCESS
