"""Integration: extending the allocator to new resource kinds.

The paper lists "an extension to additional resource types" as future
work; the resource registry makes it a configuration change.  These
tests run a GPU-consuming workflow end to end with GPUs managed as a
fourth dimension.
"""

import pytest

from repro.core.allocator import AllocatorConfig
from repro.core.resources import CORES, DISK, MEMORY, RESOURCES, ResourceVector
from repro.sim.manager import SimulationConfig, WorkflowManager
from repro.sim.pool import PoolConfig
from repro.workflows.spec import TaskSpec, WorkflowSpec

GPUS = RESOURCES.register("gpus", unit="devices")


def gpu_workflow(n=40):
    tasks = []
    for i in range(n):
        # Alternate between inference tasks (1 GPU) and heavy training
        # tasks (2 GPUs), plus standard CPU-side consumption.
        gpus = 1.0 if i % 3 else 2.0
        tasks.append(
            TaskSpec(
                task_id=i,
                category="train" if gpus == 2.0 else "infer",
                consumption=ResourceVector(
                    {CORES: 2.0, MEMORY: 4000.0, DISK: 500.0, GPUS: gpus}
                ),
                duration=30.0,
            )
        )
    return WorkflowSpec("gpu_jobs", tasks)


def gpu_pool():
    return PoolConfig(
        n_workers=3,
        capacity=ResourceVector({CORES: 16, MEMORY: 64000, DISK: 64000, GPUS: 4}),
    )


class TestGpuExtension:
    @pytest.fixture(scope="class")
    def result_and_manager(self):
        manager = WorkflowManager(
            gpu_workflow(),
            SimulationConfig(
                allocator=AllocatorConfig(
                    algorithm="exhaustive_bucketing",
                    resources=(CORES, MEMORY, DISK, GPUS),
                    seed=3,
                ),
                pool=gpu_pool(),
            ),
        )
        return manager.run(), manager

    def test_workflow_completes(self, result_and_manager):
        result, _ = result_and_manager
        assert result.ledger.n_tasks == 40
        assert result.ledger.identity_holds()

    def test_gpu_awe_reported(self, result_and_manager):
        result, _ = result_and_manager
        assert 0 < result.ledger.awe(GPUS) <= 1.0

    def test_gpu_exploration_uses_capacity(self, result_and_manager):
        """The conservative bootstrap has no GPU component, so the
        allocator explores with a full worker's GPU capacity."""
        _, manager = result_and_manager
        first = manager._tasks[0].attempts[0]
        assert first.allocation[GPUS] == 4.0

    def test_gpu_predictions_converge_per_category(self, result_and_manager):
        """After exploration the per-category states learn 1 vs 2 GPUs."""
        _, manager = result_and_manager
        infer = manager.allocator.algorithm("infer", GPUS)
        train = manager.allocator.algorithm("train", GPUS)
        assert max(b.rep for b in infer.state.buckets) == pytest.approx(1.0)
        assert max(b.rep for b in train.state.buckets) == pytest.approx(2.0)

    def test_gpu_capacity_constrains_packing(self):
        """Only 4 GPUs per worker: at most 4 one-GPU tasks fit even
        though cores/memory would allow more."""
        from repro.sim.worker import Worker

        worker = Worker(0, ResourceVector({CORES: 16, MEMORY: 64000, DISK: 64000, GPUS: 4}))
        alloc = ResourceVector({CORES: 1, MEMORY: 1000, DISK: 100, GPUS: 1})
        for i in range(4):
            assert worker.can_fit(alloc)
            worker.place(i, alloc)
        assert not worker.can_fit(alloc)

    def test_gpu_less_worker_rejects_gpu_tasks(self):
        from repro.sim.worker import Worker

        worker = Worker(0, ResourceVector.of(cores=16, memory=64000, disk=64000))
        assert not worker.can_fit(ResourceVector({GPUS: 1.0}))
