"""Integration: the paper's qualitative claims on a reduced grid.

These run real simulations (hundreds of tasks), so they are the slow
end of the suite; sizes are chosen to keep the whole file around a
minute while preserving enough signal for the shape assertions.
"""

import pytest

from repro.core.resources import DISK, MEMORY
from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import run_cell, run_grid

CONFIG = ExperimentConfig(n_tasks=400, n_workers=8, ramp_up_seconds=240.0)


@pytest.fixture(scope="module")
def normal_grid():
    return run_grid(
        workflows=("normal",),
        algorithms=(
            "whole_machine",
            "max_seen",
            "min_waste",
            "quantized_bucketing",
            "greedy_bucketing",
            "exhaustive_bucketing",
        ),
        config=CONFIG,
    )


class TestFigure5Shapes:
    def test_whole_machine_is_worst_on_normal(self, normal_grid):
        for resource in ("memory", "disk"):
            wm = normal_grid.awe("normal", "whole_machine", resource)
            for algo in normal_grid.algorithms:
                assert wm <= normal_grid.awe("normal", algo, resource) + 1e-9

    def test_bucketing_beats_max_seen_on_normal_memory(self, normal_grid):
        ms = normal_grid.awe("normal", "max_seen", "memory")
        assert normal_grid.awe("normal", "greedy_bucketing", "memory") > ms
        assert normal_grid.awe("normal", "exhaustive_bucketing", "memory") > ms

    def test_normal_efficiency_band(self, normal_grid):
        """Paper: bucketing reaches 60-80 % on Normal."""
        for algo in ("greedy_bucketing", "exhaustive_bucketing"):
            awe = normal_grid.awe("normal", algo, "memory")
            assert 0.5 < awe < 0.9

    def test_exponential_is_hardest_for_bucketing(self):
        exp = run_cell("exponential", "exhaustive_bucketing", CONFIG)
        norm = run_cell("normal", "exhaustive_bucketing", CONFIG)
        assert exp.ledger.awe(MEMORY) < norm.ledger.awe(MEMORY)

    def test_whole_machine_single_digit_on_exponential(self):
        result = run_cell("exponential", "whole_machine", CONFIG)
        assert result.ledger.awe(MEMORY) < 0.15

    def test_topeft_disk_near_perfect_for_bucketing(self):
        """Constant 306 MB disk: bucketing's rep equals it exactly;
        Max Seen is capped by the 250-granularity rounding (~61 %)."""
        config = CONFIG.with_(n_tasks=300)
        eb = run_cell("topeft", "exhaustive_bucketing", config)
        ms = run_cell("topeft", "max_seen", config)
        assert eb.ledger.awe(DISK) > 0.85
        assert ms.ledger.awe(DISK) < eb.ledger.awe(DISK)
        # 306/500 = 0.612 is Max Seen's ceiling on this workflow.
        assert ms.ledger.awe(DISK) < 0.65

    def test_colmena_disk_poor_for_everyone(self):
        """~10 MB consumption against a 1 GB exploratory floor and
        outlier-dominated reps: low AWE across algorithms."""
        config = CONFIG.with_(n_tasks=300)
        for algo in ("exhaustive_bucketing", "max_seen"):
            result = run_cell("colmena_xtb", algo, config)
            assert result.ledger.awe(DISK) < 0.45


class TestFigure6Shapes:
    def test_max_seen_waste_is_fragmentation(self, normal_grid):
        waste = normal_grid.cells["normal", "max_seen"].ledger.waste(MEMORY)
        assert waste.fraction_failed() < 0.1

    def test_quantized_carries_failed_share(self, normal_grid):
        quantized = normal_grid.cells["normal", "quantized_bucketing"].ledger.waste(MEMORY)
        max_seen = normal_grid.cells["normal", "max_seen"].ledger.waste(MEMORY)
        assert quantized.fraction_failed() > max_seen.fraction_failed()

    def test_bucketing_failed_share_modest(self, normal_grid):
        """Paper: GB/EB 'penalize the under-allocation closely to Max
        Seen' — their failed share stays well below half."""
        for algo in ("greedy_bucketing", "exhaustive_bucketing"):
            waste = normal_grid.cells["normal", algo].ledger.waste(MEMORY)
            assert waste.fraction_failed() < 0.5


class TestAccountingConsistency:
    def test_identity_on_every_cell(self, normal_grid):
        for result in normal_grid.cells.values():
            assert result.ledger.identity_holds()

    def test_all_tasks_complete_everywhere(self, normal_grid):
        for result in normal_grid.cells.values():
            assert result.ledger.n_tasks == result.n_tasks
