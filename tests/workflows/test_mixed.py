"""Tests for the mixed multi-category workload and category isolation."""

import numpy as np
import pytest

from repro.core.resources import MEMORY, PAPER_WORKER_CAPACITY
from repro.workflows.synthetic import make_mixed_workflow


class TestMixedWorkflow:
    def test_default_categories(self):
        wf = make_mixed_workflow(n_tasks=90, seed=0)
        assert set(wf.categories()) == {
            "mixed_normal",
            "mixed_exponential",
            "mixed_bimodal",
        }
        assert len(wf) == 90

    def test_round_robin_interleaving(self):
        wf = make_mixed_workflow(n_tasks=30, seed=0)
        categories = [t.category for t in wf]
        # Every window of 3 consecutive tasks covers all 3 categories.
        for i in range(0, 30, 3):
            assert len(set(categories[i : i + 3])) == 3

    def test_uneven_split_covered(self):
        wf = make_mixed_workflow(n_tasks=31, seed=0)
        assert len(wf) == 31

    def test_constituent_distributions_preserved(self):
        wf = make_mixed_workflow(n_tasks=1500, seed=0)
        normal_mem = np.array(
            [t.consumption[MEMORY] for t in wf.tasks_of("mixed_normal")]
        )
        exp_mem = np.array(
            [t.consumption[MEMORY] for t in wf.tasks_of("mixed_exponential")]
        )
        assert 7400 < normal_mem.mean() < 8600
        assert exp_mem.mean() > np.median(exp_mem) * 1.2  # right skew

    def test_fits_paper_worker(self):
        make_mixed_workflow(n_tasks=300, seed=1).validate_fits(PAPER_WORKER_CAPACITY)

    def test_custom_categories(self):
        wf = make_mixed_workflow(n_tasks=40, seed=0, categories=("normal", "uniform"))
        assert set(wf.categories()) == {"mixed_normal", "mixed_uniform"}

    def test_validation(self):
        with pytest.raises(KeyError):
            make_mixed_workflow(categories=("normal", "pareto"))
        with pytest.raises(ValueError):
            make_mixed_workflow(n_tasks=2, categories=("normal", "uniform", "bimodal"))

    def test_deterministic(self):
        a = make_mixed_workflow(n_tasks=60, seed=5)
        b = make_mixed_workflow(n_tasks=60, seed=5)
        assert all(x.consumption == y.consumption for x, y in zip(a, b))


class TestCategoryIsolation:
    def test_allocator_states_do_not_bleed(self):
        """Run the mix end to end: each category's learned memory state
        must reflect its own distribution, not the pooled one."""
        from repro.experiments.config import ExperimentConfig
        from repro.experiments.runner import run_cell

        wf = make_mixed_workflow(n_tasks=450, seed=2)
        config = ExperimentConfig(n_tasks=450, n_workers=8, ramp_up_seconds=120.0)
        from repro.sim.manager import WorkflowManager

        manager = WorkflowManager(wf, config.simulation_config("exhaustive_bucketing"))
        result = manager.run()
        assert result.ledger.n_tasks == 450

        normal_state = manager.allocator.algorithm("mixed_normal", MEMORY).state
        bimodal_state = manager.allocator.algorithm("mixed_bimodal", MEMORY).state
        # The normal category's top rep sits near its own max (~14 GB),
        # and the bimodal category covers its high mode (~12 GB+).
        assert 10_000 < max(b.rep for b in normal_state.buckets) < 18_000
        assert max(b.rep for b in bimodal_state.buckets) > 10_000
        # Low bimodal mode visible as a bucket below 8 GB.
        assert min(b.rep for b in bimodal_state.buckets) < 8_000
