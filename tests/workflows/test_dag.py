"""Tests for the dynamic DAG builder."""

import pytest

from repro.core.resources import ResourceVector
from repro.workflows.dag import DynamicDAG


def consumption():
    return ResourceVector.of(cores=1, memory=100, disk=10)


class TestDynamicDAG:
    def test_ids_assigned_densely(self):
        dag = DynamicDAG()
        ids = [dag.add_task("a", consumption(), 1.0) for _ in range(3)]
        assert ids == [0, 1, 2]
        assert len(dag) == 3

    def test_dependencies_must_point_backwards(self):
        dag = DynamicDAG()
        dag.add_task("a", consumption(), 1.0)
        with pytest.raises(ValueError):
            dag.add_task("b", consumption(), 1.0, dependencies=[5])

    def test_parents_and_children(self):
        dag = DynamicDAG()
        a = dag.add_task("map", consumption(), 1.0)
        b = dag.add_task("map", consumption(), 1.0)
        c = dag.add_task("reduce", consumption(), 1.0, dependencies=[a, b])
        assert dag.parents_of(c) == (a, b)
        assert dag.children_of(a) == (c,)

    def test_levels(self):
        dag = DynamicDAG()
        a = dag.add_task("x", consumption(), 1.0)
        b = dag.add_task("x", consumption(), 1.0, dependencies=[a])
        c = dag.add_task("x", consumption(), 1.0, dependencies=[b])
        d = dag.add_task("x", consumption(), 1.0)
        levels = dag.levels()
        assert levels == {a: 0, b: 1, c: 2, d: 0}
        assert dag.level_of(c) == 2

    def test_critical_path(self):
        dag = DynamicDAG()
        a = dag.add_task("x", consumption(), 10.0)
        b = dag.add_task("x", consumption(), 20.0, dependencies=[a])
        dag.add_task("x", consumption(), 5.0)
        assert dag.critical_path_length() == pytest.approx(30.0)

    def test_duplicate_dependencies_deduped(self):
        dag = DynamicDAG()
        a = dag.add_task("x", consumption(), 1.0)
        b = dag.add_task("x", consumption(), 1.0, dependencies=[a, a, a])
        assert dag.parents_of(b) == (a,)

    def test_to_workflow_runs_in_simulator(self):
        from repro.core.allocator import AllocatorConfig
        from repro.sim.manager import SimulationConfig, WorkflowManager
        from repro.sim.pool import PoolConfig

        dag = DynamicDAG()
        maps = [dag.add_task("map", consumption(), 5.0) for _ in range(4)]
        dag.add_task("reduce", consumption(), 10.0, dependencies=maps)
        workflow = dag.to_workflow("mapreduce")
        manager = WorkflowManager(
            workflow,
            SimulationConfig(
                allocator=AllocatorConfig(algorithm="max_seen", seed=0),
                pool=PoolConfig(
                    n_workers=2,
                    capacity=ResourceVector.of(cores=4, memory=4000, disk=4000),
                ),
            ),
        )
        result = manager.run()
        assert result.ledger.n_tasks == 5

    def test_empty_dag_to_workflow_rejected(self):
        with pytest.raises(ValueError):
            DynamicDAG().to_workflow("empty")
