"""Tests for the five synthetic workflow generators."""

import numpy as np
import pytest

from repro.core.resources import CORES, DISK, MEMORY, PAPER_WORKER_CAPACITY
from repro.workflows.synthetic import (
    SYNTHETIC_WORKFLOWS,
    bimodal_workflow,
    exponential_workflow,
    make_synthetic_workflow,
    normal_workflow,
    trimodal_workflow,
    uniform_workflow,
)


def memory_of(wf):
    return np.array([t.consumption[MEMORY] for t in wf])


class TestGenerators:
    @pytest.mark.parametrize("name", SYNTHETIC_WORKFLOWS)
    def test_default_size_and_single_category(self, name):
        wf = make_synthetic_workflow(name, n_tasks=200, seed=0)
        assert len(wf) == 200
        assert len(wf.categories()) == 1  # paper: one category, worst case

    @pytest.mark.parametrize("name", SYNTHETIC_WORKFLOWS)
    def test_deterministic_given_seed(self, name):
        a = make_synthetic_workflow(name, n_tasks=50, seed=7)
        b = make_synthetic_workflow(name, n_tasks=50, seed=7)
        assert all(
            x.consumption == y.consumption and x.duration == y.duration
            for x, y in zip(a, b)
        )

    @pytest.mark.parametrize("name", SYNTHETIC_WORKFLOWS)
    def test_seed_changes_stream(self, name):
        a = make_synthetic_workflow(name, n_tasks=50, seed=1)
        b = make_synthetic_workflow(name, n_tasks=50, seed=2)
        assert any(x.consumption != y.consumption for x, y in zip(a, b))

    @pytest.mark.parametrize("name", SYNTHETIC_WORKFLOWS)
    def test_every_task_fits_paper_worker(self, name):
        wf = make_synthetic_workflow(name, n_tasks=500, seed=3)
        wf.validate_fits(PAPER_WORKER_CAPACITY)

    def test_unknown_name_rejected(self):
        with pytest.raises(KeyError):
            make_synthetic_workflow("gaussian")

    def test_invalid_n_tasks(self):
        with pytest.raises(ValueError):
            make_synthetic_workflow("normal", n_tasks=0)


class TestDistributionShapes:
    def test_normal_centred_at_8gb(self):
        memory = memory_of(normal_workflow(n_tasks=2000, seed=0))
        assert 7500 < memory.mean() < 8500
        assert 1500 < memory.std() < 2500

    def test_uniform_bounds(self):
        memory = memory_of(uniform_workflow(n_tasks=2000, seed=0))
        assert memory.min() >= 2000 and memory.max() <= 14000
        # Roughly flat: quartiles evenly spaced.
        q1, q3 = np.percentile(memory, [25, 75])
        assert 4500 < q1 < 5500 and 10500 < q3 < 11500

    def test_exponential_heavy_tail(self):
        memory = memory_of(exponential_workflow(n_tasks=2000, seed=0))
        # Mean well above median = right skew.
        assert memory.mean() > np.median(memory) * 1.3
        assert memory.max() > 5 * np.median(memory)

    def test_bimodal_two_clusters(self):
        memory = memory_of(bimodal_workflow(n_tasks=2000, seed=0))
        low = memory[memory < 8000]
        high = memory[memory >= 8000]
        assert 0.4 < len(low) / len(memory) < 0.6
        assert 3500 < low.mean() < 4500
        assert 11000 < high.mean() < 13000

    def test_trimodal_phases_move_and_descend(self):
        wf = trimodal_workflow(n_tasks=900, seed=0)
        memory = memory_of(wf)
        p1, p2, p3 = memory[:300].mean(), memory[300:600].mean(), memory[600:].mean()
        # (mid, high, low): non-monotone by design.
        assert p2 > p1 > p3
        assert abs(p1 - 8000) < 500
        assert abs(p2 - 13000) < 500
        assert abs(p3 - 3000) < 500

    def test_disk_same_family_as_memory(self):
        wf = normal_workflow(n_tasks=2000, seed=0)
        disk = np.array([t.consumption[DISK] for t in wf])
        assert 7500 < disk.mean() < 8500

    def test_cores_scaled_down(self):
        wf = normal_workflow(n_tasks=2000, seed=0)
        cores = np.array([t.consumption[CORES] for t in wf])
        assert 3.5 < cores.mean() < 4.5
        assert cores.max() <= 16

    def test_durations_positive_and_bounded(self):
        wf = normal_workflow(n_tasks=500, seed=0)
        durations = np.array([t.duration for t in wf])
        assert (durations >= 5.0).all() and (durations <= 600.0).all()
