"""Tests for TaskSpec / WorkflowSpec."""

import pytest

from repro.core.resources import CORES, MEMORY, ResourceVector
from repro.workflows.spec import TaskSpec, WorkflowSpec


def consumption(memory=500.0):
    return ResourceVector.of(cores=1, memory=memory, disk=100)


class TestTaskSpec:
    def test_valid_spec(self):
        spec = TaskSpec(0, "proc", consumption(), 60.0)
        assert spec.dependencies == ()

    def test_negative_id_rejected(self):
        with pytest.raises(ValueError):
            TaskSpec(-1, "proc", consumption(), 60.0)

    def test_nonpositive_duration_rejected(self):
        with pytest.raises(ValueError):
            TaskSpec(0, "proc", consumption(), 0.0)

    def test_empty_category_rejected(self):
        with pytest.raises(ValueError):
            TaskSpec(0, "", consumption(), 60.0)

    def test_self_dependency_rejected(self):
        with pytest.raises(ValueError):
            TaskSpec(1, "proc", consumption(), 60.0, dependencies=(1,))


class TestWorkflowSpec:
    def test_dense_ids_required(self):
        tasks = [TaskSpec(0, "a", consumption(), 1.0), TaskSpec(2, "a", consumption(), 1.0)]
        with pytest.raises(ValueError, match="dense"):
            WorkflowSpec("w", tasks)

    def test_forward_dependencies_rejected(self):
        tasks = [
            TaskSpec(0, "a", consumption(), 1.0, dependencies=()),
            TaskSpec(1, "a", consumption(), 1.0, dependencies=(2,)),
            TaskSpec(2, "a", consumption(), 1.0, dependencies=()),
        ]
        with pytest.raises(ValueError, match="earlier task"):
            WorkflowSpec("w", tasks)

    def test_empty_workflow_rejected(self):
        with pytest.raises(ValueError):
            WorkflowSpec("w", [])

    def test_categories_in_first_appearance_order(self):
        tasks = [
            TaskSpec(0, "b", consumption(), 1.0),
            TaskSpec(1, "a", consumption(), 1.0),
            TaskSpec(2, "b", consumption(), 1.0),
        ]
        wf = WorkflowSpec("w", tasks)
        assert wf.categories() == ("b", "a")
        assert len(wf.tasks_of("b")) == 2

    def test_max_consumption(self):
        tasks = [
            TaskSpec(0, "a", ResourceVector.of(cores=2, memory=100, disk=1), 1.0),
            TaskSpec(1, "a", ResourceVector.of(cores=1, memory=900, disk=1), 1.0),
        ]
        wf = WorkflowSpec("w", tasks)
        peak = wf.max_consumption()
        assert peak[CORES] == 2 and peak[MEMORY] == 900

    def test_total_consumption(self):
        tasks = [
            TaskSpec(0, "a", consumption(memory=100), 10.0),
            TaskSpec(1, "a", consumption(memory=200), 5.0),
        ]
        wf = WorkflowSpec("w", tasks)
        assert wf.total_consumption(MEMORY) == pytest.approx(100 * 10 + 200 * 5)

    def test_validate_fits(self):
        wf = WorkflowSpec("w", [TaskSpec(0, "a", consumption(memory=900), 1.0)])
        wf.validate_fits(ResourceVector.of(cores=4, memory=1000, disk=1000))
        with pytest.raises(ValueError, match="memory"):
            wf.validate_fits(ResourceVector.of(cores=4, memory=800, disk=1000))

    def test_container_protocol(self):
        wf = WorkflowSpec("w", [TaskSpec(0, "a", consumption(), 1.0)])
        assert len(wf) == 1
        assert wf[0].task_id == 0
        assert [t.category for t in wf] == ["a"]
