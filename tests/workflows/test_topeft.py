"""Tests for the TopEFT-shaped trace generator (Figure 2 claims)."""

import numpy as np
import pytest

from repro.core.resources import CORES, DISK, MEMORY, PAPER_WORKER_CAPACITY
from repro.workflows.topeft import (
    N_ACCUMULATING,
    N_PREPROCESSING,
    N_PROCESSING,
    TOPEFT_DISK_MB,
    make_topeft_workflow,
)


@pytest.fixture(scope="module")
def workflow():
    return make_topeft_workflow(seed=0)


class TestStructure:
    def test_paper_task_counts(self, workflow):
        assert len(workflow.tasks_of("preprocessing")) == N_PREPROCESSING == 363
        assert len(workflow.tasks_of("processing")) == N_PROCESSING == 3994
        assert len(workflow.tasks_of("accumulating")) == N_ACCUMULATING == 212
        assert len(workflow) == 4569

    def test_preprocessing_first(self, workflow):
        categories = [t.category for t in workflow]
        last_pre = max(i for i, c in enumerate(categories) if c == "preprocessing")
        assert last_pre == N_PREPROCESSING - 1

    def test_accumulating_interleaved_with_processing(self, workflow):
        """Accumulating tasks appear throughout the processing stream,
        not as a trailing block (Coffea merges as results arrive)."""
        categories = [t.category for t in workflow]
        acc_positions = [i for i, c in enumerate(categories) if c == "accumulating"]
        n = len(categories)
        assert min(acc_positions) < n * 0.3
        assert max(acc_positions) > n * 0.8

    def test_deterministic(self):
        a = make_topeft_workflow(seed=4)
        b = make_topeft_workflow(seed=4)
        assert all(x.consumption == y.consumption for x, y in zip(a, b))

    def test_fits_paper_worker(self, workflow):
        workflow.validate_fits(PAPER_WORKER_CAPACITY)


class TestFigure2Marginals:
    def test_disk_constant_306(self, workflow):
        """Section V-C: every TopEFT task consumes exactly 306 MB disk."""
        assert all(t.consumption[DISK] == TOPEFT_DISK_MB == 306.0 for t in workflow)

    def test_pre_and_accumulating_memory_indistinguishable(self, workflow):
        """~180 MB for both despite different roles — the case against
        assuming cross-category correlation (Section III-B)."""
        pre = np.mean([t.consumption[MEMORY] for t in workflow.tasks_of("preprocessing")])
        acc = np.mean([t.consumption[MEMORY] for t in workflow.tasks_of("accumulating")])
        assert abs(pre - 180) < 15 and abs(acc - 180) < 15

    def test_processing_memory_two_clusters(self, workflow):
        memory = np.array([t.consumption[MEMORY] for t in workflow.tasks_of("processing")])
        low = memory[memory < 510]
        high = memory[memory >= 510]
        assert abs(low.mean() - 450) < 25
        assert abs(high.mean() - 580) < 25
        assert 0.5 < len(high) / len(memory) < 0.7

    def test_cores_mostly_below_one_with_outliers(self, workflow):
        cores = np.array([t.consumption[CORES] for t in workflow])
        assert np.mean(cores <= 1.0) > 0.9
        assert cores.max() > 1.5          # outliers exist
        assert cores.max() <= 3.0         # up to three cores (Figure 2)

    def test_outlier_fraction_small(self, workflow):
        cores = np.array([t.consumption[CORES] for t in workflow])
        assert 0.01 < np.mean(cores > 1.2) < 0.10
