"""Tests for the ColmenaXTB-shaped trace generator (Figure 2 claims)."""

import numpy as np
import pytest

from repro.core.resources import CORES, DISK, MEMORY, PAPER_WORKER_CAPACITY
from repro.workflows.colmena import (
    N_COMPUTE_ENERGY,
    N_EVALUATE_MPNN,
    make_colmena_workflow,
)


@pytest.fixture(scope="module")
def workflow():
    return make_colmena_workflow(seed=0)


class TestStructure:
    def test_paper_task_counts(self, workflow):
        assert len(workflow.tasks_of("evaluate_mpnn")) == N_EVALUATE_MPNN == 228
        assert len(workflow.tasks_of("compute_atomization_energy")) == N_COMPUTE_ENERGY == 1000
        assert len(workflow) == 1228

    def test_strict_phase_ordering(self, workflow):
        """All evaluate_mpnn tasks are submitted before any energy task."""
        categories = [t.category for t in workflow]
        first_energy = categories.index("compute_atomization_energy")
        assert all(c == "evaluate_mpnn" for c in categories[:first_energy])
        assert all(c == "compute_atomization_energy" for c in categories[first_energy:])

    def test_deterministic(self):
        a = make_colmena_workflow(seed=5)
        b = make_colmena_workflow(seed=5)
        assert all(x.consumption == y.consumption for x, y in zip(a, b))

    def test_scale(self):
        wf = make_colmena_workflow(seed=0, scale=0.1)
        assert len(wf) == pytest.approx(123, abs=2)
        with pytest.raises(ValueError):
            make_colmena_workflow(scale=0)

    def test_fits_paper_worker(self, workflow):
        workflow.validate_fits(PAPER_WORKER_CAPACITY)


class TestFigure2Marginals:
    def test_mpnn_memory_band(self, workflow):
        """Figure 2: evaluate_mpnn uses 1 GB to 1.2 GB of memory."""
        memory = [t.consumption[MEMORY] for t in workflow.tasks_of("evaluate_mpnn")]
        assert min(memory) >= 1000 and max(memory) <= 1200

    def test_energy_memory_around_200mb(self, workflow):
        memory = np.array(
            [t.consumption[MEMORY] for t in workflow.tasks_of("compute_atomization_energy")]
        )
        assert 180 < memory.mean() < 220

    def test_energy_cores_scattered(self, workflow):
        """Figure 2: energy cores range from 0.9 to 3.6 — inherent
        stochasticity within one category."""
        cores = np.array(
            [t.consumption[CORES] for t in workflow.tasks_of("compute_atomization_energy")]
        )
        assert cores.min() >= 0.9 and cores.max() <= 3.6
        assert cores.max() - cores.min() > 2.0

    def test_disk_tiny_everywhere(self, workflow):
        """~10 MB disk vs the 1 GB exploratory floor: the cause of the
        single-digit disk AWE the paper reports for this workflow."""
        disk = np.array([t.consumption[DISK] for t in workflow])
        assert np.median(disk) < 20
        assert disk.max() <= 100

    def test_category_memory_separation(self, workflow):
        """The two categories are clearly distinct in memory — the
        argument for per-category allocator state."""
        mpnn = np.mean([t.consumption[MEMORY] for t in workflow.tasks_of("evaluate_mpnn")])
        energy = np.mean(
            [t.consumption[MEMORY] for t in workflow.tasks_of("compute_atomization_energy")]
        )
        assert mpnn > 4 * energy
