"""Property-based round-trip tests for trace serialization."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.resources import ResourceVector
from repro.workflows.spec import TaskSpec, WorkflowSpec
from repro.workflows.traceio import workflow_from_dict, workflow_to_dict

task_tuples = st.lists(
    st.tuples(
        st.floats(min_value=0.1, max_value=64.0, allow_nan=False),       # cores
        st.floats(min_value=1.0, max_value=64000.0, allow_nan=False),    # memory
        st.floats(min_value=0.0, max_value=64000.0, allow_nan=False),    # disk
        st.floats(min_value=0.001, max_value=86400.0, allow_nan=False),  # duration
        st.text(alphabet="abcdefg_", min_size=1, max_size=8),            # category
    ),
    min_size=1,
    max_size=30,
)


def build(raw, rnd_deps):
    tasks = []
    for i, (c, m, d, t, cat) in enumerate(raw):
        deps = tuple(sorted({int(x) % i for x in rnd_deps[:2]})) if i and rnd_deps else ()
        tasks.append(
            TaskSpec(
                task_id=i,
                category=cat,
                consumption=ResourceVector.of(cores=c, memory=m, disk=d),
                duration=t,
                dependencies=deps,
            )
        )
    return WorkflowSpec("prop", tasks)


@settings(max_examples=50)
@given(task_tuples, st.lists(st.integers(min_value=0, max_value=100), max_size=3))
def test_round_trip_preserves_everything(raw, rnd_deps):
    original = build(raw, rnd_deps)
    restored = workflow_from_dict(workflow_to_dict(original))
    assert restored.name == original.name
    assert len(restored) == len(original)
    for a, b in zip(original, restored):
        assert a.task_id == b.task_id
        assert a.category == b.category
        assert a.duration == b.duration
        assert a.dependencies == b.dependencies
        assert a.consumption == b.consumption


@settings(max_examples=30)
@given(task_tuples)
def test_serialized_form_is_json_compatible(raw):
    import json

    original = build(raw, [])
    text = json.dumps(workflow_to_dict(original))
    restored = workflow_from_dict(json.loads(text))
    assert len(restored) == len(original)
