"""Tests for workflow trace serialization."""

import json

import pytest

from repro.core.resources import CORES, MEMORY, ResourceVector
from repro.workflows.spec import TaskSpec, WorkflowSpec
from repro.workflows.synthetic import make_synthetic_workflow
from repro.workflows.traceio import (
    SCHEMA_VERSION,
    export_attempts_csv,
    load_workflow,
    save_workflow,
    workflow_from_dict,
    workflow_from_records,
    workflow_to_dict,
)


def small_workflow():
    return WorkflowSpec(
        "small",
        [
            TaskSpec(0, "a", ResourceVector.of(cores=1, memory=100, disk=10), 30.0),
            TaskSpec(1, "b", ResourceVector.of(cores=2, memory=900, disk=20), 60.0,
                     dependencies=(0,)),
        ],
    )


class TestRoundTrip:
    def test_dict_round_trip(self):
        original = small_workflow()
        restored = workflow_from_dict(workflow_to_dict(original))
        assert restored.name == original.name
        assert len(restored) == len(original)
        for a, b in zip(original, restored):
            assert a.consumption == b.consumption
            assert a.duration == b.duration
            assert a.dependencies == b.dependencies
            assert a.category == b.category

    def test_file_round_trip(self, tmp_path):
        original = make_synthetic_workflow("bimodal", n_tasks=50, seed=9)
        path = tmp_path / "trace.json"
        save_workflow(original, path)
        restored = load_workflow(path)
        assert len(restored) == 50
        assert all(
            a.consumption == b.consumption for a, b in zip(original, restored)
        )

    def test_json_is_plain(self, tmp_path):
        path = tmp_path / "trace.json"
        save_workflow(small_workflow(), path)
        data = json.loads(path.read_text())
        assert data["schema"] == SCHEMA_VERSION
        assert data["tasks"][0]["consumption"]["memory"] == 100.0

    def test_unknown_schema_rejected(self):
        data = workflow_to_dict(small_workflow())
        data["schema"] = 99
        with pytest.raises(ValueError, match="schema"):
            workflow_from_dict(data)

    def test_missing_name_rejected(self):
        data = workflow_to_dict(small_workflow())
        del data["name"]
        with pytest.raises(ValueError, match="name"):
            workflow_from_dict(data)


class TestFromRecords:
    def test_basic_build(self):
        wf = workflow_from_records(
            "mine",
            [
                {"category": "fit", "duration": 120.0, "cores": 1, "memory": 900},
                {"category": "fit", "duration": 90.0, "cores": 1, "memory": 840,
                 "dependencies": [0]},
            ],
        )
        assert len(wf) == 2
        assert wf[1].dependencies == (0,)
        assert wf[0].consumption[MEMORY] == 900

    def test_custom_keys(self):
        wf = workflow_from_records(
            "mine",
            [{"kind": "x", "secs": 10.0, "cores": 2}],
            category_key="kind",
            duration_key="secs",
        )
        assert wf[0].category == "x"
        assert wf[0].duration == 10.0
        assert wf[0].consumption[CORES] == 2

    def test_missing_required_key(self):
        with pytest.raises(ValueError, match="missing"):
            workflow_from_records("m", [{"category": "x"}])

    def test_unregistered_resource_rejected(self):
        with pytest.raises(KeyError):
            workflow_from_records(
                "m", [{"category": "x", "duration": 1.0, "quantum_flux": 3}]
            )

    def test_runs_in_simulator(self):
        from repro.core.allocator import AllocatorConfig
        from repro.sim.manager import SimulationConfig, WorkflowManager
        from repro.sim.pool import PoolConfig

        wf = workflow_from_records(
            "mine",
            [
                {"category": "fit", "duration": 20.0, "cores": 1, "memory": 500, "disk": 50}
                for _ in range(10)
            ],
        )
        manager = WorkflowManager(
            wf,
            SimulationConfig(
                allocator=AllocatorConfig(algorithm="max_seen", seed=0),
                pool=PoolConfig(
                    n_workers=2,
                    capacity=ResourceVector.of(cores=4, memory=4000, disk=4000),
                ),
            ),
        )
        assert manager.run().ledger.n_tasks == 10


class TestAttemptExport:
    def test_csv_round_shape(self, tmp_path):
        from repro.core.allocator import AllocatorConfig
        from repro.core.resources import DISK
        from repro.sim.manager import SimulationConfig, WorkflowManager
        from repro.sim.pool import PoolConfig

        wf = make_synthetic_workflow("normal", n_tasks=20, seed=1)
        manager = WorkflowManager(
            wf,
            SimulationConfig(
                allocator=AllocatorConfig(algorithm="exhaustive_bucketing", seed=0),
                pool=PoolConfig(n_workers=2),
            ),
        )
        result = manager.run()
        path = tmp_path / "attempts.csv"
        text = export_attempts_csv(
            manager._tasks.values(), resources=(CORES, MEMORY, DISK), path=path
        )
        lines = text.strip().splitlines()
        assert lines[0].startswith("task_id,category,attempt,outcome")
        # One row per attempt plus the header.
        assert len(lines) == result.n_attempts + 1
        assert path.read_text() == text
