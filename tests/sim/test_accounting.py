"""Tests for the waste/AWE ledger."""

import pytest

from repro.core.resources import CORES, DISK, MEMORY, ResourceVector
from repro.sim.accounting import Ledger, WasteBreakdown
from repro.sim.task import Attempt, AttemptOutcome, SimTask, TaskState
from repro.workflows.spec import TaskSpec

RESOURCES = (CORES, MEMORY, DISK)


def completed_task(
    task_id=0,
    category="proc",
    consumption=None,
    duration=100.0,
    attempts=None,
):
    """Build a completed SimTask from (allocation, runtime, outcome) specs."""
    consumption = consumption or ResourceVector.of(cores=1, memory=500, disk=100)
    spec = TaskSpec(
        task_id=task_id, category=category, consumption=consumption, duration=duration
    )
    task = SimTask(spec)
    attempts = attempts or [
        (ResourceVector.of(cores=1, memory=1000, disk=1000), duration, AttemptOutcome.SUCCESS)
    ]
    clock = 0.0
    for index, (allocation, runtime, outcome) in enumerate(attempts):
        task.record_attempt(
            Attempt(
                index=index,
                worker_id=0,
                allocation=allocation,
                start_time=clock,
                runtime=runtime,
                outcome=outcome,
                observed=consumption if outcome is AttemptOutcome.SUCCESS else allocation,
                exhausted=(MEMORY,) if outcome is AttemptOutcome.EXHAUSTED else (),
            )
        )
        clock += runtime
    task.state = TaskState.COMPLETED
    task.completion_time = clock
    return task


class TestSingleTaskAccounting:
    def test_perfect_allocation_zero_waste(self):
        ledger = Ledger(RESOURCES)
        consumption = ResourceVector.of(cores=1, memory=500, disk=100)
        task = completed_task(
            consumption=consumption,
            attempts=[(consumption, 100.0, AttemptOutcome.SUCCESS)],
        )
        ledger.record_task(task)
        for res in RESOURCES:
            assert ledger.waste(res).total == pytest.approx(0.0)
            assert ledger.awe(res) == pytest.approx(1.0)

    def test_internal_fragmentation_formula(self):
        """Waste = t * (a - c) on the successful attempt (Section II-C)."""
        ledger = Ledger(RESOURCES)
        task = completed_task(
            consumption=ResourceVector.of(cores=1, memory=500, disk=100),
            duration=100.0,
            attempts=[
                (ResourceVector.of(cores=2, memory=800, disk=100), 100.0, AttemptOutcome.SUCCESS)
            ],
        )
        ledger.record_task(task)
        assert ledger.waste(MEMORY).internal_fragmentation == pytest.approx(300 * 100)
        assert ledger.waste(CORES).internal_fragmentation == pytest.approx(1 * 100)
        assert ledger.waste(DISK).internal_fragmentation == pytest.approx(0.0)

    def test_failed_allocation_formula(self):
        """Waste = sum a_i * t_i over killed attempts."""
        ledger = Ledger(RESOURCES)
        task = completed_task(
            consumption=ResourceVector.of(cores=1, memory=500, disk=100),
            duration=100.0,
            attempts=[
                (ResourceVector.of(cores=1, memory=250, disk=100), 50.0, AttemptOutcome.EXHAUSTED),
                (ResourceVector.of(cores=1, memory=500, disk=100), 100.0, AttemptOutcome.SUCCESS),
            ],
        )
        ledger.record_task(task)
        assert ledger.waste(MEMORY).failed_allocation == pytest.approx(250 * 50)
        assert ledger.waste(MEMORY).internal_fragmentation == pytest.approx(0.0)
        # The failed attempt charges every resource it held.
        assert ledger.waste(CORES).failed_allocation == pytest.approx(1 * 50)

    def test_awe_formula(self):
        ledger = Ledger(RESOURCES)
        task = completed_task(
            consumption=ResourceVector.of(cores=1, memory=500, disk=100),
            duration=100.0,
            attempts=[
                (ResourceVector.of(cores=1, memory=250, disk=100), 50.0, AttemptOutcome.EXHAUSTED),
                (ResourceVector.of(cores=1, memory=1000, disk=100), 100.0, AttemptOutcome.SUCCESS),
            ],
        )
        ledger.record_task(task)
        expected = (500 * 100) / (250 * 50 + 1000 * 100)
        assert ledger.awe(MEMORY) == pytest.approx(expected)

    def test_eviction_excluded_from_awe(self):
        ledger = Ledger(RESOURCES)
        alloc = ResourceVector.of(cores=1, memory=1000, disk=100)
        task = completed_task(
            consumption=ResourceVector.of(cores=1, memory=500, disk=100),
            duration=100.0,
            attempts=[
                (alloc, 30.0, AttemptOutcome.EVICTED),
                (alloc, 100.0, AttemptOutcome.SUCCESS),
            ],
        )
        ledger.record_task(task)
        assert ledger.waste(MEMORY).eviction == pytest.approx(1000 * 30)
        # AWE only sees the successful attempt.
        assert ledger.awe(MEMORY) == pytest.approx(500 / 1000)
        assert ledger.n_evicted_attempts == 1

    def test_incomplete_task_rejected(self):
        ledger = Ledger(RESOURCES)
        spec = TaskSpec(
            task_id=0,
            category="p",
            consumption=ResourceVector.of(cores=1, memory=1, disk=1),
            duration=1.0,
        )
        with pytest.raises(ValueError):
            ledger.record_task(SimTask(spec))


class TestAggregation:
    def test_identity_holds(self):
        """allocation = consumption + fragmentation + failed, exactly."""
        ledger = Ledger(RESOURCES)
        for task_id in range(5):
            task = completed_task(
                task_id=task_id,
                consumption=ResourceVector.of(cores=1, memory=400 + 50 * task_id, disk=100),
                duration=60.0 + task_id,
                attempts=[
                    (
                        ResourceVector.of(cores=1, memory=300, disk=200),
                        20.0,
                        AttemptOutcome.EXHAUSTED,
                    ),
                    (
                        ResourceVector.of(cores=2, memory=700, disk=200),
                        60.0 + task_id,
                        AttemptOutcome.SUCCESS,
                    ),
                ],
            )
            ledger.record_task(task)
        assert ledger.identity_holds()

    def test_per_category_breakdown(self):
        ledger = Ledger(RESOURCES)
        ledger.record_task(completed_task(task_id=0, category="a"))
        ledger.record_task(completed_task(task_id=1, category="b"))
        assert set(ledger.categories()) == {"a", "b"}
        assert 0 < ledger.awe_of_category("a", MEMORY) <= 1.0
        assert ledger.waste_of_category("a", MEMORY).total >= 0

    def test_awe_series_is_cumulative(self):
        ledger = Ledger(RESOURCES)
        perfect = ResourceVector.of(cores=1, memory=500, disk=100)
        ledger.record_task(
            completed_task(task_id=0, attempts=[(perfect, 100.0, AttemptOutcome.SUCCESS)])
        )
        ledger.record_task(
            completed_task(
                task_id=1,
                attempts=[
                    (
                        ResourceVector.of(cores=1, memory=1000, disk=100),
                        100.0,
                        AttemptOutcome.SUCCESS,
                    )
                ],
            )
        )
        series = ledger.awe_series(MEMORY)
        assert series[0] == pytest.approx(1.0)
        assert series[1] == pytest.approx((500 + 500) / (500 + 1000))

    def test_counters(self):
        ledger = Ledger(RESOURCES)
        ledger.record_task(
            completed_task(
                attempts=[
                    (
                        ResourceVector.of(cores=1, memory=250, disk=100),
                        10.0,
                        AttemptOutcome.EXHAUSTED,
                    ),
                    (
                        ResourceVector.of(cores=1, memory=1000, disk=100),
                        100.0,
                        AttemptOutcome.SUCCESS,
                    ),
                ]
            )
        )
        assert ledger.n_tasks == 1
        assert ledger.n_attempts == 2
        assert ledger.n_failed_attempts == 1

    def test_empty_resource_list_rejected(self):
        with pytest.raises(ValueError):
            Ledger(())

    def test_waste_breakdown_arithmetic(self):
        a = WasteBreakdown(internal_fragmentation=10.0, failed_allocation=5.0, eviction=2.0)
        b = WasteBreakdown(internal_fragmentation=1.0, failed_allocation=1.0)
        total = a + b
        assert total.internal_fragmentation == 11.0
        assert total.total == 17.0
        assert a.fraction_failed() == pytest.approx(5.0 / 15.0)
        assert WasteBreakdown().fraction_failed() == 0.0
