"""Tests for the simulation timeline recorder."""

import pytest

from repro.core.allocator import AllocatorConfig
from repro.core.resources import ResourceVector
from repro.sim.manager import SimulationConfig, WorkflowManager
from repro.sim.observability import TimelineRecorder
from repro.sim.pool import PoolConfig
from repro.workflows.spec import TaskSpec, WorkflowSpec


def flat_workflow(n=30, duration=60.0):
    return WorkflowSpec(
        "flat",
        [
            TaskSpec(
                task_id=i,
                category="proc",
                consumption=ResourceVector.of(cores=1, memory=500, disk=100),
                duration=duration,
            )
            for i in range(n)
        ],
    )


def make_manager(**pool_kwargs):
    return WorkflowManager(
        flat_workflow(),
        SimulationConfig(
            allocator=AllocatorConfig(algorithm="max_seen", seed=1),
            pool=PoolConfig(
                n_workers=3,
                capacity=ResourceVector.of(cores=8, memory=8000, disk=8000),
                **pool_kwargs,
            ),
        ),
    )


class TestTimelineRecorder:
    def test_samples_cover_the_run(self):
        manager = make_manager()
        recorder = TimelineRecorder(manager, period=30.0)
        result = manager.run()
        timeline = recorder.timeline
        assert timeline.samples, "no samples recorded"
        assert timeline.samples[0].time == 0.0
        assert timeline.samples[-1].time <= result.makespan + 30.0
        # Sampling cadence respected.
        gaps = [
            b.time - a.time
            for a, b in zip(timeline.samples, timeline.samples[1:])
        ]
        assert all(abs(g - 30.0) < 1e-9 for g in gaps)

    def test_completions_monotone(self):
        manager = make_manager()
        recorder = TimelineRecorder(manager, period=20.0)
        manager.run()
        completed = recorder.timeline.series("n_completed")
        assert completed == sorted(completed)
        assert completed[-1] == 30

    def test_utilization_in_unit_interval(self):
        manager = make_manager()
        recorder = TimelineRecorder(manager, period=15.0)
        manager.run()
        for key in ("cores", "memory", "disk"):
            for value in recorder.timeline.utilization_series(key):
                assert 0.0 <= value <= 1.0 + 1e-9
        assert 0.0 <= recorder.timeline.mean_utilization("cores") <= 1.0

    def test_worker_count_tracks_ramp(self):
        manager = make_manager(ramp_up_seconds=120.0, seed=5)
        recorder = TimelineRecorder(manager, period=10.0)
        manager.run()
        workers = recorder.timeline.series("n_workers")
        assert workers[0] == 1.0          # ramp starts with the seed worker
        assert recorder.timeline.peak_workers() == 3

    def test_queue_drains(self):
        manager = make_manager()
        recorder = TimelineRecorder(manager, period=10.0)
        manager.run()
        queue = recorder.timeline.series("n_ready_tasks")
        assert recorder.timeline.peak_queue_depth() >= queue[-1]
        assert queue[-1] == 0.0

    def test_invalid_period(self):
        manager = make_manager()
        with pytest.raises(ValueError):
            TimelineRecorder(manager, period=0.0)

    def test_recorder_does_not_block_drain(self):
        """The recorder must stop scheduling once the workflow is done,
        or the engine would never drain."""
        manager = make_manager()
        TimelineRecorder(manager, period=5.0)
        result = manager.run()  # completes => the recorder stopped itself
        assert result.ledger.n_tasks == 30
