"""Bit-identical simulation resume: kill at event N, relaunch, compare.

The acceptance property of the checkpoint subsystem: a simulation
interrupted at an *arbitrary* engine event and resumed from its snapshot
in a fresh manager produces a trace byte-for-byte equal to the
uninterrupted run.  The scenarios are the golden-trace ones (baseline,
fixed/poisson faults, churny pool) so the comparison target is the same
canonical trace the regression suite pins.

The canonical resume flow exercised throughout::

    manager = WorkflowManager(workflow, config)      # fresh
    recorder = TraceRecorder(manager)
    cp, done = resume_simulation_checkpoint(manager, path)
    manager.advance()        # ALWAYS drain: under churn the queue holds
    manager.finish()         # worker events past workflow completion
"""


import pytest

from repro.checkpoint import (
    CheckpointError,
    GracefulShutdown,
    SimulationCheckpointer,
    SimulationInterrupted,
    load_checkpoint,
    resume_simulation_checkpoint,
)
from repro.core.allocator import AllocatorConfig, ExploratoryConfig
from repro.core.resources import ResourceVector
from repro.sim.faults import FaultConfig, FixedPreemptions, make_fault_config
from repro.sim.manager import SimulationConfig, WorkflowManager
from repro.sim.pool import ChurnConfig, PoolConfig
from repro.sim.trace import TraceRecorder

from tests.sim.test_golden_traces import (
    _config,
    _poison_workflow,
    _resilience,
    _workflow,
)

def _pool():
    """The golden scenarios' pool, rebuilt fresh (matches _config)."""
    return PoolConfig(
        n_workers=3,
        capacity=ResourceVector.of(cores=8, memory=16000, disk=16000),
        churn=ChurnConfig(),
        seed=11,
    )


def _bounded_records_config():
    """Exhaustive Bucketing over a tiny reservoir-bounded record store.

    Exercises the million-record hot-path machinery end to end through a
    kill/resume: the seeded reservoir RNG, the bounded store's ``seen``
    counter and the incremental exhaustive engine's rebuilt-on-load
    cache must all replay bit-identically.
    """
    return SimulationConfig(
        allocator=AllocatorConfig(
            algorithm="exhaustive_bucketing",
            algorithm_kwargs={"record_capacity": 4, "record_compaction": "reservoir"},
            seed=7,
            exploratory=ExploratoryConfig(min_records=3),
        ),
        pool=_pool(),
    )


def _greedy_incremental_config():
    """Greedy Bucketing with the opt-in local-repair engine.

    The engine's splice cache serializes bit-exactly; a mid-stream
    kill/resume must land on the same repaired partitions (and thus the
    same allocations) as the uninterrupted run.
    """
    return SimulationConfig(
        allocator=AllocatorConfig(
            algorithm="greedy_bucketing",
            algorithm_kwargs={"incremental": True},
            seed=7,
            exploratory=ExploratoryConfig(min_records=3),
        ),
        pool=_pool(),
    )


#: Config factories for the golden scenarios (fresh objects per call —
#: a resume must never share mutable state with the original run).
CONFIGS = {
    "baseline": lambda: _config(),
    "fixed_preemption": lambda: _config(
        faults=FaultConfig(preemption=FixedPreemptions(times=(45.0, 95.0)), seed=5)
    ),
    "poisson_chaos": lambda: _config(
        faults=make_fault_config("chaos", rate=1 / 90.0, seed=5)
    ),
    "churny_pool": lambda: _config(
        churn=ChurnConfig(
            mean_lifetime=120.0,
            mean_interarrival=60.0,
            min_workers=2,
            max_workers=5,
        )
    ),
    # Poison task + bounded retries/backoff/breaker/watchdog: kills land
    # before, during and after the quarantine, so the resilience engine's
    # jitter stream, dead-letter ledger and breaker state all replay.
    "quarantine": lambda: _config(resilience=_resilience()),
    # Million-record hot-path machinery under kill/resume: a bounded
    # reservoir record store, and the greedy local-repair engine with
    # its serialized splice cache.
    "bounded_records": _bounded_records_config,
    "greedy_incremental": _greedy_incremental_config,
}

#: Scenarios that run a different workflow than the shared golden one.
WORKFLOWS = {"quarantine": _poison_workflow}


def _make_workflow(name):
    return WORKFLOWS.get(name, _workflow)()


def _uninterrupted(name):
    """(trace text, total engine events) for the scenario run end-to-end."""
    manager = WorkflowManager(_make_workflow(name), CONFIGS[name]())
    recorder = TraceRecorder(manager)
    manager.run()
    return recorder.text(), manager.engine.events_processed


def _kill_and_resume(name, stop_after, path):
    """Run to ``stop_after`` events, snapshot, abandon; resume fresh."""
    # Phase 1: the doomed run.  Snapshot written, manager dropped on the
    # floor mid-flight — exactly what SIGKILL leaves behind.
    doomed = WorkflowManager(_make_workflow(name), CONFIGS[name]())
    checkpointer = SimulationCheckpointer(doomed, path)
    doomed.begin()
    doomed.advance(stop_after_events=stop_after)
    checkpointer.write()
    del doomed

    # Phase 2: the relaunch, as a fresh process would do it.
    manager = WorkflowManager(_make_workflow(name), CONFIGS[name]())
    recorder = TraceRecorder(manager)
    _, done = resume_simulation_checkpoint(manager, path)
    manager.advance()
    manager.finish()
    return recorder.text()


@pytest.mark.parametrize("name", sorted(CONFIGS))
@pytest.mark.parametrize("fraction", [0.1, 0.5, 0.9])
def test_kill_at_event_resume_is_bit_identical(name, fraction, tmp_path):
    full_trace, total_events = _uninterrupted(name)
    stop_after = max(1, int(total_events * fraction))
    resumed_trace = _kill_and_resume(name, stop_after, str(tmp_path / "snap.json"))
    assert resumed_trace == full_trace


def test_resume_past_last_event_still_completes(tmp_path):
    """A snapshot taken after the final event resumes to the same trace."""
    full_trace, total_events = _uninterrupted("baseline")
    resumed = _kill_and_resume("baseline", total_events, str(tmp_path / "snap.json"))
    assert resumed == full_trace


def test_periodic_event_snapshots_are_written_and_resumable(tmp_path):
    path = str(tmp_path / "periodic.json")
    manager = WorkflowManager(_workflow(), CONFIGS["baseline"]())
    recorder = TraceRecorder(manager)
    checkpointer = SimulationCheckpointer(manager, path, every_events=5)
    manager.run()
    full_trace = recorder.text()
    assert checkpointer.snapshots_written >= 2

    # The last periodic snapshot on disk resumes to the same end state.
    _, payload = load_checkpoint(path, kind="simulation")
    fresh = WorkflowManager(_workflow(), CONFIGS["baseline"]())
    fresh_recorder = TraceRecorder(fresh)
    resume_simulation_checkpoint(fresh, path)
    fresh.advance()
    fresh.finish()
    assert fresh_recorder.text() == full_trace
    assert fresh.engine.events_processed >= int(payload["events"])


def test_shutdown_trip_snapshots_and_raises(tmp_path):
    """The SIGINT/SIGTERM path: trip mid-run -> snapshot + interrupt."""
    path = str(tmp_path / "interrupted.json")
    full_trace, total_events = _uninterrupted("baseline")

    shutdown = GracefulShutdown(install=False)
    manager = WorkflowManager(_workflow(), CONFIGS["baseline"]())
    SimulationCheckpointer(manager, path, shutdown=shutdown)
    tripped_at = max(1, total_events // 3)
    manager.engine.add_listener(
        lambda: shutdown.trip(15)
        if manager.engine.events_processed == tripped_at
        else None
    )
    with pytest.raises(SimulationInterrupted) as excinfo:
        manager.run()
    assert excinfo.value.signum == 15
    assert excinfo.value.path == path

    # The snapshot it flushed resumes to the uninterrupted trace.
    fresh = WorkflowManager(_workflow(), CONFIGS["baseline"]())
    recorder = TraceRecorder(fresh)
    resume_simulation_checkpoint(fresh, path)
    fresh.advance()
    fresh.finish()
    assert recorder.text() == full_trace


def test_resume_refuses_divergent_config(tmp_path):
    """Same shape, different seed: replay diverges and must be refused."""
    path = str(tmp_path / "snap.json")
    doomed = WorkflowManager(_workflow(), CONFIGS["baseline"]())
    checkpointer = SimulationCheckpointer(doomed, path)
    doomed.begin()
    doomed.advance(stop_after_events=40)
    checkpointer.write()

    divergent = SimulationConfig(
        allocator=AllocatorConfig(
            algorithm="quantized_bucketing",
            seed=8,  # golden scenarios use seed=7
            exploratory=ExploratoryConfig(min_records=3),
        ),
        pool=CONFIGS["baseline"]().pool,
    )
    manager = WorkflowManager(_workflow(), divergent)
    with pytest.raises(CheckpointError, match="resume verification failed"):
        resume_simulation_checkpoint(manager, path)


def test_resume_refuses_wrong_workflow_or_algorithm(tmp_path):
    path = str(tmp_path / "snap.json")
    doomed = WorkflowManager(_workflow(), CONFIGS["baseline"]())
    checkpointer = SimulationCheckpointer(doomed, path)
    doomed.begin()
    doomed.advance(stop_after_events=10)
    checkpointer.write()

    smaller = WorkflowManager(_workflow(n=8), CONFIGS["baseline"]())
    with pytest.raises(CheckpointError, match="snapshot is for workflow"):
        resume_simulation_checkpoint(smaller, path)

    other_algo = SimulationConfig(
        allocator=AllocatorConfig(
            algorithm="max_seen", seed=7, exploratory=ExploratoryConfig(min_records=3)
        ),
        pool=CONFIGS["baseline"]().pool,
    )
    mismatched = WorkflowManager(_workflow(), other_algo)
    with pytest.raises(CheckpointError, match="snapshot is for algorithm"):
        resume_simulation_checkpoint(mismatched, path)
