"""The invariant checker must catch deliberately broken accounting.

Each test here sabotages one conservation law mid-run and asserts the
checker raises :class:`InvariantViolation` at the event that broke it —
this is the acceptance test that the checker is load-bearing, not
decorative.
"""

import pytest

from repro.core.allocator import AllocatorConfig, ExploratoryConfig
from repro.core.resources import MEMORY, ResourceVector
from repro.sim.faults import FaultConfig, PoissonPreemptions, TaskKillConfig
from repro.sim.invariants import InvariantViolation
from repro.sim.manager import SimulationConfig, WorkflowManager
from repro.sim.pool import PoolConfig
from repro.sim.task import Attempt, AttemptOutcome, SimTask
from repro.workflows.spec import TaskSpec, WorkflowSpec


def make_workflow(n=10, duration=50.0):
    tasks = [
        TaskSpec(
            task_id=i,
            category="proc",
            consumption=ResourceVector.of(cores=1, memory=800, disk=100),
            duration=duration,
        )
        for i in range(n)
    ]
    return WorkflowSpec("audited", tasks)


def make_manager(n=10, check_invariants=True, faults=None):
    config = SimulationConfig(
        allocator=AllocatorConfig(
            algorithm="max_seen",
            seed=1,
            exploratory=ExploratoryConfig(min_records=3),
        ),
        pool=PoolConfig(
            n_workers=3,
            capacity=ResourceVector.of(cores=8, memory=16000, disk=16000),
            seed=2,
        ),
        faults=faults,
        check_invariants=check_invariants,
    )
    return WorkflowManager(make_workflow(n), config)


class TestCleanRuns:
    def test_clean_run_passes_and_counts_checks(self):
        manager = make_manager()
        manager.run()
        assert manager.invariants is not None
        assert manager.invariants.events_checked > 0
        assert manager.invariants.attempts_checked >= 10

    def test_faulty_run_still_satisfies_invariants(self):
        faults = FaultConfig(
            preemption=PoissonPreemptions(rate=1 / 60.0),
            kills=TaskKillConfig(rate=1 / 45.0),
            seed=4,
        )
        manager = make_manager(n=20, faults=faults)
        result = manager.run()
        assert result.n_tasks == 20
        assert manager.invariants.attempts_checked >= result.n_attempts

    def test_opt_out_disables_checker(self):
        manager = make_manager(check_invariants=False)
        assert manager.invariants is None
        manager.run()


class TestSabotage:
    def test_ledger_corruption_is_caught(self):
        """Corrupting fragmentation totals breaks the waste identity."""
        manager = make_manager()
        ledger = manager.ledger
        real_record = ledger.record_task

        def corrupted(task):
            usage = real_record(task)
            ledger._waste[MEMORY].internal_fragmentation += 12345.0
            return usage

        ledger.record_task = corrupted
        with pytest.raises(InvariantViolation, match="ledger identity"):
            manager.run()

    def test_worker_overcommit_is_caught(self):
        """A worker whose committed sum exceeds capacity is flagged."""
        manager = make_manager()

        def sabotage():
            worker = next(iter(manager.pool.alive_workers()))
            worker._free[MEMORY] = -500.0  # fake overcommit

        manager.engine.schedule(10.0, sabotage)
        with pytest.raises(InvariantViolation, match="overcommitted"):
            manager.run()

    def test_clock_rewind_is_caught(self):
        manager = make_manager()

        def rewind():
            manager.engine._now = 1.0

        manager.engine.schedule(20.0, rewind)
        with pytest.raises(InvariantViolation, match="clock ran backwards"):
            manager.run()

    def test_opt_out_lets_ledger_corruption_pass_events(self):
        """Without the checker the same sabotage is not caught per-event."""
        manager = make_manager(check_invariants=False)
        ledger = manager.ledger
        real_record = ledger.record_task

        def corrupted(task):
            usage = real_record(task)
            ledger._waste[MEMORY].internal_fragmentation += 12345.0
            return usage

        ledger.record_task = corrupted
        # The run itself proceeds; only the manager's final sanity assert
        # (if any) may trip, so just check no InvariantViolation type.
        try:
            manager.run()
        except InvariantViolation:  # pragma: no cover
            pytest.fail("checker should be disabled")
        except AssertionError:
            pass  # pre-existing end-of-run assert is allowed to notice


class TestAttemptChecks:
    def _checker(self):
        manager = make_manager()
        # Detach from the engine: we drive check_attempt directly.
        manager.engine.remove_listener(manager.invariants.check_event)
        return manager.invariants

    def _task(self):
        return SimTask(
            TaskSpec(
                task_id=0,
                category="proc",
                consumption=ResourceVector.of(cores=1, memory=800, disk=100),
                duration=10.0,
            )
        )

    def test_double_success_is_caught(self):
        checker = self._checker()
        task = self._task()
        alloc = ResourceVector.of(cores=1, memory=1000, disk=200)
        observed = ResourceVector.of(cores=1, memory=800, disk=100)
        for index in range(2):
            task.record_attempt(
                Attempt(
                    index=index,
                    worker_id=0,
                    allocation=alloc,
                    start_time=0.0,
                    runtime=10.0,
                    outcome=AttemptOutcome.SUCCESS,
                    observed=observed,
                )
            )
        with pytest.raises(InvariantViolation, match="more than once"):
            checker.check_attempt(task, task.attempts[-1])

    def test_underallocated_success_is_caught(self):
        """A success whose allocation is below the true peak means the
        kill rule was not enforced (negative fragmentation)."""
        checker = self._checker()
        task = self._task()
        attempt = Attempt(
            index=0,
            worker_id=0,
            allocation=ResourceVector.of(cores=1, memory=500, disk=200),
            start_time=0.0,
            runtime=10.0,
            outcome=AttemptOutcome.SUCCESS,
            observed=ResourceVector.of(cores=1, memory=800, disk=100),
        )
        task.record_attempt(attempt)
        with pytest.raises(InvariantViolation, match="negative fragmentation"):
            checker.check_attempt(task, attempt)

    def test_kill_above_limit_is_caught(self):
        """An EXHAUSTED attempt cannot have observed more than the limit."""
        checker = self._checker()
        task = self._task()
        attempt = Attempt(
            index=0,
            worker_id=0,
            allocation=ResourceVector.of(cores=1, memory=500, disk=200),
            start_time=0.0,
            runtime=5.0,
            outcome=AttemptOutcome.EXHAUSTED,
            observed=ResourceVector.of(cores=1, memory=900, disk=100),
            exhausted=(MEMORY,),
        )
        task.record_attempt(attempt)
        with pytest.raises(InvariantViolation, match="above its limit"):
            checker.check_attempt(task, attempt)

    def test_valid_eviction_passes(self):
        checker = self._checker()
        task = self._task()
        attempt = Attempt(
            index=0,
            worker_id=0,
            allocation=ResourceVector.of(cores=1, memory=1000, disk=200),
            start_time=0.0,
            runtime=3.0,
            outcome=AttemptOutcome.EVICTED,
            observed=ResourceVector.of(cores=1, memory=240, disk=30),
        )
        task.record_attempt(attempt)
        checker.check_attempt(task, attempt)  # must not raise
