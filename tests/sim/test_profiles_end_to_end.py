"""Kill-model profiles through the full simulator: price of failure."""


from repro.core.allocator import AllocatorConfig, ExploratoryConfig
from repro.core.resources import MEMORY, ResourceVector
from repro.sim.manager import SimulationConfig, WorkflowManager
from repro.sim.pool import PoolConfig
from repro.sim.profiles import InstantPeakProfile, LinearRampProfile, StepProfile
from repro.workflows.spec import TaskSpec, WorkflowSpec


def spiky_workflow(n=24):
    """One small task first, then larger ones: with min_records=1, the
    larger tasks fail their learned first allocation and retry."""
    tasks = [
        TaskSpec(0, "proc", ResourceVector.of(cores=1, memory=200, disk=50), 30.0)
    ]
    for i in range(1, n):
        tasks.append(
            TaskSpec(i, "proc", ResourceVector.of(cores=1, memory=2000, disk=50), 30.0)
        )
    return WorkflowSpec("spiky", tasks)


def run_with(profile):
    manager = WorkflowManager(
        spiky_workflow(),
        SimulationConfig(
            allocator=AllocatorConfig(
                algorithm="max_seen",
                exploratory=ExploratoryConfig(min_records=1),
                seed=1,
            ),
            pool=PoolConfig(
                n_workers=1,
                capacity=ResourceVector.of(cores=8, memory=16000, disk=16000),
            ),
            profile=profile,
        ),
    )
    return manager.run()


class TestProfilePricing:
    def test_all_profiles_complete_the_workflow(self):
        for profile in (
            LinearRampProfile(peak_fraction=0.25),
            LinearRampProfile(peak_fraction=1.0),
            InstantPeakProfile(),
            StepProfile(step_fraction=0.8, baseline_fraction=0.05),
        ):
            result = run_with(profile)
            assert result.ledger.n_tasks == 24
            assert result.ledger.identity_holds()

    def test_failure_price_ordering(self):
        """Instant kills are cheapest, late-step kills most expensive —
        the failed-allocation waste must order accordingly on the same
        workload and allocator."""
        instant = run_with(InstantPeakProfile())
        early = run_with(LinearRampProfile(peak_fraction=0.25))
        late = run_with(StepProfile(step_fraction=0.9, baseline_fraction=0.05))
        f_instant = instant.ledger.waste(MEMORY).failed_allocation
        f_early = early.ledger.waste(MEMORY).failed_allocation
        f_late = late.ledger.waste(MEMORY).failed_allocation
        assert f_instant > 0  # failures do occur
        assert f_instant < f_early < f_late

    def test_awe_tracks_failure_price(self):
        instant = run_with(InstantPeakProfile())
        late = run_with(StepProfile(step_fraction=0.9, baseline_fraction=0.05))
        assert instant.ledger.awe(MEMORY) > late.ledger.awe(MEMORY)

    def test_identical_failure_counts_across_profiles(self):
        """The profile prices failures; it must not change *which*
        allocations fail (that is the allocator's doing)."""
        a = run_with(InstantPeakProfile())
        b = run_with(LinearRampProfile(peak_fraction=1.0))
        assert a.n_failed_attempts == b.n_failed_attempts
