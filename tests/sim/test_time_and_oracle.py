"""Tests for wall-time management and the oracle reference mode."""

import pytest

from repro.core.allocator import AllocatorConfig, ExploratoryConfig
from repro.core.resources import CORES, DISK, MEMORY, TIME, ResourceVector
from repro.sim.manager import SimulationConfig, WorkflowManager
from repro.sim.pool import PoolConfig
from repro.workflows.spec import TaskSpec, WorkflowSpec
from repro.workflows.synthetic import make_synthetic_workflow

ALL_FOUR = (CORES, MEMORY, DISK, TIME)


def flat_workflow(n=30, duration=60.0):
    tasks = [
        TaskSpec(
            task_id=i,
            category="proc",
            consumption=ResourceVector.of(cores=1, memory=500, disk=100),
            duration=duration,
        )
        for i in range(n)
    ]
    return WorkflowSpec(name="flat", tasks=tasks)


def small_pool():
    return PoolConfig(
        n_workers=3, capacity=ResourceVector.of(cores=8, memory=8000, disk=8000)
    )


class TestTimeManagement:
    def test_workflow_completes_with_time_managed(self):
        manager = WorkflowManager(
            flat_workflow(),
            SimulationConfig(
                allocator=AllocatorConfig(
                    algorithm="exhaustive_bucketing",
                    resources=ALL_FOUR,
                    seed=1,
                ),
                pool=small_pool(),
            ),
        )
        result = manager.run()
        assert result.ledger.n_tasks == 30
        assert result.ledger.identity_holds()

    def test_time_records_are_durations(self):
        manager = WorkflowManager(
            flat_workflow(duration=45.0),
            SimulationConfig(
                allocator=AllocatorConfig(
                    algorithm="max_seen", resources=ALL_FOUR, seed=1
                ),
                pool=small_pool(),
            ),
        )
        manager.run()
        records = manager.allocator.algorithm("proc", TIME).max_seen
        assert records == pytest.approx(45.0)

    def test_exploratory_time_fallback_is_sane(self):
        """The conservative bootstrap carries no time component and a
        worker has no time capacity; the allocator must still hand out a
        positive allowance (the one-hour fallback), not zero."""
        manager = WorkflowManager(
            flat_workflow(duration=30.0),
            SimulationConfig(
                allocator=AllocatorConfig(
                    algorithm="greedy_bucketing", resources=ALL_FOUR, seed=1
                ),
                pool=small_pool(),
            ),
        )
        result = manager.run()
        first_attempts = [manager._tasks[i].attempts[0] for i in range(5)]
        assert all(a.allocation[TIME] >= 30.0 for a in first_attempts)
        # Nothing should have been killed for time with a 1h allowance
        # over 30 s tasks.
        for task in manager._tasks.values():
            for attempt in task.attempts:
                assert TIME not in attempt.exhausted

    def test_short_time_limits_kill_and_retry(self):
        """min_records=1 plus one fast task first: later slow tasks get
        killed on the learned (too small) time limit and retried."""
        tasks = [
            TaskSpec(0, "proc", ResourceVector.of(cores=1, memory=100, disk=10), 10.0)
        ] + [
            TaskSpec(i, "proc", ResourceVector.of(cores=1, memory=100, disk=10), 200.0)
            for i in range(1, 6)
        ]
        manager = WorkflowManager(
            WorkflowSpec(name="slowlate", tasks=tasks),
            SimulationConfig(
                allocator=AllocatorConfig(
                    algorithm="max_seen",
                    resources=ALL_FOUR,
                    exploratory=ExploratoryConfig(min_records=1),
                    seed=1,
                ),
                pool=small_pool(),
            ),
        )
        result = manager.run()
        time_kills = [
            attempt
            for task in manager._tasks.values()
            for attempt in task.attempts
            if TIME in attempt.exhausted
        ]
        assert time_kills, "expected at least one wall-time kill"
        assert result.ledger.n_tasks == 6

    def test_time_awe_reported(self):
        manager = WorkflowManager(
            flat_workflow(),
            SimulationConfig(
                allocator=AllocatorConfig(
                    algorithm="exhaustive_bucketing", resources=ALL_FOUR, seed=1
                ),
                pool=small_pool(),
            ),
        )
        result = manager.run()
        assert 0 < result.ledger.awe(TIME) <= 1.0


class TestOracle:
    def test_oracle_awe_is_one(self):
        workflow = make_synthetic_workflow("normal", n_tasks=60, seed=2)
        manager = WorkflowManager(
            workflow,
            SimulationConfig(
                allocator=AllocatorConfig(algorithm="whole_machine", seed=1),
                pool=PoolConfig(n_workers=4),
                oracle=True,
            ),
        )
        result = manager.run()
        assert result.algorithm == "oracle"
        for res in (CORES, MEMORY, DISK):
            assert result.ledger.awe(res) == pytest.approx(1.0)
            assert result.ledger.waste(res).total == pytest.approx(0.0)
        assert result.n_failed_attempts == 0

    def test_oracle_with_time_managed(self):
        manager = WorkflowManager(
            flat_workflow(),
            SimulationConfig(
                allocator=AllocatorConfig(
                    algorithm="whole_machine", resources=ALL_FOUR, seed=1
                ),
                pool=small_pool(),
                oracle=True,
            ),
        )
        result = manager.run()
        assert result.ledger.awe(TIME) == pytest.approx(1.0)

    def test_oracle_via_runner(self):
        from repro.experiments.config import ExperimentConfig
        from repro.experiments.runner import run_cell

        result = run_cell(
            "normal",
            "oracle",
            ExperimentConfig(n_tasks=50, n_workers=3, ramp_up_seconds=0.0),
        )
        assert result.algorithm == "oracle"
        assert result.ledger.awe(MEMORY) == pytest.approx(1.0)

    def test_oracle_dominates_every_algorithm(self):
        """The oracle is the ceiling the paper defines: no online
        algorithm may beat it."""
        from repro.experiments.config import ExperimentConfig
        from repro.experiments.runner import run_cell

        config = ExperimentConfig(n_tasks=80, n_workers=4, ramp_up_seconds=0.0)
        oracle = run_cell("bimodal", "oracle", config)
        for algorithm in ("max_seen", "exhaustive_bucketing"):
            result = run_cell("bimodal", algorithm, config)
            for res in (CORES, MEMORY, DISK):
                assert result.ledger.awe(res) <= oracle.ledger.awe(res) + 1e-9
