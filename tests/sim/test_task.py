"""Tests for the simulated task lifecycle."""

import pytest

from repro.core.resources import MEMORY, ResourceVector
from repro.sim.task import Attempt, AttemptOutcome, SimTask, TaskState
from repro.workflows.spec import TaskSpec


def make_spec(task_id=0, deps=()):
    return TaskSpec(
        task_id=task_id,
        category="proc",
        consumption=ResourceVector.of(cores=1, memory=500, disk=100),
        duration=60.0,
        dependencies=tuple(deps),
    )


def make_attempt(index=0, outcome=AttemptOutcome.SUCCESS, exhausted=()):
    return Attempt(
        index=index,
        worker_id=0,
        allocation=ResourceVector.of(cores=1, memory=1000, disk=1000),
        start_time=0.0,
        runtime=60.0,
        outcome=outcome,
        observed=ResourceVector.of(cores=1, memory=500, disk=100),
        exhausted=tuple(exhausted),
    )


class TestAttempt:
    def test_end_time(self):
        a = make_attempt()
        assert a.end_time == 60.0

    def test_exhausted_outcome_requires_resources(self):
        with pytest.raises(ValueError):
            make_attempt(outcome=AttemptOutcome.EXHAUSTED)

    def test_non_exhausted_cannot_name_resources(self):
        with pytest.raises(ValueError):
            make_attempt(outcome=AttemptOutcome.SUCCESS, exhausted=(MEMORY,))

    def test_negative_runtime_rejected(self):
        with pytest.raises(ValueError):
            Attempt(
                index=0,
                worker_id=0,
                allocation=ResourceVector.of(cores=1),
                start_time=0.0,
                runtime=-1.0,
                outcome=AttemptOutcome.SUCCESS,
                observed=ResourceVector(),
            )


class TestSimTask:
    def test_dependency_free_task_is_ready(self):
        task = SimTask(make_spec())
        assert task.state is TaskState.READY
        assert task.ready_time == 0.0

    def test_dependent_task_is_pending(self):
        task = SimTask(make_spec(task_id=1, deps=[0]))
        assert task.state is TaskState.PENDING
        assert task.ready_time is None

    def test_becomes_ready_when_deps_complete(self):
        task = SimTask(make_spec(task_id=2, deps=[0, 1]))
        assert not task.dependency_completed(0, now=5.0)
        assert task.state is TaskState.PENDING
        assert task.dependency_completed(1, now=9.0)
        assert task.state is TaskState.READY
        assert task.ready_time == 9.0

    def test_attempt_indices_enforced(self):
        task = SimTask(make_spec())
        task.record_attempt(
            make_attempt(index=0, outcome=AttemptOutcome.EXHAUSTED, exhausted=(MEMORY,))
        )
        with pytest.raises(ValueError, match="out of order"):
            task.record_attempt(make_attempt(index=5))

    def test_attempt_counters(self):
        task = SimTask(make_spec())
        task.record_attempt(make_attempt(0, AttemptOutcome.EXHAUSTED, (MEMORY,)))
        task.record_attempt(make_attempt(1, AttemptOutcome.EVICTED))
        task.record_attempt(make_attempt(2, AttemptOutcome.SUCCESS))
        assert task.n_attempts == 3
        assert task.n_exhausted_attempts == 1
        assert task.n_evicted_attempts == 1

    def test_final_attempt_requires_completion(self):
        task = SimTask(make_spec())
        with pytest.raises(RuntimeError):
            task.final_attempt()
        task.record_attempt(make_attempt(0))
        task.state = TaskState.COMPLETED
        assert task.final_attempt().outcome is AttemptOutcome.SUCCESS

    def test_passthrough_properties(self):
        task = SimTask(make_spec(task_id=3))
        assert task.task_id == 3
        assert task.category == "proc"
