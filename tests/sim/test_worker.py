"""Tests for worker capacity accounting."""

import pytest

from repro.core.resources import CORES, MEMORY, ResourceVector
from repro.sim.worker import Worker


def make_worker(cores=16, memory=64000, disk=64000):
    return Worker(0, ResourceVector.of(cores=cores, memory=memory, disk=disk))


class TestWorkerPlacement:
    def test_place_and_release(self):
        w = make_worker()
        alloc = ResourceVector.of(cores=4, memory=8000, disk=1000)
        w.place(1, alloc)
        assert w.n_running == 1
        assert w.free_capacity()[CORES] == 12
        released = w.release(1, held_for=10.0)
        assert released == alloc
        assert w.n_running == 0
        assert w.free_capacity()[CORES] == 16
        assert w.busy_time == 10.0

    def test_can_fit_respects_all_dimensions(self):
        w = make_worker()
        w.place(1, ResourceVector.of(cores=1, memory=60000, disk=100))
        assert not w.can_fit(ResourceVector.of(cores=1, memory=8000, disk=100))
        assert w.can_fit(ResourceVector.of(cores=1, memory=4000, disk=100))

    def test_exact_fill_allowed(self):
        w = make_worker()
        w.place(1, ResourceVector.of(cores=16, memory=64000, disk=64000))
        assert w.n_running == 1
        assert not w.has_headroom()

    def test_overcommit_rejected(self):
        w = make_worker(cores=2)
        w.place(1, ResourceVector.of(cores=2, memory=100, disk=100))
        with pytest.raises(ValueError, match="does not fit"):
            w.place(2, ResourceVector.of(cores=1, memory=100, disk=100))

    def test_duplicate_placement_rejected(self):
        w = make_worker()
        w.place(1, ResourceVector.of(cores=1, memory=100, disk=100))
        with pytest.raises(ValueError, match="already"):
            w.place(1, ResourceVector.of(cores=1, memory=100, disk=100))

    def test_release_unknown_task_rejected(self):
        with pytest.raises(KeyError):
            make_worker().release(42)

    def test_unknown_resource_request_fails_fit(self):
        from repro.core.resources import RESOURCES

        gpu = RESOURCES.register("test_gpu_kind", unit="devices")
        w = make_worker()
        assert not w.can_fit(ResourceVector({gpu: 1.0}))

    def test_float_residue_never_blocks_full_capacity(self):
        """Regression: fractional churn must not leave phantom commitments."""
        w = make_worker()
        for round_trip in range(200):
            alloc = ResourceVector.of(cores=3.92781, memory=11506.8, disk=12247.6)
            w.place(round_trip, alloc)
            w.release(round_trip)
        assert w.can_fit(ResourceVector.of(cores=16, memory=64000, disk=64000))

    def test_headroom_requires_slack_everywhere(self):
        w = make_worker()
        assert w.has_headroom()
        w.place(1, ResourceVector.of(cores=16, memory=100, disk=100))
        assert not w.has_headroom()  # cores exhausted

    def test_evict_all(self):
        w = make_worker()
        a1 = ResourceVector.of(cores=1, memory=100, disk=100)
        a2 = ResourceVector.of(cores=2, memory=200, disk=200)
        w.place(1, a1)
        w.place(2, a2)
        evicted = w.evict_all(now=50.0)
        assert evicted == {1: a1, 2: a2}
        assert w.n_running == 0
        assert not w.alive
        assert w.left_at == 50.0
        assert w.free_capacity()[CORES] == 16

    def test_committed_tracks_sum(self):
        w = make_worker()
        w.place(1, ResourceVector.of(cores=1, memory=100, disk=100))
        w.place(2, ResourceVector.of(cores=2, memory=200, disk=200))
        assert w.committed[CORES] == pytest.approx(3)
        assert w.committed[MEMORY] == pytest.approx(300)

    def test_zero_capacity_rejected(self):
        with pytest.raises(ValueError):
            Worker(0, ResourceVector())

    def test_running_task_ids(self):
        w = make_worker()
        w.place(7, ResourceVector.of(cores=1, memory=1, disk=1))
        assert w.running_task_ids == (7,)
