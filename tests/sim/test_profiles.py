"""Tests for consumption profiles (kill-time semantics)."""

import pytest

from repro.core.resources import CORES, MEMORY, TIME, ResourceVector
from repro.sim.profiles import (
    InstantPeakProfile,
    LinearRampProfile,
    StepProfile,
)


class TestLinearRampProfile:
    def test_sufficient_allocation_succeeds(self):
        profile = LinearRampProfile()
        verdict = profile.check(
            allocation=ResourceVector.of(cores=2, memory=1000),
            consumption=ResourceVector.of(cores=1, memory=900),
            duration=100.0,
        )
        assert verdict.success
        assert verdict.fraction == 1.0
        assert verdict.observed == ResourceVector.of(cores=1, memory=900)

    def test_exact_allocation_succeeds(self):
        profile = LinearRampProfile()
        verdict = profile.check(
            allocation=ResourceVector.of(memory=900),
            consumption=ResourceVector.of(memory=900),
            duration=10.0,
        )
        assert verdict.success

    def test_kill_at_ramp_crossing(self):
        profile = LinearRampProfile(peak_fraction=1.0)
        verdict = profile.check(
            allocation=ResourceVector.of(memory=500),
            consumption=ResourceVector.of(memory=1000),
            duration=100.0,
        )
        assert not verdict.success
        assert verdict.exhausted == (MEMORY,)
        assert verdict.fraction == pytest.approx(0.5)
        # Observed at kill = the allocation itself.
        assert verdict.observed[MEMORY] == 500.0

    def test_peak_fraction_scales_kill_time(self):
        early = LinearRampProfile(peak_fraction=0.25)
        verdict = early.check(
            allocation=ResourceVector.of(memory=500),
            consumption=ResourceVector.of(memory=1000),
            duration=100.0,
        )
        assert verdict.fraction == pytest.approx(0.125)

    def test_earliest_crossing_wins(self):
        profile = LinearRampProfile(peak_fraction=1.0)
        verdict = profile.check(
            allocation=ResourceVector.of(cores=1, memory=900),
            consumption=ResourceVector.of(cores=4, memory=1000),  # cores cross at 0.25
            duration=100.0,
        )
        assert verdict.exhausted == (CORES,)
        assert verdict.fraction == pytest.approx(0.25)
        # Memory observed at the kill fraction.
        assert verdict.observed[MEMORY] == pytest.approx(250.0)

    def test_time_limit_enforced(self):
        profile = LinearRampProfile()
        verdict = profile.check(
            allocation=ResourceVector.of(memory=2000),
            consumption=ResourceVector.of(memory=1000),
            duration=100.0,
            time_limit=40.0,
        )
        assert verdict.exhausted == (TIME,)
        assert verdict.fraction == pytest.approx(0.4)

    def test_resource_kill_beats_later_time_limit(self):
        profile = LinearRampProfile(peak_fraction=1.0)
        verdict = profile.check(
            allocation=ResourceVector.of(memory=100),
            consumption=ResourceVector.of(memory=1000),
            duration=100.0,
            time_limit=90.0,
        )
        assert verdict.exhausted == (MEMORY,)

    def test_invalid_peak_fraction(self):
        with pytest.raises(ValueError):
            LinearRampProfile(peak_fraction=0.0)
        with pytest.raises(ValueError):
            LinearRampProfile(peak_fraction=1.5)

    def test_detection_floor(self):
        # Tiny allocations are detected quickly but not at exactly t=0.
        profile = LinearRampProfile()
        verdict = profile.check(
            allocation=ResourceVector.of(memory=1e-6),
            consumption=ResourceVector.of(memory=1e6),
            duration=100.0,
        )
        assert 0 < verdict.fraction <= 0.01 + 1e-9


class TestInstantPeakProfile:
    def test_insufficient_allocation_killed_immediately(self):
        profile = InstantPeakProfile()
        verdict = profile.check(
            allocation=ResourceVector.of(memory=500),
            consumption=ResourceVector.of(memory=1000),
            duration=100.0,
        )
        assert not verdict.success
        assert verdict.fraction <= 0.01 + 1e-9

    def test_sufficient_allocation_succeeds(self):
        profile = InstantPeakProfile()
        verdict = profile.check(
            allocation=ResourceVector.of(memory=1000),
            consumption=ResourceVector.of(memory=1000),
            duration=100.0,
        )
        assert verdict.success


class TestStepProfile:
    def test_kill_at_step(self):
        profile = StepProfile(step_fraction=0.6, baseline_fraction=0.1)
        verdict = profile.check(
            allocation=ResourceVector.of(memory=500),
            consumption=ResourceVector.of(memory=1000),
            duration=100.0,
        )
        assert verdict.fraction == pytest.approx(0.6)
        assert verdict.exhausted == (MEMORY,)

    def test_below_baseline_killed_early(self):
        profile = StepProfile(step_fraction=0.6, baseline_fraction=0.5)
        verdict = profile.check(
            allocation=ResourceVector.of(memory=100),  # below 500 baseline
            consumption=ResourceVector.of(memory=1000),
            duration=100.0,
        )
        assert verdict.fraction <= 0.01 + 1e-9

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            StepProfile(step_fraction=0.0)
        with pytest.raises(ValueError):
            StepProfile(baseline_fraction=1.0)

    def test_consumed_at(self):
        profile = StepProfile(step_fraction=0.5, baseline_fraction=0.2)
        assert profile.consumed_at(1000.0, 0.3) == pytest.approx(200.0)
        assert profile.consumed_at(1000.0, 0.7) == pytest.approx(1000.0)
