"""Golden-trace regression tests: byte-identical simulation replay.

Each scenario below is fully seeded; its canonical event trace is
committed under ``tests/golden/``.  Any change to event ordering, float
arithmetic, RNG consumption or fault scheduling shows up as a trace
diff — deliberate behaviour changes must regenerate the goldens with::

    REGEN_GOLDEN=1 PYTHONPATH=src python -m pytest tests/sim/test_golden_traces.py

and the diff reviewed like any other code change.
"""

import os
from pathlib import Path

import pytest

from repro.core.allocator import AllocatorConfig, ExploratoryConfig
from repro.core.resources import ResourceVector
from repro.sim.faults import FaultConfig, FixedPreemptions, make_fault_config
from repro.sim.manager import SimulationConfig, WorkflowManager
from repro.sim.pool import ChurnConfig, PoolConfig
from repro.sim.resilience import (
    CircuitBreakerConfig,
    ResilienceConfig,
    RetryPolicyConfig,
    WatchdogConfig,
)
from repro.sim.trace import TraceRecorder
from repro.workflows.spec import TaskSpec, WorkflowSpec

GOLDEN_DIR = Path(__file__).resolve().parent.parent / "golden"


def _workflow(n=12):
    tasks = [
        TaskSpec(
            task_id=i,
            category="proc" if i % 3 else "merge",
            consumption=ResourceVector.of(
                cores=1 + (i % 2), memory=600.0 + 150.0 * (i % 5), disk=100.0
            ),
            duration=40.0 + 7.0 * (i % 4),
        )
        for i in range(n)
    ]
    return WorkflowSpec("golden", tasks)


def _poison_workflow(n=12):
    """The golden workflow plus one poison task whose memory footprint
    exceeds every worker (16 GB), so it exhausts on every attempt."""
    tasks = list(_workflow(n).tasks)
    tasks.append(
        TaskSpec(
            task_id=n,
            category="proc",
            consumption=ResourceVector.of(cores=1, memory=48000.0, disk=100.0),
            duration=40.0,
        )
    )
    return WorkflowSpec("golden", tasks)


def _resilience():
    """The quarantine scenario's policy: every knob exercised at once —
    bounded retries with jittered backoff, breaker and watchdog."""
    return ResilienceConfig(
        retry=RetryPolicyConfig(
            budget=4, backoff_base=2.0, jitter=0.25, seed=13
        ),
        breaker=CircuitBreakerConfig(
            enabled=True, window=6, failure_threshold=0.5, cooldown=120.0
        ),
        watchdog=WatchdogConfig(enabled=True, window=600.0),
    )


def _config(faults=None, churn=None, resilience=None):
    return SimulationConfig(
        allocator=AllocatorConfig(
            algorithm="quantized_bucketing",
            seed=7,
            exploratory=ExploratoryConfig(min_records=3),
        ),
        pool=PoolConfig(
            n_workers=3,
            capacity=ResourceVector.of(cores=8, memory=16000, disk=16000),
            churn=churn if churn is not None else ChurnConfig(),
            seed=11,
        ),
        faults=faults,
        resilience=resilience,
    )


def _trace(config, workflow=None) -> str:
    manager = WorkflowManager(
        workflow if workflow is not None else _workflow(), config
    )
    recorder = TraceRecorder(manager)
    manager.run()
    return recorder.text()


SCENARIOS = {
    "baseline": lambda: _trace(_config()),
    "fixed_preemption": lambda: _trace(
        _config(
            faults=FaultConfig(
                preemption=FixedPreemptions(times=(45.0, 95.0)), seed=5
            )
        )
    ),
    "poisson_chaos": lambda: _trace(
        _config(faults=make_fault_config("chaos", rate=1 / 90.0, seed=5))
    ),
    "churny_pool": lambda: _trace(
        _config(
            churn=ChurnConfig(
                mean_lifetime=120.0,
                mean_interarrival=60.0,
                min_workers=2,
                max_workers=5,
            )
        )
    ),
    "quarantine": lambda: _trace(
        _config(resilience=_resilience()), workflow=_poison_workflow()
    ),
}


@pytest.mark.parametrize("name", sorted(SCENARIOS))
def test_golden_trace(name):
    trace = SCENARIOS[name]()
    path = GOLDEN_DIR / f"{name}.trace"
    if os.environ.get("REGEN_GOLDEN"):
        from repro.checkpoint import write_text_atomic

        write_text_atomic(str(path), trace)
        pytest.skip(f"regenerated {path.name}")
    assert path.exists(), (
        f"missing golden file {path}; run with REGEN_GOLDEN=1 to create it"
    )
    golden = path.read_text()
    assert trace == golden, (
        f"trace for scenario {name!r} diverged from {path.name} "
        f"({len(trace.splitlines())} vs {len(golden.splitlines())} events); "
        "if the change is intentional, regenerate with REGEN_GOLDEN=1"
    )


@pytest.mark.parametrize("name", sorted(SCENARIOS))
def test_scenario_replays_identically_in_process(name):
    """Two back-to-back runs of the same scenario are byte-identical."""
    assert SCENARIOS[name]() == SCENARIOS[name]()
