"""Kill-and-retry paths: the allocator's escalation ladder under fire.

Covers the satellite scenarios from the robustness issue: a retry that
climbs past the largest bucket must fall back to doubling, an attempt
evicted while running is re-enqueued with its pinned allocation, and
``predict_retry`` keeps making progress across repeated failures.
"""

import pytest

from repro.core.allocator import (
    AllocatorConfig,
    ExploratoryConfig,
    TaskOrientedAllocator,
)
from repro.core.resources import CORES, DISK, MEMORY, ResourceVector
from repro.sim.faults import FaultConfig, FixedPreemptions
from repro.sim.manager import SimulationConfig, WorkflowManager
from repro.sim.pool import PoolConfig
from repro.sim.task import AttemptOutcome
from repro.workflows.spec import TaskSpec, WorkflowSpec

CAPACITY = ResourceVector.of(cores=16, memory=64000, disk=64000)


def trained_allocator(algorithm="quantized_bucketing", peaks=(900, 1100, 2000, 2100)):
    """Allocator with enough completions to leave exploration."""
    allocator = TaskOrientedAllocator(
        AllocatorConfig(
            algorithm=algorithm,
            machine_capacity=CAPACITY,
            exploratory=ExploratoryConfig(min_records=len(peaks)),
            seed=0,
        )
    )
    for task_id, peak in enumerate(peaks, start=1):
        allocator.observe(
            "proc",
            ResourceVector.of(cores=1, memory=peak, disk=100),
            task_id=task_id,
        )
    assert not allocator.in_exploration("proc")
    return allocator


class TestRetryLadder:
    def test_retry_climbs_to_next_bucket(self):
        allocator = trained_allocator()
        previous = ResourceVector.of(cores=1, memory=900, disk=100)
        observed = ResourceVector.of(cores=1, memory=950, disk=50)
        retry = allocator.allocate_retry(
            "proc", task_id=10, previous=previous, observed=observed,
            exhausted=(MEMORY,),
        )
        # Next bucket representative is above the failed 900 MB limit
        # but at most the largest seen peak.
        assert 950 < retry[MEMORY] <= 2100
        # Non-exhausted resources are never grown on retry.
        assert retry[CORES] == previous[CORES]
        assert retry[DISK] == previous[DISK]

    def test_retry_past_largest_bucket_falls_back_to_doubling(self):
        allocator = trained_allocator()
        largest = 2100.0  # top bucket representative ceiling
        previous = ResourceVector.of(cores=1, memory=largest, disk=100)
        observed = ResourceVector.of(cores=1, memory=largest, disk=50)
        retry = allocator.allocate_retry(
            "proc", task_id=11, previous=previous, observed=observed,
            exhausted=(MEMORY,),
        )
        # No bucket above the previous allocation exists: doubling.
        assert retry[MEMORY] == pytest.approx(2 * largest)

    def test_repeated_failures_grow_monotonically_to_capacity(self):
        allocator = trained_allocator()
        current = ResourceVector.of(cores=1, memory=900, disk=100)
        values = [current[MEMORY]]
        for attempt in range(12, 30):
            current = allocator.allocate_retry(
                "proc",
                task_id=attempt,
                previous=current,
                observed=current,
                exhausted=(MEMORY,),
            )
            values.append(current[MEMORY])
            if current[MEMORY] >= CAPACITY[MEMORY]:
                break
        assert values == sorted(values)  # never shrinks
        assert values[-1] == CAPACITY[MEMORY]  # ladder tops out at capacity
        assert len(values) < 15  # geometric growth terminates fast

    def test_doubling_from_zero_exploratory_base(self):
        """A zero previous allocation must still make progress."""
        allocator = trained_allocator(algorithm="max_seen")
        retry = allocator.allocate_retry(
            "proc",
            task_id=50,
            previous=ResourceVector.of(cores=1, memory=3000, disk=0),
            observed=ResourceVector.of(cores=1, memory=100, disk=0),
            exhausted=(DISK,),
        )
        assert retry[DISK] > 0


class TestEvictionRequeue:
    def _run(self, faults):
        tasks = [
            TaskSpec(
                task_id=i,
                category="proc",
                consumption=ResourceVector.of(cores=1, memory=800, disk=100),
                duration=60.0,
            )
            for i in range(8)
        ]
        config = SimulationConfig(
            allocator=AllocatorConfig(
                algorithm="max_seen",
                seed=1,
                exploratory=ExploratoryConfig(min_records=3),
            ),
            pool=PoolConfig(n_workers=2, capacity=CAPACITY, seed=2),
            faults=faults,
        )
        manager = WorkflowManager(WorkflowSpec("evict", tasks), config)
        return manager, manager.run()

    def test_evicted_attempt_requeues_with_pinned_allocation(self):
        faults = FaultConfig(preemption=FixedPreemptions(times=(30.0,)), seed=0)
        manager, result = self._run(faults)
        assert result.n_tasks == 8
        assert result.n_evicted_attempts > 0
        for task in manager.tasks():
            for prev, nxt in zip(task.attempts, task.attempts[1:]):
                if prev.outcome is AttemptOutcome.EVICTED:
                    # Eviction is not the task's fault: the retry keeps
                    # the same allocation instead of escalating.
                    assert nxt.allocation == prev.allocation

    def test_eviction_not_counted_as_failure(self):
        faults = FaultConfig(preemption=FixedPreemptions(times=(30.0,)), seed=0)
        manager, result = self._run(faults)
        ledger = manager.ledger
        assert ledger.n_evicted_attempts == result.n_evicted_attempts
        # Evicted holdings sit in the eviction bucket, not failed_alloc,
        # so AWE stays within (0, 1] (worker-count independence).
        for res in ledger.resources:
            assert 0.0 < ledger.awe(res) <= 1.0 + 1e-9
