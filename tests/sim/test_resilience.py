"""Task-level resilience: retry policies, quarantine, breaker, watchdog.

Three layers of coverage:

* unit tests of the policy machinery in isolation (config validation,
  breaker state machine, watchdog latching, dead-letter round-trips,
  the retry decision table, the jitter stream's independence);
* integration tests of the poison-task demo: a task that can never fit
  any worker lands in the dead-letter ledger within its budget while
  the rest of the workflow completes, AWE stays honest, and the whole
  scenario is deterministic and parity-clean when disabled;
* a conservation property over all seven paper algorithms — no task is
  ever lost: submitted == completed + quarantined, each exactly once.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.allocator import AllocatorConfig, ExploratoryConfig, TaskOrientedAllocator
from repro.core.resources import CORES, DISK, MEMORY, ResourceVector
from repro.experiments.config import PAPER_ALGORITHMS
from repro.experiments.robustness import run_policy_matrix, write_policy_matrix
from repro.sim.faults import make_fault_config
from repro.sim.manager import SimulationConfig, SimulationResult, WorkflowManager
from repro.sim.pool import PoolConfig
from repro.sim.resilience import (
    BreakerState,
    CircuitBreaker,
    CircuitBreakerConfig,
    DeadLetterEntry,
    DeadLetterLedger,
    ResilienceConfig,
    ResilienceEngine,
    RetryPolicyConfig,
    StallWatchdog,
    WatchdogConfig,
)
from repro.sim.task import AttemptOutcome, TaskState
from repro.sim.trace import TraceRecorder
from repro.workflows.spec import TaskSpec, WorkflowSpec

from tests.sim.test_golden_traces import _config, _poison_workflow, _resilience, _workflow


# ---------------------------------------------------------------------------
# Config validation
# ---------------------------------------------------------------------------


def test_retry_policy_rejects_bad_knobs():
    with pytest.raises(ValueError):
        RetryPolicyConfig(budget=0)
    with pytest.raises(ValueError):
        RetryPolicyConfig(deadline=0.0)
    with pytest.raises(ValueError):
        RetryPolicyConfig(backoff_base=-1.0)
    with pytest.raises(ValueError):
        RetryPolicyConfig(backoff_factor=0.5)
    with pytest.raises(ValueError):
        RetryPolicyConfig(backoff_base=10.0, backoff_max=1.0)
    with pytest.raises(ValueError):
        RetryPolicyConfig(jitter=1.0)


def test_default_config_is_disabled():
    config = ResilienceConfig()
    assert not config.retry.bounded
    assert not config.quarantine_enabled
    assert not config.enabled


@pytest.mark.parametrize(
    "kwargs",
    [
        {"retry": RetryPolicyConfig(budget=3)},
        {"retry": RetryPolicyConfig(deadline=100.0)},
        {"retry": RetryPolicyConfig(backoff_base=1.0)},
        {"breaker": CircuitBreakerConfig(enabled=True)},
        {"watchdog": WatchdogConfig(enabled=True)},
    ],
)
def test_any_single_knob_enables_the_engine(kwargs):
    assert ResilienceConfig(**kwargs).enabled


# ---------------------------------------------------------------------------
# Circuit breaker state machine
# ---------------------------------------------------------------------------


def _tripped_breaker(config=None, now=0.0):
    breaker = CircuitBreaker(
        config or CircuitBreakerConfig(enabled=True, window=4, cooldown=60.0)
    )
    for _ in range(4):
        breaker.record_outcome(False, now)
    return breaker


def test_breaker_opens_only_on_a_full_window():
    breaker = CircuitBreaker(CircuitBreakerConfig(enabled=True, window=4))
    for _ in range(3):
        breaker.record_outcome(False, 0.0)
        assert breaker.state(0.0) is BreakerState.CLOSED
    breaker.record_outcome(False, 0.0)
    assert breaker.state(0.0) is BreakerState.OPEN
    assert breaker.trips == 1


def test_breaker_half_opens_after_cooldown_and_closes_on_probes():
    breaker = _tripped_breaker()
    assert breaker.conservative(10.0)
    assert breaker.state(59.0) is BreakerState.OPEN
    assert breaker.state(60.0) is BreakerState.HALF_OPEN
    assert not breaker.conservative(60.0)
    for _ in range(3):  # default half_open_probes
        breaker.record_outcome(True, 61.0)
    assert breaker.state(61.0) is BreakerState.CLOSED


def test_breaker_reopens_on_half_open_failure():
    breaker = _tripped_breaker()
    breaker.state(60.0)  # -> half-open
    breaker.record_outcome(False, 61.0)
    assert breaker.state(61.0) is BreakerState.OPEN
    assert breaker.trips == 2
    # The new cooldown restarts from the re-trip time.
    assert breaker.state(61.0 + 59.0) is BreakerState.OPEN
    assert breaker.state(61.0 + 60.0) is BreakerState.HALF_OPEN


def test_breaker_epoch_bumps_on_every_transition():
    breaker = _tripped_breaker()
    epoch_open = breaker.epoch
    assert epoch_open > 0
    breaker.state(60.0)  # half-open
    assert breaker.epoch == epoch_open + 1
    for _ in range(3):
        breaker.record_outcome(True, 61.0)  # closed
    assert breaker.epoch == epoch_open + 2


def test_breaker_force_open_and_state_round_trip():
    breaker = CircuitBreaker(CircuitBreakerConfig(enabled=True, window=4))
    breaker.force_open(5.0)
    assert breaker.state(5.0) is BreakerState.OPEN
    assert breaker.trips == 1

    clone = CircuitBreaker(breaker.config)
    clone.load_state(breaker.state_dict())
    assert clone.state_dict() == breaker.state_dict()


# ---------------------------------------------------------------------------
# Stall watchdog
# ---------------------------------------------------------------------------


def test_watchdog_latches_one_stall_per_episode():
    dog = StallWatchdog(WatchdogConfig(enabled=True, window=100.0))
    assert not dog.check(50.0, work_outstanding=True)
    assert dog.check(100.0, work_outstanding=True)  # new episode
    assert not dog.check(500.0, work_outstanding=True)  # latched
    assert dog.stalls == 1
    dog.progress(500.0)
    assert not dog.stalled
    assert dog.check(600.0, work_outstanding=True)
    assert dog.stalls == 2


def test_watchdog_idle_pool_without_work_is_not_a_stall():
    dog = StallWatchdog(WatchdogConfig(enabled=True, window=100.0))
    assert not dog.check(1000.0, work_outstanding=False)
    assert dog.stalls == 0
    # The quiet period reset the clock: outstanding work stalls only
    # after a fresh full window.
    assert not dog.check(1050.0, work_outstanding=True)
    assert dog.check(1100.0, work_outstanding=True)


# ---------------------------------------------------------------------------
# Dead-letter ledger
# ---------------------------------------------------------------------------


def test_dead_letter_ledger_round_trip_and_reasons():
    ledger = DeadLetterLedger()
    ledger.append(
        DeadLetterEntry(3, "proc", "retry_budget_exceeded", 10.0, 4, 4, 0)
    )
    ledger.append(DeadLetterEntry(5, "merge", "deadline_exceeded", 20.0, 2, 1, 1))
    ledger.append(
        DeadLetterEntry(6, "merge", "deadline_exceeded", 21.0, 0, 0, 0)
    )
    assert len(ledger) == 3
    assert 5 in ledger and 4 not in ledger
    assert ledger.by_reason() == {
        "retry_budget_exceeded": 1,
        "deadline_exceeded": 2,
    }

    clone = DeadLetterLedger()
    clone.load_state(ledger.state_dict())
    assert clone.entries() == ledger.entries()


# ---------------------------------------------------------------------------
# Retry decisions
# ---------------------------------------------------------------------------


def test_budget_counts_exhaustions_not_evictions_by_default():
    engine = ResilienceEngine(ResilienceConfig(retry=RetryPolicyConfig(budget=2)))
    assert engine.on_requeue(1, "worker_lost", 0.0).retry
    assert engine.on_requeue(1, "fault_kill", 1.0).retry
    assert engine.on_requeue(1, "exhausted", 2.0).retry
    decision = engine.on_requeue(1, "exhausted", 3.0)
    assert not decision.retry
    assert decision.reason == "retry_budget_exceeded"


def test_count_evictions_charges_every_failure():
    engine = ResilienceEngine(
        ResilienceConfig(retry=RetryPolicyConfig(budget=2, count_evictions=True))
    )
    assert engine.on_requeue(1, "worker_lost", 0.0).retry
    assert not engine.on_requeue(1, "fault_kill", 1.0).retry


def test_deadline_measured_from_first_enqueue():
    engine = ResilienceEngine(ResilienceConfig(retry=RetryPolicyConfig(deadline=50.0)))
    engine.note_enqueued(1, 100.0)
    assert engine.on_requeue(1, "exhausted", 149.0).retry
    decision = engine.on_requeue(1, "exhausted", 150.0)
    assert not decision.retry
    assert decision.reason == "deadline_exceeded"
    # The deadline-only probe used by the dispatch-fault path agrees.
    assert engine.deadline_exceeded(1, 150.0)
    assert not engine.deadline_exceeded(1, 149.0)


def test_backoff_ladder_grows_and_caps():
    engine = ResilienceEngine(
        ResilienceConfig(
            retry=RetryPolicyConfig(backoff_base=2.0, backoff_factor=2.0, backoff_max=5.0)
        )
    )
    delays = [engine.on_requeue(1, "exhausted", float(t)).delay for t in range(3)]
    assert delays == [2.0, 4.0, 5.0]


def test_backoff_jitter_uses_its_own_seeded_stream():
    """Delays reproduce exactly from the policy seed alone — the jitter
    stream is the engine's own generator, so enabling it cannot consume
    draws from (or be perturbed by) any other stream."""
    retry = RetryPolicyConfig(backoff_base=1.0, backoff_factor=2.0, jitter=0.5, seed=42)

    def delays():
        engine = ResilienceEngine(ResilienceConfig(retry=retry))
        return [engine.on_requeue(9, "exhausted", float(t)).delay for t in range(5)]

    reference = np.random.default_rng(42)
    expected = [
        min(300.0, 1.0 * 2.0**k) * (1.0 + 0.5 * float(reference.uniform(-1.0, 1.0)))
        for k in range(5)
    ]
    assert delays() == expected
    assert delays() == expected  # a fresh engine replays identically


# ---------------------------------------------------------------------------
# Capacity clamp (satellite: allocate_retry never outgrows the pool)
# ---------------------------------------------------------------------------


def test_allocate_retry_clamps_to_largest_alive_worker():
    allocator = TaskOrientedAllocator(
        AllocatorConfig(algorithm="quantized_bucketing", seed=0)
    )
    allocator.set_capacity_provider(
        lambda: ResourceVector.of(cores=8, memory=12000, disk=16000)
    )
    previous = ResourceVector.of(cores=1, memory=8000, disk=100)
    grown = allocator.allocate_retry(
        "proc", 0, previous=previous, observed=previous, exhausted=(MEMORY,)
    )
    # Doubling 8000 -> 16000 overshoots the largest alive worker; the
    # retry is clamped to 12000 and the clamp recorded per category.
    assert grown[MEMORY] == pytest.approx(12000.0)
    assert allocator.capacity_clamps == {"proc": 1}
    assert allocator.capacity_clamps_total == 1


def test_no_capacity_provider_keeps_paper_behaviour():
    allocator = TaskOrientedAllocator(
        AllocatorConfig(algorithm="quantized_bucketing", seed=0)
    )
    previous = ResourceVector.of(cores=1, memory=8000, disk=100)
    grown = allocator.allocate_retry(
        "proc", 0, previous=previous, observed=previous, exhausted=(MEMORY,)
    )
    assert grown[MEMORY] == pytest.approx(16000.0)
    assert allocator.capacity_clamps_total == 0


def test_conservative_allocation_is_the_whole_machine():
    allocator = TaskOrientedAllocator(AllocatorConfig(algorithm="max_seen", seed=0))
    conservative = allocator.conservative_allocation()
    for res in (CORES, MEMORY, DISK):
        assert conservative[res] == allocator.config.machine_capacity[res]


# ---------------------------------------------------------------------------
# Integration: the poison-task demo
# ---------------------------------------------------------------------------


def _run_poison(faults=None):
    manager = WorkflowManager(
        _poison_workflow(), _config(faults=faults, resilience=_resilience())
    )
    recorder = TraceRecorder(manager)
    result = manager.run()
    return manager, result, recorder.text()


def test_poison_task_lands_in_dead_letter_and_workflow_completes():
    manager, result, _ = _run_poison()
    poison_id = max(t.task_id for t in manager.tasks())

    assert result.n_quarantined == 1
    (entry,) = result.dead_letters
    assert entry.task_id == poison_id
    assert entry.reason == "retry_budget_exceeded"
    assert entry.n_exhausted == _resilience().retry.budget

    # Every healthy task completed exactly once; the poison task never did.
    for task in manager.tasks():
        if task.task_id == poison_id:
            assert task.state is TaskState.QUARANTINED
            assert all(a.outcome is not AttemptOutcome.SUCCESS for a in task.attempts)
        else:
            assert task.state is TaskState.COMPLETED

    # The watchdog never fired: quarantine IS forward progress.
    assert result.resilience_stats.watchdog_stalls == 0
    assert result.resilience_stats.quarantined == 1


def test_poison_attempts_are_charged_as_failed_allocation_waste():
    manager, result, _ = _run_poison()
    ledger = result.ledger
    assert ledger.n_quarantined == 1
    assert ledger.identity_holds()
    # The poison task is 'proc': its burned attempts show up as
    # failed-allocation waste, and AWE stays strictly below 1.
    assert ledger.waste(MEMORY).failed_allocation > 0.0
    assert 0.0 < ledger.awe(MEMORY) < 1.0


def test_makespan_covers_the_quarantine_time():
    _, result, _ = _run_poison()
    (entry,) = result.dead_letters
    assert result.makespan >= entry.time


def test_poison_scenario_with_faults_is_bit_deterministic():
    """Quarantine + breaker + backoff jitter + Poisson faults: two runs
    from the same seeds are byte-identical, trace and result alike."""
    faults = make_fault_config("poisson", rate=1 / 150.0, seed=5)
    _, result_a, trace_a = _run_poison(faults=faults)
    _, result_b, trace_b = _run_poison(faults=faults)
    assert trace_a == trace_b

    def simulated_state(result):
        state = result.state_dict()
        state.pop("wall_clock_seconds")  # host time, not simulated state
        return state

    assert simulated_state(result_a) == simulated_state(result_b)
    assert result_a.n_quarantined >= 1


def test_result_state_dict_round_trips_resilience_fields():
    _, result, _ = _run_poison()
    clone = SimulationResult.from_state(result.state_dict())
    assert clone.n_quarantined == result.n_quarantined
    assert clone.dead_letters == result.dead_letters
    assert clone.resilience_stats == result.resilience_stats
    assert clone.state_dict() == result.state_dict()


def test_disabled_resilience_is_parity_clean():
    """A permissive-but-enabled policy (huge budget, no backoff, no
    breaker) replays the default-off trace byte-for-byte: consulting the
    engine must not perturb event order, RNG draws or accounting."""

    def run(resilience):
        manager = WorkflowManager(_workflow(), _config(resilience=resilience))
        recorder = TraceRecorder(manager)
        result = manager.run()
        return recorder.text(), result

    baseline_trace, baseline = run(None)
    permissive_trace, permissive = run(
        ResilienceConfig(retry=RetryPolicyConfig(budget=10**6))
    )
    assert permissive_trace == baseline_trace
    assert permissive.ledger.state_dict() == baseline.ledger.state_dict()
    assert permissive.n_quarantined == 0


# ---------------------------------------------------------------------------
# Conservation property: no task is ever lost
# ---------------------------------------------------------------------------

task_strategy = st.tuples(
    st.floats(min_value=0.5, max_value=8.0),       # cores
    st.floats(min_value=100.0, max_value=15000.0),  # memory
    st.floats(min_value=10.0, max_value=5000.0),    # disk
    st.floats(min_value=5.0, max_value=120.0),      # duration
)


def _conservation_workflow(raw_tasks):
    tasks = [
        TaskSpec(
            task_id=i,
            category="fuzz",
            consumption=ResourceVector.of(cores=c, memory=m, disk=d),
            duration=t,
        )
        for i, (c, m, d, t) in enumerate(raw_tasks)
    ]
    tasks.append(
        TaskSpec(
            task_id=len(tasks),
            category="poison",
            consumption=ResourceVector.of(cores=1, memory=99000.0, disk=100.0),
            duration=30.0,
        )
    )
    return WorkflowSpec("conservation", tasks)


@settings(max_examples=14, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(
    st.lists(task_strategy, min_size=3, max_size=10),
    st.sampled_from(PAPER_ALGORITHMS),
    st.integers(min_value=2, max_value=8),
)
def test_no_task_lost_under_quarantine(raw_tasks, algorithm, budget):
    """submitted == completed + quarantined, each task exactly once, for
    every paper algorithm; the always-on invariant checker audits the
    conservation law after every event and would raise on any leak."""
    manager = WorkflowManager(
        _conservation_workflow(raw_tasks),
        SimulationConfig(
            allocator=AllocatorConfig(
                algorithm=algorithm,
                seed=3,
                exploratory=ExploratoryConfig(min_records=3),
            ),
            pool=PoolConfig(
                n_workers=3,
                capacity=ResourceVector.of(cores=16, memory=32000, disk=32000),
                seed=3,
            ),
            resilience=ResilienceConfig(retry=RetryPolicyConfig(budget=budget)),
        ),
    )
    result = manager.run()
    assert manager.invariants.events_checked > 0
    assert result.n_tasks == len(raw_tasks) + 1
    assert manager.completed_tasks + result.n_quarantined == result.n_tasks
    assert result.n_quarantined >= 1  # the poison task can never fit

    quarantined_ids = {entry.task_id for entry in result.dead_letters}
    for task in manager.tasks():
        if task.task_id in quarantined_ids:
            assert task.state is TaskState.QUARANTINED
            assert all(a.outcome is not AttemptOutcome.SUCCESS for a in task.attempts)
        else:
            assert task.state is TaskState.COMPLETED
            successes = sum(
                1 for a in task.attempts if a.outcome is AttemptOutcome.SUCCESS
            )
            assert successes == 1
    assert result.ledger.identity_holds()


# ---------------------------------------------------------------------------
# Policy matrix (slow lane)
# ---------------------------------------------------------------------------


@pytest.mark.slow
def test_policy_matrix_small_sweep(tmp_path):
    from repro.experiments.config import ExperimentConfig

    result = run_policy_matrix(
        ExperimentConfig(n_tasks=40, n_workers=4, ramp_up_seconds=60.0),
        budgets=(None, 8),
        breaker_modes=(False, True),
        fault_rate=1 / 300.0,
        fault_seed=1,
    )
    cells = [(b, m) for b in (None, 8) for m in (False, True)]
    for cell in cells:
        assert cell in result.awe
        assert result.makespan[cell] > 0.0
    # Unbounded retry never dead-letters; breaker trips only when on.
    assert result.dead_letters[None, False] == 0
    assert result.dead_letters[None, True] == 0
    assert result.breaker_trips[None, False] == 0
    assert result.breaker_trips[8, False] == 0

    out = tmp_path / "matrix.json"
    write_policy_matrix(result, str(out))
    import json

    doc = json.loads(out.read_text())
    assert len(doc["cells"]) == 4
