"""Tests for the opportunistic worker pool."""

import pytest

from repro.core.resources import ResourceVector
from repro.sim.engine import SimulationEngine
from repro.sim.pool import ChurnConfig, PoolConfig, WorkerPool


def tiny_capacity():
    return ResourceVector.of(cores=4, memory=4000, disk=4000)


class TestPoolBasics:
    def test_initial_cohort(self):
        engine = SimulationEngine()
        pool = WorkerPool(engine, PoolConfig(n_workers=5, capacity=tiny_capacity()))
        assert pool.n_alive == 5
        assert pool.total_joined == 5
        assert pool.total_left == 0

    def test_find_fit_first_fit_order(self):
        engine = SimulationEngine()
        pool = WorkerPool(engine, PoolConfig(n_workers=3, capacity=tiny_capacity()))
        alloc = ResourceVector.of(cores=4, memory=100, disk=100)
        first = pool.find_fit(alloc)
        first.place(0, alloc)
        second = pool.find_fit(alloc)
        assert second is not None and second.worker_id != first.worker_id

    def test_find_fit_none_when_full(self):
        engine = SimulationEngine()
        pool = WorkerPool(engine, PoolConfig(n_workers=1, capacity=tiny_capacity()))
        worker = pool.find_fit(ResourceVector.of(cores=4, memory=1, disk=1))
        worker.place(0, ResourceVector.of(cores=4, memory=1, disk=1))
        assert pool.find_fit(ResourceVector.of(cores=1, memory=1, disk=1)) is None
        assert not pool.has_headroom()

    def test_invalid_config(self):
        with pytest.raises(ValueError):
            PoolConfig(n_workers=0)
        with pytest.raises(ValueError):
            PoolConfig(ramp_up_seconds=-1)
        with pytest.raises(ValueError):
            ChurnConfig(mean_lifetime=0)
        with pytest.raises(ValueError):
            ChurnConfig(min_workers=5, max_workers=2)


class TestRampUp:
    def test_ramp_spreads_arrivals(self):
        engine = SimulationEngine()
        pool = WorkerPool(
            engine,
            PoolConfig(n_workers=10, capacity=tiny_capacity(), ramp_up_seconds=100.0, seed=1),
        )
        assert pool.n_alive == 1  # only the seed worker at t=0
        engine.run(until=100.0)
        assert pool.n_alive == 10

    def test_join_callback_fires(self):
        engine = SimulationEngine()
        pool = WorkerPool(
            engine,
            PoolConfig(n_workers=4, capacity=tiny_capacity(), ramp_up_seconds=50.0, seed=1),
        )
        joined = []
        pool.on_worker_joined = lambda w: joined.append(w.worker_id)
        engine.run(until=50.0)
        assert len(joined) == 3  # all but the seed worker


class TestChurn:
    def test_departures_evict_tasks(self):
        engine = SimulationEngine()
        pool = WorkerPool(
            engine,
            PoolConfig(
                n_workers=3,
                capacity=tiny_capacity(),
                churn=ChurnConfig(mean_lifetime=10.0, min_workers=0),
                seed=2,
            ),
        )
        evictions = []
        pool.on_worker_leaving = lambda w, evicted: evictions.append((w.worker_id, evicted))
        alloc = ResourceVector.of(cores=1, memory=100, disk=100)
        for worker in pool.alive_workers():
            worker.place(worker.worker_id + 100, alloc)
        engine.run(until=200.0)
        assert pool.total_left == 3
        assert len(evictions) == 3
        assert all(evicted for _, evicted in evictions)

    def test_min_workers_floor_respected(self):
        engine = SimulationEngine()
        pool = WorkerPool(
            engine,
            PoolConfig(
                n_workers=3,
                capacity=tiny_capacity(),
                churn=ChurnConfig(mean_lifetime=5.0, min_workers=2),
                seed=3,
            ),
        )
        engine.run(until=100.0)
        assert pool.n_alive >= 2

    def test_arrivals_replenish(self):
        engine = SimulationEngine()
        pool = WorkerPool(
            engine,
            PoolConfig(
                n_workers=2,
                capacity=tiny_capacity(),
                churn=ChurnConfig(
                    mean_lifetime=20.0, mean_interarrival=10.0, min_workers=1, max_workers=5
                ),
                seed=4,
            ),
        )
        engine.run(until=500.0)
        assert pool.total_joined > 2
        assert 1 <= pool.n_alive <= 5

    def test_stop_halts_churn(self):
        engine = SimulationEngine()
        pool = WorkerPool(
            engine,
            PoolConfig(
                n_workers=2,
                capacity=tiny_capacity(),
                churn=ChurnConfig(mean_interarrival=5.0, max_workers=100),
                seed=5,
            ),
        )
        engine.run(until=50.0)
        pool.stop()
        engine.run()  # must drain despite the recurring arrival events
        assert engine.pending_events == 0


class TestFloorLivelock:
    """Regression: with arrivals disabled, suppressed departures used to
    re-arm forever and a bare ``engine.run()`` never drained."""

    def test_pinned_at_floor_draws_no_lifetime(self):
        engine = SimulationEngine()
        pool = WorkerPool(
            engine,
            PoolConfig(
                n_workers=1,
                capacity=tiny_capacity(),
                churn=ChurnConfig(mean_lifetime=10.0, min_workers=1),
                seed=3,
            ),
        )
        # No departure event should even be scheduled: the sole worker
        # can never leave, so drawing a lifetime would only livelock.
        assert engine.pending_events == 0
        engine.run(max_events=1000)
        assert pool.n_alive == 1

    def test_suppressed_departure_does_not_rearm_without_arrivals(self):
        engine = SimulationEngine()
        pool = WorkerPool(
            engine,
            PoolConfig(
                n_workers=3,
                capacity=tiny_capacity(),
                churn=ChurnConfig(mean_lifetime=10.0, min_workers=2),
                seed=3,
            ),
        )
        engine.run(max_events=1000)  # raises if departures re-arm forever
        assert engine.pending_events == 0
        assert pool.n_alive == 2

    def test_rearm_still_happens_when_arrivals_enabled(self):
        engine = SimulationEngine()
        pool = WorkerPool(
            engine,
            PoolConfig(
                n_workers=2,
                capacity=tiny_capacity(),
                churn=ChurnConfig(
                    mean_lifetime=15.0, mean_interarrival=10.0, min_workers=2, max_workers=4
                ),
                seed=6,
            ),
        )
        engine.run(until=300.0)
        pool.stop()
        engine.run()
        # With arrivals on, the population keeps turning over at the floor.
        assert pool.total_left > 0
        assert pool.n_alive >= 2


class TestFaultHooks:
    def test_preempt_worker_bypasses_floor_and_evicts(self):
        engine = SimulationEngine()
        pool = WorkerPool(
            engine,
            PoolConfig(
                n_workers=2,
                capacity=tiny_capacity(),
                churn=ChurnConfig(min_workers=2),
            ),
        )
        seen = []
        pool.on_worker_leaving = lambda worker, evicted: seen.append(
            (worker.worker_id, dict(evicted))
        )
        alloc = ResourceVector.of(cores=1, memory=100, disk=100)
        pool.worker(0).place(7, alloc)
        assert pool.preempt_worker(0)
        assert pool.n_alive == 1  # floor does not protect against faults
        assert pool.total_left == 1
        assert seen == [(0, {7: alloc})]
        assert not pool.preempt_worker(0)  # already gone
        assert not pool.preempt_worker(99)  # unknown

    def test_degrade_worker_shrinks_and_evicts_newest_first(self):
        engine = SimulationEngine()
        pool = WorkerPool(engine, PoolConfig(n_workers=1, capacity=tiny_capacity()))
        seen = []
        pool.on_worker_degraded = lambda worker, evicted: seen.append(
            (worker.worker_id, tuple(evicted))
        )
        worker = pool.worker(0)
        alloc = ResourceVector.of(cores=2, memory=1000, disk=100)
        worker.place(1, alloc)
        worker.place(2, alloc)
        half = tiny_capacity() * 0.5
        assert pool.degrade_worker(0, half)
        # 4 cores at half capacity == 2 cores: only the older task fits.
        assert worker.capacity == half
        assert worker.running_task_ids == (1,)
        assert seen == [(0, (2,))]
        assert not pool.degrade_worker(99, half)

    def test_degrade_cannot_grow_capacity(self):
        engine = SimulationEngine()
        pool = WorkerPool(engine, PoolConfig(n_workers=1, capacity=tiny_capacity()))
        with pytest.raises(ValueError):
            pool.worker(0).degrade(tiny_capacity() * 2.0)
