"""Unit tests for the deterministic fault-injection subsystem."""

from pathlib import Path

import pytest

from repro.core.allocator import AllocatorConfig, ExploratoryConfig
from repro.core.resources import ResourceVector
from repro.sim.engine import SimulationEngine
from repro.sim.faults import (
    DegradationConfig,
    DispatchFaultConfig,
    FaultConfig,
    FaultInjector,
    FixedPreemptions,
    PoissonPreemptions,
    TaskKillConfig,
    TracePreemptions,
    make_fault_config,
    parse_htcondor_eviction_log,
)
from repro.sim.manager import SimulationConfig, WorkflowManager
from repro.sim.pool import PoolConfig, WorkerPool
from repro.sim.task import AttemptOutcome
from repro.workflows.spec import TaskSpec, WorkflowSpec


def capacity():
    return ResourceVector.of(cores=8, memory=16000, disk=16000)


def make_workflow(n=30, duration=60.0, memory=500.0):
    tasks = [
        TaskSpec(
            task_id=i,
            category="proc",
            consumption=ResourceVector.of(cores=1, memory=memory, disk=100),
            duration=duration,
        )
        for i in range(n)
    ]
    return WorkflowSpec("faulty", tasks)


def sim_config(faults, n_workers=4, algorithm="max_seen", min_records=3, pool_seed=2):
    return SimulationConfig(
        allocator=AllocatorConfig(
            algorithm=algorithm,
            seed=1,
            exploratory=ExploratoryConfig(min_records=min_records),
        ),
        pool=PoolConfig(n_workers=n_workers, capacity=capacity(), seed=pool_seed),
        faults=faults,
    )


def bare_injector(config, n_workers=4):
    """An injector over a bare pool, no manager (for schedule tests)."""
    engine = SimulationEngine()
    pool = WorkerPool(engine, PoolConfig(n_workers=n_workers, capacity=capacity()))
    injector = FaultInjector(
        engine, pool, config, running_tasks=tuple, kill_task=lambda _tid: False
    )
    return engine, pool, injector


class TestConfigValidation:
    def test_rates_must_be_positive(self):
        with pytest.raises(ValueError):
            PoissonPreemptions(rate=0.0)
        with pytest.raises(ValueError):
            TaskKillConfig(rate=-1.0)
        with pytest.raises(ValueError):
            DegradationConfig(rate=0.0)

    def test_dispatch_probability_bounds(self):
        with pytest.raises(ValueError):
            DispatchFaultConfig(probability=0.0)
        with pytest.raises(ValueError):
            DispatchFaultConfig(probability=1.0)

    def test_degradation_factor_bounds(self):
        with pytest.raises(ValueError):
            DegradationConfig(rate=1.0, factor=1.0)
        with pytest.raises(ValueError):
            DegradationConfig(rate=1.0, floor_fraction=0.0)

    def test_negative_times_rejected(self):
        with pytest.raises(ValueError):
            FixedPreemptions(times=(-1.0,))
        with pytest.raises(ValueError):
            TracePreemptions(events=((-1.0, 0),))

    def test_enabled_flag(self):
        assert not FaultConfig().enabled
        assert FaultConfig(kills=TaskKillConfig(rate=1.0)).enabled


class TestPreemptionSchedules:
    def test_fixed_preemptions_fire_at_listed_times(self):
        config = FaultConfig(
            preemption=FixedPreemptions(times=(10.0, 20.0, 30.0)), min_survivors=1
        )
        engine, pool, injector = bare_injector(config)
        engine.run()
        assert injector.stats.preemptions == 3
        assert pool.n_alive == 1

    def test_fixed_preemptions_suppressed_at_survivor_floor(self):
        config = FaultConfig(
            preemption=FixedPreemptions(times=(10.0, 20.0, 30.0)), min_survivors=3
        )
        engine, pool, injector = bare_injector(config, n_workers=4)
        engine.run()
        assert injector.stats.preemptions == 1
        assert injector.stats.suppressed == 2
        assert pool.n_alive == 3

    def test_trace_preemptions_name_their_victims(self):
        config = FaultConfig(
            preemption=TracePreemptions(events=((5.0, 2), (6.0, 2), (7.0, 99)))
        )
        engine, pool, injector = bare_injector(config)
        engine.run()
        assert injector.stats.preemptions == 1     # worker 2, once
        assert injector.stats.suppressed == 2      # already gone + unknown id
        assert sorted(w.worker_id for w in pool.alive_workers()) == [0, 1, 3]

    def test_poisson_preemptions_deterministic_per_seed(self):
        def run(seed):
            config = FaultConfig(
                preemption=PoissonPreemptions(rate=1 / 20.0), seed=seed
            )
            engine, pool, injector = bare_injector(config, n_workers=6)
            engine.run(until=200.0)
            return injector.stats.preemptions, sorted(
                w.worker_id for w in pool.alive_workers()
            )
        assert run(7) == run(7)
        assert run(7)[0] > 0

    def test_poisson_until_bounds_the_process(self):
        config = FaultConfig(
            preemption=PoissonPreemptions(rate=1 / 5.0, until=30.0), seed=0
        )
        engine, pool, injector = bare_injector(config, n_workers=50)
        engine.run(until=10_000.0)
        assert engine.pending_events == 0  # the process stopped itself
        assert pool.n_alive >= 44  # only ~30s of a rate-1/5 process

    def test_stop_halts_fault_processes(self):
        config = FaultConfig(preemption=PoissonPreemptions(rate=1 / 5.0), seed=0)
        engine, pool, injector = bare_injector(config, n_workers=50)
        engine.run(until=20.0)
        injector.stop()
        engine.run()  # must drain: stopped processes do not re-arm
        assert engine.pending_events == 0


class TestEndToEndFaults:
    def test_preempted_tasks_requeue_and_complete(self):
        faults = FaultConfig(
            preemption=FixedPreemptions(times=(30.0, 70.0)), seed=0
        )
        manager = WorkflowManager(make_workflow(20), sim_config(faults))
        result = manager.run()
        assert result.n_tasks == 20
        assert result.fault_stats.preemptions == 2
        assert result.workers_left == 2
        assert result.n_evicted_attempts > 0
        evicted = [
            a
            for t in manager.tasks()
            for a in t.attempts
            if a.outcome is AttemptOutcome.EVICTED
        ]
        assert evicted and all(a.runtime >= 0 for a in evicted)

    def test_mid_task_kills_account_as_evictions(self):
        faults = FaultConfig(kills=TaskKillConfig(rate=1 / 30.0), seed=3)
        manager = WorkflowManager(make_workflow(20, duration=120.0), sim_config(faults))
        result = manager.run()
        assert result.fault_stats.task_kills > 0
        assert result.n_evicted_attempts == result.fault_stats.task_kills
        # kills do not remove workers
        assert result.workers_left == 0
        assert manager.pool.n_alive == 4

    def test_kill_immunity_cap_respected(self):
        faults = FaultConfig(
            kills=TaskKillConfig(rate=1.0, max_kills_per_task=2), seed=3
        )
        manager = WorkflowManager(make_workflow(4, duration=50.0), sim_config(faults))
        result = manager.run()
        for task in manager.tasks():
            assert task.n_evicted_attempts <= 2
        assert result.n_tasks == 4

    def test_dispatch_faults_retry_with_backoff_and_complete(self):
        faults = FaultConfig(
            dispatch=DispatchFaultConfig(probability=0.5, backoff=3.0), seed=9
        )
        manager = WorkflowManager(make_workflow(15), sim_config(faults))
        result = manager.run()
        assert result.fault_stats.dispatch_faults > 0
        assert result.n_tasks == 15
        # a dispatch fault is not an attempt: no capacity was ever held
        assert result.n_attempts == sum(t.n_attempts for t in manager.tasks())

    def test_degradation_evicts_and_still_completes(self):
        faults = FaultConfig(
            degradation=DegradationConfig(rate=1 / 20.0, factor=0.5, floor_fraction=0.25),
            seed=5,
        )
        manager = WorkflowManager(
            make_workflow(20, duration=100.0, memory=4000.0),
            sim_config(faults, algorithm="whole_machine"),
        )
        result = manager.run()
        assert result.fault_stats.degradations > 0
        assert result.n_tasks == 20
        floor = capacity() * 0.25
        for worker in manager.pool.alive_workers():
            for res, value in worker.capacity.raw.items():
                assert value >= floor[res] - 1e-9

    def test_protected_survivor_keeps_full_capacity(self):
        faults = FaultConfig(
            preemption=PoissonPreemptions(rate=1 / 10.0),
            degradation=DegradationConfig(rate=1 / 10.0),
            seed=11,
            min_survivors=1,
        )
        manager = WorkflowManager(make_workflow(25, duration=90.0), sim_config(faults))
        manager.run()
        survivor = manager.pool.worker(0)
        assert survivor.alive
        assert survivor.capacity == capacity()

    def test_fault_seed_replays_bit_identically(self):
        from repro.sim.trace import TraceRecorder

        def run():
            faults = FaultConfig(
                preemption=PoissonPreemptions(rate=1 / 40.0),
                kills=TaskKillConfig(rate=1 / 50.0),
                dispatch=DispatchFaultConfig(probability=0.2),
                seed=42,
            )
            manager = WorkflowManager(make_workflow(25), sim_config(faults))
            recorder = TraceRecorder(manager)
            manager.run()
            return recorder.text()

        assert run() == run()

    def test_fault_free_run_unperturbed_by_disabled_config(self):
        """A FaultConfig with nothing enabled must not change the run."""
        base = WorkflowManager(make_workflow(15), sim_config(None)).run()
        noop = WorkflowManager(make_workflow(15), sim_config(FaultConfig())).run()
        assert base.makespan == noop.makespan
        assert base.n_attempts == noop.n_attempts


class TestFaultProfiles:
    def test_none_profile(self):
        assert make_fault_config("none") is None

    @pytest.mark.parametrize("profile", ["fixed", "poisson", "trace", "chaos"])
    def test_named_profiles_build(self, profile):
        config = make_fault_config(profile, seed=7)
        assert config is not None and config.enabled
        assert config.seed == 7

    def test_unknown_profile_raises(self):
        with pytest.raises(KeyError):
            make_fault_config("meteor_strike")


class TestHTCondorEvictionLog:
    """Parsing a real batch-system user log into a preemption schedule."""

    FIXTURE = (
        Path(__file__).resolve().parents[2]
        / "src"
        / "repro"
        / "sim"
        / "data"
        / "htcondor_evictions.log"
    )

    def test_fixture_parses_to_expected_schedule(self):
        schedule = parse_htcondor_eviction_log(self.FIXTURE)
        assert isinstance(schedule, TracePreemptions)
        assert schedule.events == (
            (0.0, 0),      # 7858.000: first eviction anchors the clock
            (285.0, 1),    # 7858.001
            (692.0, 2),    # 7858.002
            (1338.0, 3),   # 7859.000: new cluster -> next worker id
            (2076.0, 0),
            (3187.0, 2),
            (4109.0, 1),
            (5521.0, 3),
            (6952.0, 2),
            (68593.0, 0),  # day rollover 07/10 -> 07/11 in the log
        )

    def test_accepts_iterable_of_lines(self):
        lines = self.FIXTURE.read_text().splitlines()
        assert parse_htcondor_eviction_log(lines) == parse_htcondor_eviction_log(
            self.FIXTURE
        )

    def test_non_eviction_events_ignored(self):
        lines = [
            "000 (9000.000.000) 07/10 09:00:00 Job submitted from host: <10.0.0.1>",
            "...",
            "001 (9000.000.000) 07/10 09:00:05 Job executing on host: <10.0.0.2>",
            "...",
            "004 (9000.000.000) 07/10 09:10:05 Job was evicted.",
            "\t(0) Job was not checkpointed.",
            "...",
        ]
        schedule = parse_htcondor_eviction_log(lines)
        assert schedule.events == ((0.0, 0),)

    def test_no_evictions_raises(self):
        lines = ["000 (9000.000.000) 07/10 09:00:00 Job submitted", "..."]
        with pytest.raises(ValueError, match="no eviction"):
            parse_htcondor_eviction_log(lines)

    def test_backwards_timestamps_raise(self):
        lines = [
            "004 (9000.000.000) 07/10 09:10:05 Job was evicted.",
            "...",
            "004 (9000.001.000) 07/10 09:05:00 Job was evicted.",
            "...",
        ]
        with pytest.raises(ValueError, match="go backwards"):
            parse_htcondor_eviction_log(lines)

    def test_trace_profile_consumes_the_log(self):
        config = make_fault_config("trace", seed=3, trace_file=self.FIXTURE)
        assert isinstance(config.preemption, TracePreemptions)
        assert len(config.preemption.events) == 10

    def test_trace_file_rejected_for_other_profiles(self):
        with pytest.raises(ValueError, match="trace_file"):
            make_fault_config("poisson", trace_file=self.FIXTURE)

    def test_trace_file_simulation_completes_deterministically(self):
        def run():
            config = SimulationConfig(
                allocator=AllocatorConfig(
                    algorithm="quantized_bucketing",
                    seed=2,
                    exploratory=ExploratoryConfig(min_records=3),
                ),
                pool=PoolConfig(n_workers=4, capacity=capacity(), seed=6),
                faults=make_fault_config("trace", seed=3, trace_file=self.FIXTURE),
            )
            manager = WorkflowManager(make_workflow(n=20), config)
            return manager.run()

        first, second = run(), run()
        assert first.n_tasks == 20
        assert first.n_evicted_attempts == second.n_evicted_attempts
        assert repr(first.makespan) == repr(second.makespan)
