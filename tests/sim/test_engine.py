"""Tests for the discrete-event engine."""

import pytest

from repro.sim.engine import SimulationEngine


class TestSimulationEngine:
    def test_events_fire_in_time_order(self):
        engine = SimulationEngine()
        fired = []
        engine.schedule(5.0, lambda: fired.append("b"))
        engine.schedule(1.0, lambda: fired.append("a"))
        engine.schedule(9.0, lambda: fired.append("c"))
        engine.run()
        assert fired == ["a", "b", "c"]

    def test_ties_fire_in_insertion_order(self):
        engine = SimulationEngine()
        fired = []
        for label in "abc":
            engine.schedule(1.0, lambda mark=label: fired.append(mark))
        engine.run()
        assert fired == ["a", "b", "c"]

    def test_clock_advances_to_event_time(self):
        engine = SimulationEngine()
        seen = []
        engine.schedule(3.5, lambda: seen.append(engine.now))
        engine.run()
        assert seen == [3.5]
        assert engine.now == 3.5

    def test_events_can_schedule_more_events(self):
        engine = SimulationEngine()
        fired = []

        def chain(depth):
            fired.append(depth)
            if depth < 3:
                engine.schedule(1.0, lambda: chain(depth + 1))

        engine.schedule(0.0, lambda: chain(0))
        engine.run()
        assert fired == [0, 1, 2, 3]
        assert engine.now == 3.0

    def test_run_until_stops_early(self):
        engine = SimulationEngine()
        fired = []
        engine.schedule(1.0, lambda: fired.append(1))
        engine.schedule(10.0, lambda: fired.append(10))
        engine.run(until=5.0)
        assert fired == [1]
        assert engine.now == 5.0
        engine.run()
        assert fired == [1, 10]

    def test_run_until_advances_clock_when_idle(self):
        engine = SimulationEngine()
        engine.run(until=7.0)
        assert engine.now == 7.0

    def test_cannot_schedule_into_past(self):
        engine = SimulationEngine()
        engine.schedule(1.0, lambda: None)
        engine.run()
        with pytest.raises(ValueError):
            engine.schedule_at(0.5, lambda: None)
        with pytest.raises(ValueError):
            engine.schedule(-1.0, lambda: None)

    def test_max_events_guard(self):
        engine = SimulationEngine()

        def forever():
            engine.schedule(1.0, forever)

        engine.schedule(0.0, forever)
        with pytest.raises(RuntimeError, match="event budget"):
            engine.run(max_events=100)

    def test_reentrant_run_rejected(self):
        engine = SimulationEngine()
        errors = []

        def nested():
            try:
                engine.run()
            except RuntimeError as exc:
                errors.append(exc)

        engine.schedule(0.0, nested)
        engine.run()
        assert len(errors) == 1

    def test_counters(self):
        engine = SimulationEngine()
        engine.schedule(1.0, lambda: None)
        engine.schedule(2.0, lambda: None)
        assert engine.pending_events == 2
        engine.run()
        assert engine.events_processed == 2
        assert engine.pending_events == 0

    def test_determinism_across_instances(self):
        def run_one():
            engine = SimulationEngine()
            log = []
            for i in range(10):
                engine.schedule(float(10 - i), lambda i=i: log.append(i))
            engine.run()
            return log

        assert run_one() == run_one()
