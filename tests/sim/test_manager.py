"""End-to-end tests for the workflow manager."""

import pytest

from repro.core.allocator import AllocatorConfig, ExploratoryConfig
from repro.core.resources import MEMORY, ResourceVector
from repro.sim.manager import SimulationConfig, WorkflowManager
from repro.sim.pool import ChurnConfig, PoolConfig
from repro.sim.task import AttemptOutcome
from repro.workflows.spec import TaskSpec, WorkflowSpec


def uniform_workflow(n=20, cores=1.0, memory=500.0, disk=100.0, duration=60.0, name="flat"):
    tasks = [
        TaskSpec(
            task_id=i,
            category="proc",
            consumption=ResourceVector.of(cores=cores, memory=memory, disk=disk),
            duration=duration,
        )
        for i in range(n)
    ]
    return WorkflowSpec(name=name, tasks=tasks)


def small_pool(n_workers=4, seed=0, **kwargs):
    return PoolConfig(
        n_workers=n_workers,
        capacity=ResourceVector.of(cores=8, memory=16000, disk=16000),
        seed=seed,
        **kwargs,
    )


class TestBasicExecution:
    def test_all_tasks_complete(self):
        manager = WorkflowManager(
            uniform_workflow(30),
            SimulationConfig(
                allocator=AllocatorConfig(algorithm="max_seen", seed=1),
                pool=small_pool(),
            ),
        )
        result = manager.run()
        assert result.n_tasks == 30
        assert result.ledger.n_tasks == 30
        assert result.makespan > 0

    def test_runs_exactly_once(self):
        manager = WorkflowManager(uniform_workflow(3), SimulationConfig(pool=small_pool()))
        manager.run()
        with pytest.raises(RuntimeError):
            manager.run()

    def test_accounting_identity_after_run(self):
        manager = WorkflowManager(
            uniform_workflow(25),
            SimulationConfig(
                allocator=AllocatorConfig(algorithm="exhaustive_bucketing", seed=1),
                pool=small_pool(),
            ),
        )
        result = manager.run()
        assert result.ledger.identity_holds()

    def test_infeasible_task_rejected_up_front(self):
        workflow = uniform_workflow(2, memory=99999999.0)
        with pytest.raises(ValueError, match="exceeds worker capacity"):
            WorkflowManager(workflow, SimulationConfig(pool=small_pool()))

    def test_summary_fields(self):
        manager = WorkflowManager(
            uniform_workflow(5),
            SimulationConfig(
                allocator=AllocatorConfig(algorithm="whole_machine", seed=1),
                pool=small_pool(),
            ),
        )
        summary = manager.run().summary()
        assert summary["tasks"] == 5
        assert {"awe_cores", "awe_memory", "awe_disk"} <= set(summary)


class TestExploratorySemantics:
    def test_identical_tasks_perfect_after_exploration(self):
        """Steady-state allocations for a constant workload hit AWE ~1
        in memory once exploration amortizes."""
        manager = WorkflowManager(
            uniform_workflow(200, memory=2000.0),
            SimulationConfig(
                allocator=AllocatorConfig(algorithm="exhaustive_bucketing", seed=1),
                pool=small_pool(),
            ),
        )
        result = manager.run()
        assert result.ledger.awe(MEMORY) > 0.85

    def test_exploration_gate_bounds_concurrent_explorers(self):
        gate = 3
        manager = WorkflowManager(
            uniform_workflow(40),
            SimulationConfig(
                allocator=AllocatorConfig(
                    algorithm="greedy_bucketing",
                    seed=1,
                    exploratory=ExploratoryConfig(min_records=10, explore_concurrency=gate),
                ),
                pool=small_pool(),
            ),
        )
        allocator = manager.allocator
        observed_max = 0

        original = manager._may_dispatch

        def tracking(task):
            nonlocal observed_max
            if allocator.in_exploration(task.category):
                observed_max = max(
                    observed_max, manager._running_per_category.get(task.category, 0)
                )
            return original(task)

        manager._may_dispatch = tracking
        manager._scheduler._may_dispatch = tracking
        manager.run()
        assert observed_max <= gate

    def test_bucketing_first_attempts_use_predictions_after_exploration(self):
        manager = WorkflowManager(
            uniform_workflow(60, memory=2000.0),
            SimulationConfig(
                allocator=AllocatorConfig(algorithm="exhaustive_bucketing", seed=1),
                pool=small_pool(),
            ),
        )
        manager.run()
        late_tasks = [manager._tasks[i] for i in range(40, 60)]
        for task in late_tasks:
            first = task.attempts[0]
            # Not the 1 core / 1 GB bootstrap: the prediction (2000 MB).
            assert first.allocation[MEMORY] != 1000.0


class TestRetrySemantics:
    def test_underallocation_is_killed_and_retried(self):
        """Force failures: min_records=0 so predictions start at once,
        with a first record far below the others."""
        tasks = [
            TaskSpec(
                task_id=0,
                category="proc",
                consumption=ResourceVector.of(cores=1, memory=100, disk=100),
                duration=10.0,
            )
        ] + [
            TaskSpec(
                task_id=i,
                category="proc",
                consumption=ResourceVector.of(cores=1, memory=4000, disk=100),
                duration=10.0,
            )
            for i in range(1, 10)
        ]
        manager = WorkflowManager(
            WorkflowSpec(name="spiky", tasks=tasks),
            SimulationConfig(
                allocator=AllocatorConfig(
                    algorithm="max_seen",
                    seed=1,
                    exploratory=ExploratoryConfig(min_records=1),
                ),
                pool=small_pool(n_workers=1),
            ),
        )
        result = manager.run()
        assert result.n_failed_attempts >= 1
        assert result.ledger.waste(MEMORY).failed_allocation > 0
        # Every task still completed.
        assert result.ledger.n_tasks == 10

    def test_failed_attempts_grow_allocation_monotonically(self):
        tasks = [
            TaskSpec(
                task_id=i,
                category="proc",
                consumption=ResourceVector.of(cores=1, memory=100 if i == 0 else 8000, disk=100),
                duration=10.0,
            )
            for i in range(6)
        ]
        manager = WorkflowManager(
            WorkflowSpec(name="ladder", tasks=tasks),
            SimulationConfig(
                allocator=AllocatorConfig(
                    algorithm="max_seen",
                    seed=1,
                    exploratory=ExploratoryConfig(min_records=1),
                ),
                pool=small_pool(n_workers=1),
            ),
        )
        manager.run()
        for task in manager._tasks.values():
            allocations = [a.allocation[MEMORY] for a in task.attempts]
            assert allocations == sorted(allocations)


class TestDependencies:
    def test_dag_ordering_respected(self):
        consumption = ResourceVector.of(cores=1, memory=100, disk=10)
        tasks = [
            TaskSpec(0, "stage_a", consumption, 10.0),
            TaskSpec(1, "stage_a", consumption, 10.0),
            TaskSpec(2, "stage_b", consumption, 10.0, dependencies=(0, 1)),
            TaskSpec(3, "stage_c", consumption, 10.0, dependencies=(2,)),
        ]
        manager = WorkflowManager(
            WorkflowSpec(name="diamond", tasks=tasks),
            SimulationConfig(
                allocator=AllocatorConfig(algorithm="whole_machine", seed=1),
                pool=small_pool(),
            ),
        )
        manager.run()
        t = manager._tasks
        assert t[2].attempts[0].start_time >= max(
            t[0].completion_time, t[1].completion_time
        )
        assert t[3].attempts[0].start_time >= t[2].completion_time


class TestSubmissionPacing:
    def test_max_outstanding_limits_revealed_tasks(self):
        manager = WorkflowManager(
            uniform_workflow(50),
            SimulationConfig(
                allocator=AllocatorConfig(algorithm="max_seen", seed=1),
                pool=small_pool(),
                max_outstanding=5,
            ),
        )
        result = manager.run()
        assert result.n_tasks == 50  # everything still completes

    def test_invalid_max_outstanding(self):
        with pytest.raises(ValueError):
            SimulationConfig(max_outstanding=0)


class TestChurnExecution:
    def test_workflow_survives_worker_churn(self):
        manager = WorkflowManager(
            uniform_workflow(40, duration=30.0),
            SimulationConfig(
                allocator=AllocatorConfig(algorithm="max_seen", seed=1),
                pool=small_pool(
                    n_workers=4,
                    churn=ChurnConfig(
                        mean_lifetime=120.0, mean_interarrival=60.0,
                        min_workers=1, max_workers=6,
                    ),
                ),
            ),
        )
        result = manager.run()
        assert result.ledger.n_tasks == 40
        # With this much churn some eviction is overwhelmingly likely,
        # but the assertion only requires consistency, not a minimum.
        assert result.n_evicted_attempts == result.ledger.n_evicted_attempts
        assert result.ledger.identity_holds()

    def test_evicted_attempts_keep_allocation(self):
        manager = WorkflowManager(
            uniform_workflow(30, duration=50.0),
            SimulationConfig(
                allocator=AllocatorConfig(algorithm="whole_machine", seed=1),
                pool=small_pool(
                    n_workers=3,
                    churn=ChurnConfig(mean_lifetime=80.0, mean_interarrival=40.0,
                                      min_workers=1, max_workers=4),
                ),
            ),
        )
        manager.run()
        for task in manager._tasks.values():
            for prev, cur in zip(task.attempts, task.attempts[1:]):
                if prev.outcome is AttemptOutcome.EVICTED:
                    assert cur.allocation == prev.allocation
