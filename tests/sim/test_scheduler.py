"""Tests for the dispatch scheduler in isolation."""

import pytest

from repro.core.resources import MEMORY, ResourceVector
from repro.sim.engine import SimulationEngine
from repro.sim.pool import PoolConfig, WorkerPool
from repro.sim.scheduler import Scheduler
from repro.sim.task import SimTask, TaskState
from repro.workflows.spec import TaskSpec


def make_task(task_id, cores=1.0, memory=100.0):
    spec = TaskSpec(
        task_id=task_id,
        category="proc",
        consumption=ResourceVector.of(cores=cores, memory=memory, disk=10),
        duration=10.0,
    )
    return SimTask(spec)


class SchedulerHarness:
    """Wires a Scheduler with controllable allocation and capture."""

    def __init__(self, n_workers=1, cores=4, memory=4000):
        self.engine = SimulationEngine()
        self.pool = WorkerPool(
            self.engine,
            PoolConfig(
                n_workers=n_workers,
                capacity=ResourceVector.of(cores=cores, memory=memory, disk=4000),
            ),
        )
        self.version = 0
        self.allocations = {}
        self.started = []
        self.allocation_calls = 0
        self.gate = None
        self.scheduler = Scheduler(
            self.pool,
            allocation_of=self._allocate,
            allocation_version=lambda task: self.version,
            start_attempt=self._start,
            may_dispatch=lambda task: self.gate(task) if self.gate else True,
        )

    def _allocate(self, task):
        self.allocation_calls += 1
        return self.allocations.get(
            task.task_id, ResourceVector.of(cores=1, memory=100, disk=10)
        )

    def _start(self, task, worker):
        worker.place(task.task_id, task.current_allocation)
        self.started.append(task.task_id)


class TestDispatch:
    def test_fifo_order(self):
        h = SchedulerHarness(cores=4)
        for i in range(3):
            h.scheduler.enqueue(make_task(i))
        h.scheduler.try_dispatch()
        assert h.started == [0, 1, 2]

    def test_backfill_small_behind_large(self):
        h = SchedulerHarness(cores=4)
        big = make_task(0, cores=8.0)  # cannot fit the 4-core worker... but
        # allocation decides fit, not consumption: give it a huge allocation.
        h.allocations[0] = ResourceVector.of(cores=8, memory=100, disk=10)
        h.scheduler.enqueue(big)
        h.scheduler.enqueue(make_task(1))
        h.scheduler.try_dispatch()
        assert h.started == [1]
        assert h.scheduler.n_ready == 1  # the big one still waits

    def test_retry_goes_to_front(self):
        h = SchedulerHarness(cores=1)  # one slot
        t0, t1 = make_task(0), make_task(1)
        h.scheduler.enqueue(t0)
        h.scheduler.enqueue(t1)
        h.scheduler.try_dispatch()
        assert h.started == [0]
        # t0 is killed: free the worker and requeue at the front.
        h.pool.alive_workers()[0].release(0)
        t0.state = TaskState.READY
        t0.current_allocation = ResourceVector.of(cores=1, memory=200, disk=10)
        h.scheduler.enqueue_retry(t0)
        h.scheduler.try_dispatch()
        assert h.started == [0, 0]

    def test_retry_allocation_is_sticky(self):
        h = SchedulerHarness()
        t0 = make_task(0)
        escalated = ResourceVector.of(cores=2, memory=500, disk=10)
        t0.current_allocation = escalated
        h.scheduler.enqueue_retry(t0)
        h.version = 99  # stale by version, but sticky wins
        h.scheduler.try_dispatch()
        assert h.started == [0]
        assert t0.current_allocation is escalated
        assert h.allocation_calls == 0

    def test_saturation_short_circuit_skips_probes(self):
        h = SchedulerHarness(n_workers=1, cores=1)
        t0, t1 = make_task(0), make_task(1)
        h.scheduler.enqueue(t0)
        h.scheduler.enqueue(t1)
        h.scheduler.try_dispatch()
        # t0 filled the single core; t1 was never even probed.
        assert h.started == [0]
        assert h.allocation_calls == 1

    def test_version_refresh_at_placement(self):
        h = SchedulerHarness(n_workers=1, cores=2)
        t0, t1 = make_task(0), make_task(1)
        # t1's initial prediction is too big to fit beside t0.
        h.allocations[1] = ResourceVector.of(cores=2, memory=100, disk=10)
        h.scheduler.enqueue(t0)
        h.scheduler.enqueue(t1)
        h.scheduler.try_dispatch()
        assert h.started == [0]
        assert h.allocation_calls == 2   # both probed; t1 cached at version 0
        # The allocator learns: new version, smaller prediction for t1.
        h.version = 1
        h.allocations[1] = ResourceVector.of(cores=1, memory=999, disk=10)
        h.pool.alive_workers()[0].release(0)
        h.scheduler.try_dispatch()
        assert h.started == [0, 1]
        # The stale 2-core probe fit the emptied worker, and the
        # dispatch-time refresh re-predicted before placement.
        assert h.allocation_calls == 3
        assert t1.current_allocation[MEMORY] == 999

    def test_gate_blocks_dispatch(self):
        h = SchedulerHarness()
        h.gate = lambda task: task.task_id != 0
        h.scheduler.enqueue(make_task(0))
        h.scheduler.enqueue(make_task(1))
        h.scheduler.try_dispatch()
        assert h.started == [1]
        h.gate = None
        h.scheduler.try_dispatch()
        assert h.started == [1, 0]

    def test_enqueue_requires_ready_state(self):
        h = SchedulerHarness()
        t = make_task(0)
        t.state = TaskState.RUNNING
        with pytest.raises(ValueError):
            h.scheduler.enqueue(t)

    def test_enqueue_retry_requires_allocation(self):
        h = SchedulerHarness()
        t = make_task(0)
        with pytest.raises(ValueError):
            h.scheduler.enqueue_retry(t)

    def test_counts(self):
        h = SchedulerHarness(cores=4)
        for i in range(6):
            h.scheduler.enqueue(make_task(i))
        h.scheduler.try_dispatch()
        assert h.scheduler.total_dispatches == 4  # 4 cores, 1-core tasks
        assert h.scheduler.n_ready == 2
