"""Tests for the experiment config and grid runner (small scale)."""

import pytest

from repro.core.resources import MEMORY
from repro.experiments.config import (
    PAPER_ALGORITHMS,
    PAPER_WORKFLOWS,
    ExperimentConfig,
    make_workflow,
)
from repro.experiments.runner import run_cell, run_grid


SMALL = ExperimentConfig(n_tasks=120, n_workers=4, ramp_up_seconds=60.0)


class TestConfig:
    def test_paper_lists(self):
        assert len(PAPER_ALGORITHMS) == 7
        assert len(PAPER_WORKFLOWS) == 7
        assert "exhaustive_bucketing" in PAPER_ALGORITHMS
        assert "colmena_xtb" in PAPER_WORKFLOWS and "topeft" in PAPER_WORKFLOWS

    def test_make_workflow_synthetic(self):
        wf = make_workflow("normal", n_tasks=50, seed=0)
        assert len(wf) == 50

    def test_make_workflow_production_scaled(self):
        wf = make_workflow("topeft", n_tasks=100, seed=0)
        # scale 0.1 applied to the published counts.
        assert 400 < len(wf) < 520

    def test_make_workflow_unknown(self):
        with pytest.raises(KeyError):
            make_workflow("nope")

    def test_simulation_config_wiring(self):
        cfg = SMALL.simulation_config("max_seen")
        assert cfg.allocator.algorithm == "max_seen"
        assert cfg.pool.n_workers == 4

    def test_with_override(self):
        assert SMALL.with_(n_tasks=7).n_tasks == 7


class TestRunner:
    def test_run_cell_by_name(self):
        result = run_cell("normal", "max_seen", SMALL)
        assert result.n_tasks == 120
        assert result.algorithm == "max_seen"

    def test_run_cell_allocator_overrides(self):
        from repro.core.allocator import ExploratoryConfig

        result = run_cell(
            "normal",
            "exhaustive_bucketing",
            SMALL,
            exploratory=ExploratoryConfig(min_records=5),
        )
        assert result.n_tasks == 120

    def test_run_grid_cells_and_accessors(self):
        grid = run_grid(
            workflows=("normal", "uniform"),
            algorithms=("whole_machine", "max_seen"),
            config=SMALL,
        )
        assert set(grid.cells) == {
            ("normal", "whole_machine"),
            ("normal", "max_seen"),
            ("uniform", "whole_machine"),
            ("uniform", "max_seen"),
        }
        assert 0 < grid.awe("normal", "max_seen", "memory") <= 1
        assert grid.best_algorithm("normal", "memory") in ("whole_machine", "max_seen")

    def test_grid_workflows_identical_across_algorithms(self):
        """Every algorithm must see the same task stream."""
        grid = run_grid(
            workflows=("normal",),
            algorithms=("whole_machine", "max_seen"),
            config=SMALL,
        )
        wm = grid.cells["normal", "whole_machine"]
        ms = grid.cells["normal", "max_seen"]
        assert wm.ledger.total_consumption(MEMORY) == pytest.approx(
            ms.ledger.total_consumption(MEMORY)
        )

    def test_max_seen_beats_whole_machine(self):
        grid = run_grid(
            workflows=("normal",),
            algorithms=("whole_machine", "max_seen"),
            config=SMALL,
        )
        assert grid.awe("normal", "max_seen", "memory") > grid.awe(
            "normal", "whole_machine", "memory"
        )
