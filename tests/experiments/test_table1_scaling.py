"""Tests for the Table I timing harness and the extension studies."""

import pytest

from repro.experiments import ablation, hybrid_study, scaling, table1
from repro.experiments.config import ExperimentConfig

SMALL = ExperimentConfig(n_tasks=100, n_workers=4, ramp_up_seconds=60.0)


class TestTable1:
    @pytest.fixture(scope="class")
    def result(self):
        return table1.run(record_counts=(10, 100, 400), repeats=1, include_literal=True)

    def test_rows_present(self, result):
        assert set(result.microseconds) == {
            "greedy_bucketing",
            "exhaustive_bucketing",
            "greedy_bucketing_literal",
        }
        assert all(len(v) == 3 for v in result.microseconds.values())

    def test_timings_positive(self, result):
        for series in result.microseconds.values():
            assert all(t > 0 for t in series)

    def test_literal_gb_grows_superlinearly(self, result):
        lit = result.microseconds["greedy_bucketing_literal"]
        # 40x records -> much more than 40x time (paper's GB blowup).
        assert lit[-1] / lit[0] > 40

    def test_literal_gb_slower_than_eb_at_scale(self, result):
        lit = result.microseconds["greedy_bucketing_literal"][-1]
        eb = result.microseconds["exhaustive_bucketing"][-1]
        assert lit > eb

    def test_render(self, result):
        text = table1.render(result)
        assert "Table I" in text
        assert "EB" in text and "literal" in text

    def test_unknown_algorithm_rejected(self):
        from repro.core.records import RecordList

        rl = RecordList()
        rl.add(1.0)
        with pytest.raises(KeyError):
            table1.time_algorithm("max_seen", rl)


class TestScaling:
    def test_scaling_rows(self):
        result = scaling.run(
            workflow="normal",
            algorithm="exhaustive_bucketing",
            task_counts=(60, 150),
            config=SMALL,
        )
        assert result.task_counts == (60, 150)
        assert len(result.overall_awe) == 2
        assert all(0 < v <= 1 for v in result.overall_awe)
        assert all(0 < v <= 1.000001 for v in result.steady_awe)
        text = scaling.render(result)
        assert "E-X1" in text


class TestAblation:
    def test_exploration_sweep(self):
        rows = ablation.run_exploration_ablation(SMALL, budgets=(3, 10))
        assert len(rows) == 2
        assert all(0 < r.awe_memory <= 1 for r in rows)
        assert any("paper" in r.variant for r in rows)

    def test_bucket_cap_sweep(self):
        rows = ablation.run_bucket_cap_ablation(SMALL, caps=(1, 10))
        assert len(rows) == 2
        assert {r.variant.split(" ")[0] for r in rows} == {
            "max_buckets=1",
            "max_buckets=10",
        }

    def test_significance_ablation_variants(self):
        rows = ablation.run_significance_ablation(
            SMALL, workflow="trimodal", policies=("task_id", "uniform")
        )
        assert len(rows) == 2
        variants = {r.variant for r in rows}
        assert any("paper" in v for v in variants)
        assert any("ablated" in v for v in variants)
        assert all(0 < r.awe_memory <= 1 for r in rows)

    def test_render(self):
        result = ablation.AblationResult(
            rows=ablation.run_exploration_ablation(SMALL, budgets=(10,))
        )
        assert "exploration" in ablation.render(result)


class TestHybridStudy:
    def test_variants_present(self):
        result = hybrid_study.run(SMALL, workflow="topeft", switch_points=(25,))
        variants = {r.variant for r in result.rows}
        assert variants == {
            "exhaustive_bucketing",
            "quantized_bucketing",
            "hybrid(switch=25)",
        }
        for row in result.rows:
            assert 0 < row.awe_cores <= 1
        text = hybrid_study.render(result)
        assert "E-X3" in text
