"""Tests for the CLI entry point."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_experiment_choices(self):
        parser = build_parser()
        args = parser.parse_args(["figure4", "--tasks", "50"])
        assert args.experiment == "figure4"
        assert args.tasks == 50

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["figure9"])

    def test_defaults(self):
        args = build_parser().parse_args(["table1"])
        assert args.tasks == 1000
        assert args.workers == 20
        assert args.seed == 0


class TestMain:
    def test_figure2_prints_table(self, capsys):
        assert main(["figure2"]) == 0
        out = capsys.readouterr().out
        assert "Figure 2" in out
        assert "evaluate_mpnn" in out

    def test_figure4_small(self, capsys):
        assert main(["figure4", "--tasks", "100"]) == 0
        out = capsys.readouterr().out
        assert "Figure 4" in out

    def test_figure5_tiny_grid(self, capsys):
        # A tiny but complete run through the heavy path.
        assert main(["figure5", "--tasks", "60", "--workers", "3", "--ramp-up", "30"]) == 0
        out = capsys.readouterr().out
        assert "Figure 5" in out
        assert "exhaustive_bucketing" in out


class TestFaultFlags:
    def test_fault_flag_defaults(self):
        args = build_parser().parse_args(["robustness"])
        assert args.faults == "none"
        assert args.fault_seed == 0

    def test_unknown_profile_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["table1", "--faults", "meteor"])

    def test_robustness_fault_sweep(self, capsys):
        argv = [
            "robustness",
            "--faults", "poisson",
            "--fault-rate", "0.005",
            "--fault-seed", "42",
            "--tasks", "60",
            "--workers", "4",
            "--ramp-up", "0",
        ]
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "fault injection" in out
        assert "poisson" in out and "none" in out

    def test_seeded_chaos_run_replays_bit_identically(self, capsys):
        """Acceptance criterion: the same --faults/--seed invocation
        produces byte-identical output across two runs."""
        argv = [
            "robustness",
            "--faults", "poisson",
            "--seed", "42",
            "--fault-rate", "0.005",
            "--tasks", "60",
            "--workers", "4",
            "--ramp-up", "0",
        ]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert main(argv) == 0
        second = capsys.readouterr().out
        assert first == second

    def test_figure4_runs_under_faults(self, capsys):
        assert main(
            ["figure4", "--tasks", "80", "--faults", "fixed", "--fault-seed", "3"]
        ) == 0
        assert "Figure 4" in capsys.readouterr().out
