"""Tests for the CLI entry point."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_experiment_choices(self):
        parser = build_parser()
        args = parser.parse_args(["figure4", "--tasks", "50"])
        assert args.experiment == "figure4"
        assert args.tasks == 50

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["figure9"])

    def test_defaults(self):
        args = build_parser().parse_args(["table1"])
        assert args.tasks == 1000
        assert args.workers == 20
        assert args.seed == 0


class TestMain:
    def test_figure2_prints_table(self, capsys):
        assert main(["figure2"]) == 0
        out = capsys.readouterr().out
        assert "Figure 2" in out
        assert "evaluate_mpnn" in out

    def test_figure4_small(self, capsys):
        assert main(["figure4", "--tasks", "100"]) == 0
        out = capsys.readouterr().out
        assert "Figure 4" in out

    def test_figure5_tiny_grid(self, capsys):
        # A tiny but complete run through the heavy path.
        assert main(["figure5", "--tasks", "60", "--workers", "3", "--ramp-up", "30"]) == 0
        out = capsys.readouterr().out
        assert "Figure 5" in out
        assert "exhaustive_bucketing" in out
