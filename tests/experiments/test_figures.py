"""Tests for the figure experiment modules (small scale)."""

import pytest

from repro.experiments import figure2, figure4, figure5, figure6
from repro.experiments.config import ExperimentConfig

SMALL = ExperimentConfig(n_tasks=100, n_workers=4, ramp_up_seconds=60.0)


class TestFigure2:
    @pytest.fixture(scope="class")
    def result(self):
        return figure2.run(seed=0)

    def test_both_workflows_present(self, result):
        assert set(result.workflows) == {"colmena_xtb", "topeft"}

    def test_all_five_categories_covered(self, result):
        pairs = {(c.workflow, c.category) for c in result.categories}
        assert ("colmena_xtb", "evaluate_mpnn") in pairs
        assert ("topeft", "accumulating") in pairs
        assert len(pairs) == 5

    def test_paper_memory_claims(self, result):
        mpnn = result.stats_of("colmena_xtb", "evaluate_mpnn")
        lo, p50, mean, hi = mpnn.stats["memory_mb"]
        assert lo >= 1000 and hi <= 1200
        topeft_disk = result.stats_of("topeft", "processing").stats["disk_mb"]
        assert topeft_disk[0] == topeft_disk[3] == 306.0

    def test_render_contains_rows(self, result):
        text = figure2.render(result)
        assert "evaluate_mpnn" in text
        assert "accumulating" in text
        assert "Figure 2" in text


class TestFigure4:
    @pytest.fixture(scope="class")
    def result(self):
        return figure4.run(n_tasks=300, seed=0)

    def test_all_workflows(self, result):
        assert set(result.workflows) == {
            "normal", "uniform", "exponential", "bimodal", "trimodal"
        }

    def test_series_lengths(self, result):
        assert all(len(s) == 300 for s in result.series.values())

    def test_trimodal_phase_means_non_monotone(self, result):
        p1, p2, p3 = result.trimodal_phase_means
        assert p2 > p1 > p3

    def test_render(self, result):
        text = figure4.render(result)
        assert "Figure 4" in text
        assert "trimodal phase means" in text


class TestFigure5:
    @pytest.fixture(scope="class")
    def result(self):
        return figure5.run(
            config=SMALL,
            workflows=("normal", "exponential"),
            algorithms=("whole_machine", "max_seen", "exhaustive_bucketing"),
        )

    def test_awe_table_shape(self, result):
        table = result.awe_table("memory")
        assert set(table) == {"whole_machine", "max_seen", "exhaustive_bucketing"}
        assert set(table["max_seen"]) == {"normal", "exponential"}

    def test_whole_machine_is_floor(self, result):
        for wf in ("normal", "exponential"):
            for resource in ("cores", "memory", "disk"):
                wm = result.grid.awe(wf, "whole_machine", resource)
                best = max(
                    result.grid.awe(wf, algo, resource)
                    for algo in result.grid.algorithms
                )
                assert wm <= best + 1e-9

    def test_best_per_cell(self, result):
        winners = result.best_per_cell("memory")
        assert set(winners) == {"normal", "exponential"}
        assert all(w in result.grid.algorithms for w in winners.values())

    def test_render(self, result):
        text = figure5.render(result)
        assert "Figure 5" in text and "memory" in text and "best per workflow" in text


class TestFigure6:
    @pytest.fixture(scope="class")
    def result(self):
        return figure6.run(
            config=SMALL,
            workflows=("normal",),
            algorithms=("max_seen", "min_waste", "quantized_bucketing"),
        )

    def test_whole_machine_excluded_by_default(self):
        assert "whole_machine" not in figure6.FIGURE6_ALGORITHMS
        assert len(figure6.FIGURE6_ALGORITHMS) == 6

    def test_rows_cover_grid(self, result):
        rows = result.waste_rows("memory")
        assert len(rows) == 3
        for workflow, algorithm, frag, failed, share in rows:
            assert frag >= 0 and failed >= 0
            assert 0 <= share <= 1

    def test_quantized_has_failed_share(self, result):
        """Quantized's median-first strategy must show failed-allocation
        waste where Max Seen has essentially none (paper Section V-D)."""
        quantized = result.failed_share("normal", "quantized_bucketing", "memory")
        max_seen = result.failed_share("normal", "max_seen", "memory")
        assert quantized > max_seen

    def test_render(self, result):
        text = figure6.render(result)
        assert "Figure 6" in text and "failed share" in text
