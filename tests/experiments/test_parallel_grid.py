"""Determinism of the parallel experiment grid.

``run_grid(jobs=N)`` fans cells out over spawn-based worker processes;
every cell rebuilds its workflow and allocator from the shared config
seeds, so the results must be identical — cell for cell, bit for bit —
to the serial path.
"""

import dataclasses

import pytest

from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import run_grid

WORKFLOWS = ("uniform", "bimodal")
ALGORITHMS = ("max_seen", "greedy_bucketing", "exhaustive_bucketing")


def _config():
    return ExperimentConfig(n_tasks=60, n_workers=6)


def _assert_grids_identical(a, b):
    assert set(a.cells) == set(b.cells)
    for key in a.cells:
        sa, sb = a.summary(*key), b.summary(*key)
        # EfficiencySummary is a plain dataclass of floats/ints/mappings:
        # field-for-field equality is bit-identity of the AWE values.
        assert dataclasses.asdict(sa) == dataclasses.asdict(sb), key
        ra, rb = a.cells[key], b.cells[key]
        assert ra.n_attempts == rb.n_attempts
        assert ra.n_failed_attempts == rb.n_failed_attempts
        assert ra.makespan == rb.makespan


@pytest.mark.slow
def test_parallel_grid_matches_serial_cell_for_cell():
    config = _config()
    serial = run_grid(
        workflows=WORKFLOWS, algorithms=ALGORITHMS, config=config, jobs=1
    )
    parallel = run_grid(
        workflows=WORKFLOWS, algorithms=ALGORITHMS, config=config, jobs=4
    )
    _assert_grids_identical(serial, parallel)


@pytest.mark.slow
def test_parallel_grid_is_self_deterministic():
    config = _config()
    first = run_grid(
        workflows=("uniform",), algorithms=("exhaustive_bucketing",), config=config, jobs=2
    )
    second = run_grid(
        workflows=("uniform",), algorithms=("exhaustive_bucketing",), config=config, jobs=2
    )
    _assert_grids_identical(first, second)


def test_invalid_jobs_rejected():
    with pytest.raises(ValueError):
        run_grid(workflows=("uniform",), algorithms=("max_seen",), jobs=0)
