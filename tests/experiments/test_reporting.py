"""Tests for ASCII rendering helpers."""

from repro.experiments.reporting import format_histogram, format_series, format_table


class TestFormatTable:
    def test_basic_layout(self):
        out = format_table(
            headers=["name", "value"],
            rows=[("alpha", 1.5), ("b", 20.25)],
            title="T",
        )
        lines = out.splitlines()
        assert lines[0] == "T"
        assert "name" in lines[1] and "value" in lines[1]
        assert "alpha" in lines[3]
        assert "1.500" in lines[3]

    def test_float_format_applied(self):
        out = format_table(["x"], [(0.123456,)], float_format="{:.1f}")
        assert "0.1" in out

    def test_column_widths_accommodate_cells(self):
        out = format_table(["h"], [("a-very-long-cell",)])
        header, sep, row = out.splitlines()
        assert len(sep) >= len("a-very-long-cell")

    def test_non_float_cells_stringified(self):
        out = format_table(["a", "b"], [(1, "x")])
        assert "1" in out and "x" in out


class TestFormatSeries:
    def test_empty(self):
        assert "(empty)" in format_series("s", [])

    def test_downsampling(self):
        out = format_series("s", list(range(1000)), max_points=10)
        assert out.count("\n") <= 60

    def test_constant_series(self):
        out = format_series("s", [5.0, 5.0, 5.0])
        assert "5" in out


class TestFormatHistogram:
    def test_empty(self):
        assert "(empty)" in format_histogram("h", [])

    def test_constant_values(self):
        out = format_histogram("h", [306.0] * 10)
        assert "306" in out and "n=10" in out

    def test_bins_cover_range(self):
        out = format_histogram("h", [0.0, 10.0], n_bins=2)
        lines = out.splitlines()
        assert len(lines) == 3  # title + 2 bins

    def test_counts_sum(self):
        values = [1.0, 2.0, 3.0, 4.0, 5.0]
        out = format_histogram("h", values, n_bins=5)
        counts = [int(line.rsplit(" ", 1)[-1]) for line in out.splitlines()[1:]]
        assert sum(counts) == 5
