"""Tests for the Figure 3b/3c running-example experiment."""

import pytest

from repro.experiments import figure3


@pytest.fixture(scope="module")
def result():
    return figure3.run(n_records=500, seed=0)


class TestFigure3:
    def test_both_algorithms_present(self, result):
        assert set(result.states) == {"greedy_bucketing", "exhaustive_bucketing"}

    def test_bucket_structure_found(self, result):
        """The paper's example finds multiple buckets on N(8, 2) GB."""
        for algorithm in result.states:
            assert result.n_buckets(algorithm) >= 1
            _, state, _ = result.states[algorithm]
            state.validate()

    def test_costs_beat_or_match_single_bucket(self, result):
        for algorithm in result.states:
            assert result.expected_waste(algorithm) <= result.single_bucket_cost + 1e-6

    def test_break_values_consistent_with_buckets(self, result):
        for break_values, state, _ in result.states.values():
            assert len(break_values) == len(state) - 1
            reps = [b.rep for b in state.buckets]
            for value, rep in zip(break_values, reps[:-1]):
                assert value == pytest.approx(rep)

    def test_render(self, result):
        text = figure3.render(result)
        assert "Figure 3b/3c" in text
        assert "greedy_bucketing" in text
        assert "single-bucket expected waste" in text

    def test_deterministic(self):
        a = figure3.run(n_records=200, seed=3)
        b = figure3.run(n_records=200, seed=3)
        assert a.single_bucket_cost == b.single_bucket_cost
        for algorithm in a.states:
            assert a.expected_waste(algorithm) == b.expected_waste(algorithm)
