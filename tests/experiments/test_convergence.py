"""Tests for the phase-adaptation convergence study (E-X5)."""

import pytest

from repro.experiments import convergence
from repro.experiments.config import ExperimentConfig

SMALL = ExperimentConfig(n_tasks=300, n_workers=6, ramp_up_seconds=60.0)


class TestConvergence:
    @pytest.fixture(scope="class")
    def result(self):
        return convergence.run(
            SMALL, algorithms=("max_seen", "exhaustive_bucketing")
        )

    def test_series_shapes(self, result):
        assert set(result.series) == {"max_seen", "exhaustive_bucketing"}
        for values in result.series.values():
            assert len(values) == 300
            assert all(0.0 <= v <= 1.0 + 1e-9 for v in values)

    def test_phase_means_partition(self, result):
        for algorithm in result.series:
            p1, p2, p3 = result.phase_means(algorithm)
            for mean in (p1, p2, p3):
                assert 0.0 <= mean <= 1.0

    def test_bucketing_not_worse_in_final_phase(self, result):
        """After the drop to the 3 GB phase, the adaptive allocator must
        at least match the running-maximum baseline."""
        advantage = result.final_phase_advantage("exhaustive_bucketing", "max_seen")
        assert advantage > -0.08

    def test_render(self, result):
        text = convergence.render(result)
        assert "E-X5" in text
        assert "phase 3 mean" in text
        assert "max_seen" in text
