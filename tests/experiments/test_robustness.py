"""Tests for the external-stochasticity robustness study (E-X4)."""

import pytest

from repro.experiments import robustness
from repro.experiments.config import ExperimentConfig

SMALL = ExperimentConfig(n_tasks=80, n_workers=4, ramp_up_seconds=30.0)


class TestSeedSweep:
    @pytest.fixture(scope="class")
    def result(self):
        return robustness.run_seed_sweep(
            SMALL,
            workflow="normal",
            algorithms=("max_seen", "exhaustive_bucketing"),
            seeds=(0, 1, 2),
        )

    def test_shape(self, result):
        assert result.seeds == (0, 1, 2)
        assert set(result.awe) == {"max_seen", "exhaustive_bucketing"}
        assert all(len(v) == 3 for v in result.awe.values())

    def test_statistics(self, result):
        for algorithm in result.algorithms:
            assert 0 < result.mean(algorithm) <= 1
            assert result.spread(algorithm) >= 0
            assert result.std(algorithm) <= result.spread(algorithm)

    def test_seeds_actually_vary_the_runs(self, result):
        """Different generation seeds must produce different AWE values
        (otherwise the sweep isn't sweeping)."""
        values = result.awe["exhaustive_bucketing"]
        assert len(set(round(v, 6) for v in values)) > 1

    def test_render(self, result):
        text = robustness.render_seed_sweep(result)
        assert "E-X4" in text
        assert "max_seen" in text


class TestFaultSweep:
    @pytest.fixture(scope="class")
    def result(self):
        return robustness.run_fault_sweep(
            SMALL.with_(ramp_up_seconds=0.0),
            workflow="normal",
            algorithms=("max_seen", "exhaustive_bucketing"),
            profiles=("none", "poisson"),
            fault_rate=0.005,
            fault_seed=42,
        )

    def test_shape(self, result):
        assert result.profiles == ("none", "poisson")
        assert set(result.awe) == {
            (algo, prof)
            for algo in ("max_seen", "exhaustive_bucketing")
            for prof in ("none", "poisson")
        }

    def test_faults_cause_evictions(self, result):
        for algorithm in result.algorithms:
            assert result.evictions[algorithm, "none"] == 0
            assert result.evictions[algorithm, "poisson"] > 0

    def test_awe_stays_in_unit_interval_under_faults(self, result):
        for value in result.awe.values():
            assert 0.0 < value <= 1.0 + 1e-9

    def test_relative_metrics(self, result):
        for algorithm in result.algorithms:
            assert result.slowdown(algorithm, "none") == pytest.approx(1.0)
            assert result.awe_drop(algorithm, "none") == pytest.approx(0.0)

    def test_render(self, result):
        text = robustness.render_fault_sweep(result)
        assert "fault injection" in text
        assert "slowdown" in text
