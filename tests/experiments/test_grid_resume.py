"""Crash-safe grid runs: journaled cells, interrupt, bit-identical resume.

The grid-level acceptance property: ``run_grid`` interrupted at an
arbitrary point (between cells *or* mid-cell) and relaunched with
``resume=True`` on the same checkpoint directory yields exactly the
cells an uninterrupted run produces — compared on full result state,
excluding only the non-reproducible ``wall_clock_seconds``.
"""

import dataclasses
import json
import os

import pytest

from repro.checkpoint import CheckpointError, GracefulShutdown, GridInterrupted, state_digest
from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import grid_digest, run_cell, run_grid
from repro.sim.manager import SimulationResult

WORKFLOWS = ("bimodal", "uniform")
ALGORITHMS = ("max_seen", "quantized_bucketing")


def _config(**overrides):
    return ExperimentConfig(
        n_tasks=120, n_workers=6, ramp_up_seconds=60.0, **overrides
    )


def _comparable(result):
    """Result state minus the one field that legitimately varies."""
    state = result.state_dict()
    state.pop("wall_clock_seconds")
    return state


def _assert_same_cells(resumed, reference):
    assert set(resumed.cells) == set(reference.cells)
    for key in reference.cells:
        assert _comparable(resumed.cells[key]) == _comparable(reference.cells[key]), key


class TripAfter(GracefulShutdown):
    """A shutdown whose flag trips after N polls — deterministic interrupts.

    ``triggered`` is polled by the checkpointer after every engine event
    and by the grid loop before every cell, so ``after`` dials the
    interrupt point anywhere from mid-first-cell to between-last-cells.
    """

    def __init__(self, after: int) -> None:
        self._after = after
        self._polls = 0
        super().__init__(install=False)
        self.signum = 15

    @property
    def triggered(self) -> bool:
        self._polls += 1
        return self._polls > self._after

    @triggered.setter
    def triggered(self, value) -> None:  # base __init__ assigns False
        pass


@pytest.fixture(scope="module")
def reference():
    """The uninterrupted grid every resume test compares against."""
    return run_grid(WORKFLOWS, ALGORITHMS, config=_config())


def test_simulation_result_state_round_trip():
    result = run_cell("bimodal", "quantized_bucketing", config=_config())
    state = json.loads(json.dumps(result.state_dict()))  # via-disk round trip
    restored = SimulationResult.from_state(state)
    assert state_digest(restored.state_dict()) == state_digest(state)
    assert restored.summary() == result.summary()


def test_completed_cells_are_journaled(tmp_path, reference):
    checkpoint_dir = str(tmp_path / "ckpt")
    result = run_grid(
        WORKFLOWS, ALGORITHMS, config=_config(checkpoint_dir=checkpoint_dir)
    )
    _assert_same_cells(result, reference)
    lines = (tmp_path / "ckpt" / "journal.jsonl").read_text().splitlines()
    header = json.loads(lines[0])
    assert header["kind"] == "grid-journal"
    assert header["digest"] == grid_digest(WORKFLOWS, ALGORITHMS, _config())
    assert len(lines) == 1 + len(WORKFLOWS) * len(ALGORITHMS)
    # The in-flight snapshot never outlives its cell.
    assert not (tmp_path / "ckpt" / "inflight.json").exists()


@pytest.mark.parametrize("after", [25, 500])
def test_interrupt_and_resume_is_bit_identical(after, tmp_path, reference):
    """Mid-first-cell (25 polls) and mid-grid (~960 total) interrupts resume."""
    checkpoint_dir = str(tmp_path / "ckpt")
    with pytest.raises(GridInterrupted) as excinfo:
        run_grid(
            WORKFLOWS,
            ALGORITHMS,
            config=_config(checkpoint_dir=checkpoint_dir, checkpoint_every_events=50),
            shutdown=TripAfter(after),
        )
    assert excinfo.value.signum == 15

    resumed = run_grid(
        WORKFLOWS,
        ALGORITHMS,
        config=_config(checkpoint_dir=checkpoint_dir, resume=True),
    )
    _assert_same_cells(resumed, reference)


def test_mid_cell_interrupt_leaves_resumable_inflight(tmp_path, reference):
    """An interrupt inside cell 1 snapshots it; resume replays, not reruns."""
    checkpoint_dir = str(tmp_path / "ckpt")
    with pytest.raises(GridInterrupted):
        run_grid(
            WORKFLOWS,
            ALGORITHMS,
            config=_config(checkpoint_dir=checkpoint_dir, checkpoint_every_events=50),
            shutdown=TripAfter(10),
        )
    inflight = tmp_path / "ckpt" / "inflight.json"
    assert inflight.exists()
    payload = json.loads(inflight.read_text())["payload"]
    assert payload["cell"] == [WORKFLOWS[0], ALGORITHMS[0]]

    resumed = run_grid(
        WORKFLOWS,
        ALGORITHMS,
        config=_config(checkpoint_dir=checkpoint_dir, resume=True),
    )
    _assert_same_cells(resumed, reference)


def test_resume_skips_journaled_cells(tmp_path, monkeypatch, reference):
    """A fully journaled grid resumes without running a single simulation."""
    checkpoint_dir = str(tmp_path / "ckpt")
    run_grid(WORKFLOWS, ALGORITHMS, config=_config(checkpoint_dir=checkpoint_dir))

    import repro.experiments.runner as runner_module

    def explode(*args, **kwargs):  # pragma: no cover - must never run
        raise AssertionError("resume recomputed a journaled cell")

    monkeypatch.setattr(runner_module, "_simulation_config", explode)
    resumed = run_grid(
        WORKFLOWS,
        ALGORITHMS,
        config=_config(checkpoint_dir=checkpoint_dir, resume=True),
    )
    _assert_same_cells(resumed, reference)


def test_parallel_path_journals_and_resumes(tmp_path, reference):
    """jobs>1: cell-granularity durability, same journal, same results."""
    checkpoint_dir = str(tmp_path / "ckpt")
    result = run_grid(
        WORKFLOWS,
        ALGORITHMS,
        config=_config(checkpoint_dir=checkpoint_dir),
        jobs=2,
    )
    _assert_same_cells(result, reference)

    # Drop the last journaled cell to fake an interrupt between cells;
    # the parallel resume must rerun exactly that one and re-converge.
    journal = tmp_path / "ckpt" / "journal.jsonl"
    lines = journal.read_text().splitlines(keepends=True)
    journal.write_text("".join(lines[:-1]))
    resumed = run_grid(
        WORKFLOWS,
        ALGORITHMS,
        config=_config(checkpoint_dir=checkpoint_dir, resume=True),
        jobs=2,
    )
    _assert_same_cells(resumed, reference)


def test_resume_refuses_different_experiment(tmp_path):
    checkpoint_dir = str(tmp_path / "ckpt")
    run_grid(WORKFLOWS, ALGORITHMS, config=_config(checkpoint_dir=checkpoint_dir))
    other = dataclasses.replace(
        _config(), n_tasks=60, checkpoint_dir=checkpoint_dir, resume=True
    )
    with pytest.raises(CheckpointError, match="different experiment"):
        run_grid(WORKFLOWS, ALGORITHMS, config=other)


def test_resume_requires_checkpoint_dir():
    with pytest.raises(CheckpointError, match="requires checkpoint_dir"):
        run_grid(WORKFLOWS, ALGORITHMS, config=_config(resume=True))


def test_resume_with_empty_directory_is_fresh_start(tmp_path, reference):
    """resume=True with no journal yet must behave as a fresh run.

    This is what ``repro all --resume`` hits for every target the
    interrupted run never reached.
    """
    checkpoint_dir = str(tmp_path / "never-started")
    result = run_grid(
        WORKFLOWS,
        ALGORITHMS,
        config=_config(checkpoint_dir=checkpoint_dir, resume=True),
    )
    _assert_same_cells(result, reference)
    assert os.path.exists(os.path.join(checkpoint_dir, "journal.jsonl"))
