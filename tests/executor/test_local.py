"""Tests for the local process executor (real enforcement)."""

import sys
import time

import pytest

from repro.core.allocator import AllocatorConfig, ExploratoryConfig, TaskOrientedAllocator
from repro.core.resources import CORES, MEMORY, TIME, ResourceVector
from repro.executor import (
    ExecutionReport,
    LocalExecutor,
    LocalExecutorConfig,
    LocalTask,
    reports_awe,
)

pytestmark = pytest.mark.skipif(
    not sys.platform.startswith("linux"), reason="executor is Linux-only"
)


def touch_mb(mb):
    """Allocate and dirty ``mb`` megabytes, return ``mb``."""
    data = bytearray(int(mb) * 1024 * 1024)
    for i in range(0, len(data), 4096):
        data[i] = 1
    return mb


def quick(x):
    return x * 2


def boom():
    raise RuntimeError("task exploded")


def small_config(**kwargs):
    return LocalExecutorConfig(max_concurrency=2, **kwargs)


def fast_allocator(config, min_records=2, manage_time=False):
    resources = (CORES, MEMORY) + ((TIME,) if manage_time else ())
    return TaskOrientedAllocator(
        AllocatorConfig(
            algorithm="exhaustive_bucketing",
            resources=resources,
            machine_capacity=config.capacity,
            exploratory=ExploratoryConfig(min_records=min_records),
            seed=1,
        )
    )


class TestBasicExecution:
    def test_results_in_input_order(self):
        executor = LocalExecutor(small_config())
        reports = executor.map("quick", quick, [1, 2, 3])
        assert [r.result for r in reports] == [2, 4, 6]
        assert all(r.succeeded for r in reports)

    def test_empty_batch(self):
        assert LocalExecutor(small_config()).run([]) == []

    def test_task_ids_unique(self):
        executor = LocalExecutor(small_config())
        reports = executor.map("quick", quick, [1, 2, 3, 4])
        assert len({r.task_id for r in reports}) == 4

    def test_measured_usage_reported(self):
        executor = LocalExecutor(small_config())
        reports = executor.map("alloc", touch_mb, [40])
        attempt = reports[0].attempts[-1]
        # Peak RSS includes the interpreter: above the 40 MB payload,
        # but far below the 1 GB bootstrap allocation.
        assert 40 < attempt.peak_memory_mb < 500
        assert attempt.runtime_s > 0
        assert attempt.cores_used > 0

    def test_task_error_reported_not_retried(self):
        executor = LocalExecutor(small_config())
        report = executor.run([LocalTask("boom", boom)])[0]
        assert not report.succeeded
        assert "task exploded" in report.error
        assert len(report.attempts) == 1

    def test_task_validation(self):
        with pytest.raises(TypeError):
            LocalTask("x", 42)
        with pytest.raises(ValueError):
            LocalTask("", quick)

    def test_config_validation(self):
        with pytest.raises(ValueError):
            LocalExecutorConfig(max_concurrency=0)
        with pytest.raises(ValueError):
            LocalExecutorConfig(max_attempts=0)


class TestMemoryEnforcement:
    def test_overconsumption_killed_and_retried(self):
        """The paper's assumption 4 on real processes: a task that
        exceeds its learned allocation is killed (RLIMIT_AS) and
        retried with a larger one until it succeeds."""
        config = LocalExecutorConfig(max_concurrency=1)  # serialize: the
        # bootstrap records must land before the big task dispatches.
        executor = LocalExecutor(config, allocator=fast_allocator(config))
        # Two small tasks bootstrap the memory state; the big one then
        # exceeds the learned ~70 MB bucket.
        reports = executor.map("alloc", touch_mb, [40, 40, 250])
        big = reports[-1]
        assert big.succeeded
        assert big.n_retries >= 1
        outcomes = [a.outcome for a in big.attempts]
        assert "memory_exhausted" in outcomes
        assert outcomes[-1] == "success"
        # Allocations strictly grew across retries.
        allocations = [a.allocation[MEMORY] for a in big.attempts]
        assert allocations == sorted(allocations)
        assert allocations[-1] > allocations[0]

    def test_records_feed_back(self):
        config = small_config()
        allocator = fast_allocator(config)
        executor = LocalExecutor(config, allocator=allocator)
        executor.map("alloc", touch_mb, [40, 40, 40])
        assert allocator.records_count("alloc") == 3

    def test_give_up_after_max_attempts(self):
        config = small_config(max_attempts=2)
        # Capacity of 128 MB: the 300 MB task cannot ever fit.
        tiny = LocalExecutorConfig(
            capacity=ResourceVector.of(cores=4, memory=128),
            max_concurrency=1,
            max_attempts=2,
        )
        executor = LocalExecutor(tiny, allocator=fast_allocator(tiny, min_records=1))
        report = executor.run([LocalTask("alloc", touch_mb, (300,))])[0]
        assert not report.succeeded
        assert "gave up" in report.error
        assert len(report.attempts) == 2


class TestTimeEnforcement:
    def test_wall_time_kill_and_retry(self):
        config = LocalExecutorConfig(
            max_concurrency=1, manage_time=True, max_attempts=6
        )
        allocator = fast_allocator(config, min_records=1, manage_time=True)
        executor = LocalExecutor(config, allocator=allocator)
        # Bootstrap with a fast task so the learned time bucket is tiny,
        # then run one that sleeps past it.
        executor.run([LocalTask("sleepy", time.sleep, (0.05,))])
        report = executor.run([LocalTask("sleepy", time.sleep, (1.0,))])[0]
        assert report.succeeded
        outcomes = [a.outcome for a in report.attempts]
        assert "time_exhausted" in outcomes
        assert outcomes[-1] == "success"


class TestAwe:
    def test_awe_of_real_runs(self):
        config = small_config()
        executor = LocalExecutor(config, allocator=fast_allocator(config))
        reports = executor.map("alloc", touch_mb, [40, 45, 40, 45, 42, 44])
        awe = reports_awe(reports, MEMORY)
        assert 0.0 < awe <= 1.0
        # Steady-state tasks get near-peak allocations, so the batch
        # does far better than the 1 GB bootstrap would alone.
        assert awe > 0.03

    def test_awe_skips_failures(self):
        report = ExecutionReport(task_id=0, category="x", attempts=[])
        assert reports_awe([report], MEMORY) == 1.0


def hang():
    time.sleep(300)


def hang_with_grandchild():
    import subprocess

    subprocess.Popen(["sleep", "300"])
    time.sleep(300)


def _live_sleeps():
    """PIDs of non-zombie ``sleep`` processes (zombies are already dead,
    merely awaiting reaping by init, and reap within milliseconds)."""
    import subprocess

    out = subprocess.run(
        ["ps", "-eo", "pid,stat,comm"], capture_output=True, text=True
    ).stdout
    pids = []
    for line in out.splitlines()[1:]:
        fields = line.split()
        if len(fields) >= 3 and fields[2] == "sleep" and not fields[1].startswith("Z"):
            pids.append(int(fields[0]))
    return pids


class TestHangHardening:
    def test_attempt_timeout_validation(self):
        with pytest.raises(ValueError):
            LocalExecutorConfig(attempt_timeout_s=0.0)
        with pytest.raises(ValueError):
            LocalExecutorConfig(attempt_timeout_s=-1.0)
        assert LocalExecutorConfig(attempt_timeout_s=None).attempt_timeout_s is None

    def test_hung_task_killed_and_reported_as_error(self):
        executor = LocalExecutor(small_config(attempt_timeout_s=0.5, max_attempts=3))
        report = executor.run([LocalTask("hang", hang)])[0]
        assert not report.succeeded
        assert len(report.attempts) == 1  # a hang is an error, not a retry
        assert report.attempts[0].outcome == "error"
        assert "wall-clock timeout" in report.error
        assert report.attempts[0].runtime_s < 5.0

    def test_hang_kill_reaps_grandchildren(self):
        """The process-group kill must take down everything the attempt
        spawned — a leaked ``sleep 300`` would outlive the whole batch."""
        before = set(_live_sleeps())
        executor = LocalExecutor(small_config(attempt_timeout_s=0.8))
        report = executor.run([LocalTask("hang", hang_with_grandchild)])[0]
        assert report.attempts[0].outcome == "error"
        time.sleep(0.3)  # give init a beat to reap the zombie
        assert set(_live_sleeps()) - before == set()

    def test_healthy_tasks_unaffected_by_timeout(self):
        executor = LocalExecutor(small_config(attempt_timeout_s=30.0))
        reports = executor.map("quick", quick, [5, 6])
        assert [r.result for r in reports] == [10, 12]

    def test_managed_time_exhaustion_still_retries(self):
        """The hard hang guard must not hijack the managed-TIME path:
        exceeding the TIME allocation stays a retryable exhaustion."""
        config = LocalExecutorConfig(
            max_concurrency=1, manage_time=True, attempt_timeout_s=60.0
        )
        executor = LocalExecutor(
            config, allocator=fast_allocator(config, manage_time=True)
        )
        for task_id in range(2):  # bootstrap: two sub-second tasks
            executor.run([LocalTask("sleepy", time.sleep, (0.1,))])
        report = executor.run([LocalTask("sleepy", time.sleep, (1.0,))])[0]
        assert report.succeeded
        assert any(a.outcome == "time_exhausted" for a in report.attempts)
