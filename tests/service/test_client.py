"""The resilient client SDKs: retry policy, idempotency keys, typed
errors, and the hardened server edge they talk to.

The exactly-once crash matrix lives in ``test_exactly_once.py``; here
the clients face a *live* server (bounded connections, read deadlines,
oversized lines) and the retry decisions are checked directly.
"""

import asyncio
import json
import os
import random
import socket

import pytest

from repro.core.allocator import AllocatorConfig, ExploratoryConfig
from repro.core.resources import ResourceVector
from repro.service import (
    AllocationServer,
    AllocationService,
    AsyncServiceClient,
    RetryPolicy,
    ServiceClient,
    ServiceConfig,
    ServiceError,
)
from repro.service.client import _BaseClient
from repro.service.protocol import MAX_LINE_BYTES


def _config(**overrides):
    defaults = dict(
        allocator=AllocatorConfig(
            algorithm="greedy_bucketing",
            seed=11,
            exploratory=ExploratoryConfig(min_records=3),
        ),
        n_shards=3,
    )
    defaults.update(overrides)
    return ServiceConfig(**defaults)


async def _serve(tmpdir: str, **overrides):
    sock = os.path.join(tmpdir, "svc.sock")
    service = AllocationService(_config(**overrides))
    await service.start()
    server = AllocationServer(service, socket_path=sock)
    await server.start()
    return sock, service, server


# ---------------------------------------------------------------------------
# RetryPolicy
# ---------------------------------------------------------------------------


def test_retry_policy_delay_is_seeded_and_bounded():
    policy = RetryPolicy(backoff_base=0.1, backoff_factor=2.0, backoff_max=0.5, seed=9)
    first = [policy.delay(i, random.Random(9)) for i in range(6)]
    second = [policy.delay(i, random.Random(9)) for i in range(6)]
    assert first == second  # same seed, same jittered schedule
    for i, delay in enumerate(first):
        base = min(0.5, 0.1 * 2.0**i)
        assert base * 0.5 <= delay <= base  # jitter=0.5 shrinks, never grows


def test_retry_policy_honors_retry_after_floor():
    policy = RetryPolicy(backoff_base=0.001)
    assert policy.delay(0, random.Random(0), retry_after=0.75) >= 0.75


def test_retry_policy_validation():
    with pytest.raises(ValueError):
        RetryPolicy(max_attempts=0)
    with pytest.raises(ValueError):
        RetryPolicy(jitter=1.5)


# ---------------------------------------------------------------------------
# Key/id bookkeeping and the resend-safety rule
# ---------------------------------------------------------------------------


def test_auto_key_stamps_mutating_ops_only():
    client = _BaseClient(client_id="c1")
    allocate = client._prepare({"op": "allocate", "category": "a", "task_id": 1})
    assert allocate["key"] == "c1/1"
    assert allocate["id"] == "c1#1"
    ping = client._prepare({"op": "ping"})
    assert "key" not in ping
    explicit = client._prepare(
        {"op": "record", "category": "a", "task_id": 1, "key": "mine"}
    )
    assert explicit["key"] == "mine"  # caller keys are never overwritten


def test_auto_key_off_leaves_ops_bare():
    client = _BaseClient(auto_key=False, client_id="c2")
    doc = client._prepare({"op": "allocate", "category": "a", "task_id": 1})
    assert "key" not in doc


def test_safe_to_resend_rules():
    safe = _BaseClient._safe_to_resend
    assert safe({"op": "ping"})
    assert safe({"op": "stats"})
    assert safe({"op": "allocate", "key": "k"})
    assert not safe({"op": "allocate"})
    assert not safe({"op": "record"})
    assert safe({"op": "allocate_batch", "requests": [{"op": "allocate", "key": "k"}]})
    assert not safe({"op": "allocate_batch", "requests": [{"op": "allocate"}]})


# ---------------------------------------------------------------------------
# Live round trips
# ---------------------------------------------------------------------------


def test_sync_client_round_trip(tmp_path):
    async def scenario():
        sock, service, server = await _serve(str(tmp_path))

        def drive():
            with ServiceClient(socket_path=sock, client_id="sync") as client:
                vector = client.allocate("proc", 1)
                assert isinstance(vector, ResourceVector)
                count = client.record("proc", vector, 1)
                assert count == 1
                retried = client.allocate_retry(
                    "proc", 2, previous=vector, observed=vector, exhausted=["memory"]
                )
                assert isinstance(retried, ResourceVector)
                assert client.ping()
                health = client.health()
                assert health["ok"] is True and health["connections"] == 1
                stats = client.server_stats()
                assert stats["ops"] == 3
                return client.stats()

        stats = await asyncio.to_thread(drive)
        assert stats["retries"] == 0 and stats["reconnects"] == 0
        await server.stop()
        await service.stop()

    asyncio.run(scenario())


def test_async_client_round_trip(tmp_path):
    async def scenario():
        sock, service, server = await _serve(str(tmp_path))
        async with AsyncServiceClient(socket_path=sock, client_id="async") as client:
            vector = await client.allocate("proc", 1)
            assert await client.record("proc", vector, 1) == 1
            assert await client.ping()
            health = await client.health()
            assert health["ok"] is True
        await server.stop()
        await service.stop()

    asyncio.run(scenario())


def test_bad_request_raises_service_error_without_retry(tmp_path):
    async def scenario():
        sock, service, server = await _serve(str(tmp_path))
        async with AsyncServiceClient(socket_path=sock, client_id="bad") as client:
            with pytest.raises(ServiceError) as excinfo:
                await client.call({"op": "allocate", "category": "proc"})  # no task_id
            assert excinfo.value.code == "bad_request"
            with pytest.raises(ServiceError) as unknown:
                await client.call({"op": "frobnicate"})
            assert unknown.value.code == "unknown_op"
            # Malformed requests are never retried (they cannot succeed).
            assert client.retries == 0
        await server.stop()
        await service.stop()

    asyncio.run(scenario())


def test_internal_error_detail_never_reaches_the_wire(tmp_path):
    """Satellite: a server-side exception yields code 'internal' only."""

    async def scenario():
        sock, service, server = await _serve(str(tmp_path))
        # Sabotage one shard so dispatch raises something with a juicy
        # internal message.
        secret = "secret-internal-detail-12345"

        def explode(*args, **kwargs):
            raise RuntimeError(secret)

        for shard in service.shards:
            shard.allocator.allocate = explode
        reader, writer = await asyncio.open_unix_connection(sock)
        writer.write(
            json.dumps(
                {"id": 1, "op": "allocate", "category": "proc", "task_id": 1}
            ).encode()
            + b"\n"
        )
        await writer.drain()
        response = json.loads(await reader.readline())
        writer.close()
        await server.stop()
        await service.stop()
        return response, secret

    response, secret = asyncio.run(scenario())
    assert response["ok"] is False
    assert response["error"]["code"] == "internal"
    assert secret not in json.dumps(response)


def test_connection_limit_sheds_with_retry_after(tmp_path):
    async def scenario():
        sock, service, server = await _serve(str(tmp_path), max_connections=1)
        holder_reader, holder_writer = await asyncio.open_unix_connection(sock)
        # Second connection is answered with one typed overloaded error
        # and closed.
        reader, writer = await asyncio.open_unix_connection(sock)
        refusal = json.loads(await reader.readline())
        assert refusal["ok"] is False
        assert refusal["error"]["code"] == "overloaded"
        assert refusal["error"]["retry_after"] > 0
        assert await reader.read() == b""  # server closed it cleanly
        writer.close()
        assert server.rejected_connections == 1
        # Once the holder leaves, the resilient client gets in by
        # backing off and reconnecting on its own.
        holder_writer.close()
        await holder_writer.wait_closed()
        async with AsyncServiceClient(
            socket_path=sock,
            client_id="patient",
            retry=RetryPolicy(backoff_base=0.01, backoff_max=0.05),
        ) as client:
            assert await client.ping()
        await server.stop()
        await service.stop()

    asyncio.run(scenario())


def test_read_deadline_disconnects_slow_loris(tmp_path):
    async def scenario():
        sock, service, server = await _serve(str(tmp_path), read_timeout=0.2)
        reader, writer = await asyncio.open_unix_connection(sock)
        writer.write(b'{"op": "pi')  # dribble a partial request, then stall
        await writer.drain()
        response = json.loads(await asyncio.wait_for(reader.readline(), timeout=5.0))
        assert response["ok"] is False
        assert response["error"]["code"] == "timeout"
        assert await reader.read() == b""  # then a clean disconnect
        writer.close()
        await server.stop()
        await service.stop()

    asyncio.run(scenario())


def test_oversized_line_gets_typed_error_and_clean_close(tmp_path):
    """Satellite: no LimitOverrunError traceback, a typed error instead."""

    async def scenario():
        sock, service, server = await _serve(str(tmp_path))
        reader, writer = await asyncio.open_unix_connection(sock)
        writer.write(b'{"op": "ping", "pad": "' + b"x" * (MAX_LINE_BYTES + 2048))
        await writer.drain()
        response = json.loads(await asyncio.wait_for(reader.readline(), timeout=10.0))
        assert response["ok"] is False
        assert response["error"]["code"] == "too_large"
        assert await reader.read() == b""
        writer.close()
        await server.stop()
        await service.stop()

    asyncio.run(scenario())


def test_sync_client_reconnects_after_server_restart(tmp_path):
    """Kill the server between calls; the SDK redials transparently."""

    async def scenario():
        sock, service, server = await _serve(str(tmp_path))

        def first_leg(client):
            assert client.ping()
            # The shutdown response closes this session server-side, so
            # the next call finds a dead socket and must redial.
            assert client.shutdown()

        def second_leg(client):
            assert client.ping()
            return client.stats()

        client = ServiceClient(
            socket_path=sock,
            client_id="redial",
            retry=RetryPolicy(backoff_base=0.01, backoff_max=0.05),
        )
        await asyncio.to_thread(first_leg, client)
        await server.stop()
        await service.stop()
        # Same socket path, fresh daemon.
        service = AllocationService(_config())
        await service.start()
        os.unlink(sock)
        server = AllocationServer(service, socket_path=sock)
        await server.start()
        stats = await asyncio.to_thread(second_leg, client)
        client.close()
        assert stats["reconnects"] >= 1
        await server.stop()
        await service.stop()

    asyncio.run(scenario())
