"""Storage fault injection and degraded mode: the disk fails, state holds.

Covers the faultfs injector mechanics (determinism, one-shot plans,
short-write debris, fsyncgate handle poisoning), the shard-level
degraded mode it drives (typed ``StorageUnavailable`` refusals, seq
rollback, the count-based recovery probe), and the wire mapping
(``storage_unavailable`` + ``retry_after``).  Bit-rot recovery and
generation fallback live in ``test_generations.py``; the full
corruption × crash-site sweep is E-X9 in
``repro.experiments.service_chaos``.
"""

import asyncio
import json
import os

import pytest

from repro.checkpoint import (
    JournalWriter,
    read_jsonl,
    repair_journal_tail,
)
from repro.core.allocator import AllocatorConfig
from repro.faultfs import (
    FS_FAULTS,
    STORAGE_FAULT_KINDS,
    FsFaultPlan,
    StorageFault,
    seeded_fault_plan,
)
from repro.service.config import ServiceConfig
from repro.service.server import AllocationServer
from repro.service.service import AllocationService
from repro.service.shards import StorageUnavailable


def run(coro):
    return asyncio.run(coro)


@pytest.fixture(autouse=True)
def _clean_injector():
    FS_FAULTS.reset()
    yield
    FS_FAULTS.reset()


def _config(data_dir, **overrides):
    defaults = dict(
        allocator=AllocatorConfig(algorithm="greedy_bucketing", seed=11),
        n_shards=2,
        data_dir=str(data_dir),
        durability="op",
        degraded_probe_interval=2,
    )
    defaults.update(overrides)
    return ServiceConfig(**defaults)


def _op(i):
    return {"op": "allocate", "category": f"cat-{i % 3}", "task_id": i, "key": f"k{i}"}


# ---------------------------------------------------------------------------
# Injector mechanics
# ---------------------------------------------------------------------------


def test_injector_fires_once_at_the_armed_hit(tmp_path):
    path = str(tmp_path / "shard-00.wal")
    FS_FAULTS.arm(FsFaultPlan("eio", at_hit=2, path_substring=".wal"))
    writer = JournalWriter(path, sync="op")
    writer.append({"seq": 1})  # hit 1: passes
    with pytest.raises(OSError) as excinfo:
        writer.append({"seq": 2})  # hit 2: fires
    assert isinstance(excinfo.value, StorageFault)
    assert excinfo.value.kind == "eio"
    # One-shot: the plan auto-disarmed, the next write goes through.
    writer2 = JournalWriter(path, sync="op")
    writer2.append({"seq": 2})
    writer2.close()
    assert FS_FAULTS.fired == [("eio", "write", path, 2)]
    assert read_jsonl(path) == [{"seq": 1}, {"seq": 2}]


def test_unmatched_paths_are_untouched(tmp_path):
    FS_FAULTS.arm(FsFaultPlan("enospc", at_hit=1, path_substring=".wal"))
    other = str(tmp_path / "results.jsonl")
    writer = JournalWriter(other, sync="op")
    writer.append({"ok": True})
    writer.close()
    assert FS_FAULTS.fired == []
    assert read_jsonl(other) == [{"ok": True}]


def test_short_write_leaves_repairable_debris(tmp_path):
    path = str(tmp_path / "shard-00.wal")
    writer = JournalWriter(path, sync="op")
    writer.append({"seq": 1})
    FS_FAULTS.arm(FsFaultPlan("short-write", at_hit=1, path_substring=".wal"))
    with pytest.raises(OSError):
        writer.append({"seq": 2})
    # A torn half-frame landed in the file; the reader forgives it and
    # the repair truncates it so appends resume on a line boundary.
    assert read_jsonl(path) == [{"seq": 1}]
    dropped = repair_journal_tail(path)
    assert dropped > 0
    writer2 = JournalWriter(path, sync="op")
    writer2.append({"seq": 2})
    writer2.close()
    assert read_jsonl(path) == [{"seq": 1}, {"seq": 2}]


def test_fsyncgate_retry_on_poisoned_handle_raises(tmp_path):
    path = str(tmp_path / "shard-00.wal")
    writer = JournalWriter(path, sync="op")
    FS_FAULTS.arm(FsFaultPlan("fsync-fail", at_hit=1, path_substring=".wal"))
    with pytest.raises(OSError) as excinfo:
        writer.append({"seq": 1})
    assert isinstance(excinfo.value, StorageFault)
    assert excinfo.value.op == "fsync"
    # Retrying any fsync through the SAME handle is the fsyncgate bug:
    # the dirty pages may already be gone, so "success" would lie.
    with pytest.raises(RuntimeError, match="fsyncgate"):
        writer.append({"seq": 1})
    # The legal move: reopen (fresh handle) and rewrite.  The failed
    # attempts may have left whole duplicate records behind — exactly
    # why WAL replay filters by sequence number — but never debris the
    # repair cannot clear, and the reopened writer commits cleanly.
    repair_journal_tail(path)
    writer2 = JournalWriter(path, sync="op")
    writer2.append({"seq": 2})
    writer2.close()
    docs = read_jsonl(path)
    assert docs[-1] == {"seq": 2}
    assert all(doc == {"seq": 1} for doc in docs[:-1])


def test_seeded_fault_plans_are_reproducible():
    plans = {seed: seeded_fault_plan(seed) for seed in range(20)}
    for seed, plan in plans.items():
        assert plan == seeded_fault_plan(seed)
        assert plan.kind in STORAGE_FAULT_KINDS
        assert plan.at_hit >= 1
    assert len({(p.kind, p.at_hit) for p in plans.values()}) > 1


# ---------------------------------------------------------------------------
# Shard degraded mode
# ---------------------------------------------------------------------------


def test_wal_fault_degrades_then_probe_heals(tmp_path):
    async def scenario():
        service = AllocationService(_config(tmp_path / "state"))
        await service.start()
        FS_FAULTS.arm(FsFaultPlan("eio", at_hit=1, path_substring=".wal"))
        with pytest.raises(StorageUnavailable) as excinfo:
            await service.submit(_op(0))
        assert excinfo.value.retry_after > 0
        assert service.health()["degraded"] is True
        # The refusal is non-ambiguous — the batch rolled back — so the
        # caller retries verbatim; every second refusal runs the probe
        # (degraded_probe_interval=2), which repairs and reopens.
        refused = 0
        while True:
            try:
                await service.submit(_op(0))
                break
            except StorageUnavailable:
                refused += 1
                assert refused < 10
        assert refused > 0
        assert service.health()["degraded"] is False
        for i in range(1, 6):
            await service.submit(_op(i))
        degraded_digests = service.shard_digests()
        stats = service.stats()
        await service.stop()

        # Fault-free twin over the same ops must match bit-for-bit.
        twin = AllocationService(_config(tmp_path / "twin"))
        await twin.start()
        for i in range(6):
            await twin.submit(_op(i))
        twin_digests = twin.shard_digests()
        await twin.stop()
        assert degraded_digests == twin_digests
        assert any(s["storage_failures"] > 0 for s in stats["shards"])

    run(scenario())


def test_degraded_rollback_leaves_no_replay_gap(tmp_path):
    """The refused batch's seq must be rolled back, or restart refuses."""

    async def scenario():
        config = _config(tmp_path / "state")
        service = AllocationService(config)
        await service.start()
        for i in range(4):
            await service.submit(_op(i))
        FS_FAULTS.arm(FsFaultPlan("enospc", at_hit=1, path_substring=".wal"))
        with pytest.raises(StorageUnavailable):
            await service.submit(_op(4))
        FS_FAULTS.reset()
        # Heal by retrying (the probe reopens the WAL), finish the work.
        while True:
            try:
                await service.submit(_op(4))
                break
            except StorageUnavailable:
                pass
        live_digests = service.shard_digests()
        service.abort()  # crash without a final snapshot: WAL is truth

        resumed = AllocationService(config)
        await resumed.start()
        assert resumed.shard_digests() == live_digests
        await resumed.stop()

    run(scenario())


def test_snapshot_write_fault_is_typed_and_retryable(tmp_path):
    async def scenario():
        service = AllocationService(_config(tmp_path / "state"))
        await service.start()
        for i in range(3):
            await service.submit(_op(i))
        FS_FAULTS.arm(FsFaultPlan("enospc", at_hit=1, path_substring="service.snapshot"))
        with pytest.raises(StorageUnavailable):
            await service.snapshot()
        # A refused snapshot does not degrade ingest; the retry lands.
        await service.submit(_op(3))
        path = await service.snapshot()
        assert os.path.exists(path)
        await service.stop()

    run(scenario())


# ---------------------------------------------------------------------------
# Wire + health surface
# ---------------------------------------------------------------------------


def test_wire_maps_degraded_shard_to_storage_unavailable(tmp_path):
    async def scenario():
        service = AllocationService(_config(tmp_path / "state"))
        await service.start()
        server = AllocationServer(service, port=0)
        FS_FAULTS.arm(FsFaultPlan("eio", at_hit=1, path_substring=".wal"))
        request = dict(_op(0), id=7)
        response = await server._respond(json.dumps(request).encode() + b"\n")
        assert response["ok"] is False
        assert response["error"]["code"] == "storage_unavailable"
        assert response["error"]["retry_after"] > 0
        assert response["id"] == 7
        FS_FAULTS.reset()
        health = await server._respond(
            json.dumps({"op": "health", "id": 8}).encode() + b"\n"
        )
        assert health["ok"] is True
        assert health["result"]["degraded"] is True
        await service.stop()

    run(scenario())


def test_health_reports_storage_surface(tmp_path):
    async def scenario():
        service = AllocationService(_config(tmp_path / "state"))
        await service.start()
        for i in range(5):
            await service.submit(_op(i))
        await service.snapshot()
        health = service.health()
        assert health["degraded"] is False
        assert health["generation"] >= 1
        assert len(health["last_snapshot_seq"]) == 2
        assert isinstance(health["wal_bytes"], int)
        stats = service.stats()
        for shard in stats["shards"]:
            assert shard["degraded"] is False
            assert shard["last_durable_seq"] == shard["seq"]
            assert shard["wal_bytes"] >= 0
        await service.stop()

    run(scenario())
