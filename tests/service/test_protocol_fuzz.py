"""Hypothesis fuzz of the service wire edge.

Property under test: a hostile peer — arbitrary bytes, truncated NDJSON
frames, garbage interleaved with real requests, colliding ``id``s — can
never crash the server, never elicit anything but a well-formed typed
error or a clean disconnect, and never smuggle an invalid document into
the WAL.
"""

import asyncio
import json
import os

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.checkpoint import read_jsonl
from repro.core.allocator import AllocatorConfig, ExploratoryConfig
from repro.service import AllocationServer, AllocationService, ServiceConfig
from repro.service.protocol import (
    ERROR_CODES,
    ProtocolError,
    parse_line,
    validate_request,
)

pytestmark = pytest.mark.service

RESOURCES = AllocatorConfig().resources

# Live-socket examples pay a server start/stop per case; keep the count
# small and let the pure-function properties carry the example volume.
LIVE = settings(
    max_examples=10,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
PURE = settings(max_examples=300, deadline=None)


def _config(data_dir=None):
    return ServiceConfig(
        allocator=AllocatorConfig(
            algorithm="greedy_bucketing",
            seed=11,
            exploratory=ExploratoryConfig(min_records=3),
        ),
        n_shards=2,
        data_dir=data_dir,
        durability="op" if data_dir else "none",
    )


def _valid_request(i: int) -> bytes:
    doc = {"id": f"ok-{i}", "op": "allocate", "category": "proc", "task_id": i}
    return json.dumps(doc).encode() + b"\n"


# ---------------------------------------------------------------------------
# Pure protocol properties (no sockets, high example volume)
# ---------------------------------------------------------------------------


@PURE
@given(st.binary(max_size=512))
def test_parse_line_raises_protocol_error_only(payload):
    try:
        doc = parse_line(payload)
    except ProtocolError as exc:
        assert exc.code in ERROR_CODES
    else:
        assert isinstance(doc, dict)


@PURE
@given(st.data())
def test_truncated_request_never_escapes_protocol_error(data):
    line = _valid_request(data.draw(st.integers(0, 99)))
    cut = data.draw(st.integers(0, len(line) - 1))
    try:
        parse_line(line[:cut])
    except ProtocolError as exc:
        assert exc.code in ERROR_CODES


JSONISH = st.recursive(
    st.none()
    | st.booleans()
    | st.integers()
    | st.floats(allow_nan=False)
    | st.text(max_size=20),
    lambda children: st.lists(children, max_size=4)
    | st.dictionaries(st.text(max_size=10), children, max_size=4),
    max_leaves=10,
)


@PURE
@given(
    st.dictionaries(
        st.sampled_from(
            ["op", "id", "key", "category", "task_id", "peaks", "requests", "x"]
        ),
        JSONISH,
        max_size=6,
    )
)
def test_validate_request_raises_protocol_error_only(doc):
    try:
        validate_request(doc, RESOURCES)
    except ProtocolError as exc:
        assert exc.code in ERROR_CODES


# ---------------------------------------------------------------------------
# Live server under fire
# ---------------------------------------------------------------------------


async def _fuzz_session(tmpdir, lines, data_dir=None):
    """Feed raw lines to a live server; return (responses, post-fuzz ping)."""
    sock = os.path.join(tmpdir, "fuzz.sock")
    service = AllocationService(_config(data_dir=data_dir))
    await service.start()
    server = AllocationServer(service, socket_path=sock)
    await server.start()
    responses = []
    try:
        reader, writer = await asyncio.open_unix_connection(sock)
        try:
            for line in lines:
                writer.write(line)
                await writer.drain()
                answer = await asyncio.wait_for(reader.readline(), timeout=10.0)
                if not answer:  # server hung up (its right under hostility)
                    break
                responses.append(json.loads(answer))
        except (ConnectionResetError, BrokenPipeError, OSError):
            pass
        finally:
            writer.close()
        # The server must still be alive and coherent for the next peer.
        reader, writer = await asyncio.open_unix_connection(sock)
        writer.write(b'{"op": "ping", "id": "post"}\n')
        await writer.drain()
        ping = json.loads(await asyncio.wait_for(reader.readline(), timeout=10.0))
        writer.close()
    finally:
        await server.stop()
        # snapshot=False keeps the WAL on disk for post-fuzz inspection
        # (a graceful stop otherwise snapshots and truncates it).
        await service.stop(snapshot=False)
    return responses, ping


def _check_well_formed(responses):
    for response in responses:
        assert isinstance(response, dict)
        assert response["ok"] in (True, False)
        if not response["ok"]:
            assert response["error"]["code"] in ERROR_CODES
            # Typed code + message only; never a traceback on the wire.
            assert "Traceback" not in response["error"]["message"]


@LIVE
@given(
    st.lists(
        st.binary(min_size=1, max_size=200).map(
            lambda b: b.replace(b"\n", b"\x00") + b"\n"
        ),
        min_size=1,
        max_size=8,
    )
)
def test_arbitrary_byte_lines_never_crash_server(tmp_path_factory, lines):
    tmpdir = str(tmp_path_factory.mktemp("fuzz"))
    responses, ping = asyncio.run(_fuzz_session(tmpdir, lines))
    _check_well_formed(responses)
    assert ping == {"ok": True, "result": {"pong": True}, "id": "post"}


@LIVE
@given(st.data())
def test_garbage_interleaved_with_real_requests(tmp_path_factory, data):
    tmpdir = str(tmp_path_factory.mktemp("fuzz"))
    garbage = st.binary(min_size=1, max_size=80).map(
        lambda b: b.replace(b"\n", b" ") + b"\n"
    )
    lines, expected_ids = [], []
    for i in range(data.draw(st.integers(2, 6))):
        if data.draw(st.booleans()):
            lines.append(data.draw(garbage))
        else:
            lines.append(_valid_request(i))
            expected_ids.append(f"ok-{i}")
    responses, ping = asyncio.run(_fuzz_session(tmpdir, lines))
    _check_well_formed(responses)
    assert ping["ok"] is True
    # Every valid request the server got to answer succeeded, in order.
    answered = [r["id"] for r in responses if r["ok"]]
    assert answered == expected_ids[: len(answered)]


@LIVE
@given(
    st.lists(st.sampled_from(["dup", "dup", "other"]), min_size=2, max_size=6),
)
def test_duplicate_ids_never_crash_server(tmp_path_factory, ids):
    tmpdir = str(tmp_path_factory.mktemp("fuzz"))
    lines = [
        json.dumps(
            {"id": rid, "op": "allocate", "category": "proc", "task_id": i}
        ).encode()
        + b"\n"
        for i, rid in enumerate(ids)
    ]
    responses, ping = asyncio.run(_fuzz_session(tmpdir, lines))
    _check_well_formed(responses)
    assert ping["ok"] is True
    # ids are echoed verbatim, one response per request, in order.
    assert [r["id"] for r in responses] == ids
    assert all(r["ok"] for r in responses)


@LIVE
@given(
    st.lists(
        st.binary(min_size=1, max_size=120).map(
            lambda b: b.replace(b"\n", b"\x01") + b"\n"
        ),
        min_size=1,
        max_size=5,
    )
)
def test_nothing_invalid_reaches_the_wal(tmp_path_factory, garbage_lines):
    """Satellite guarantee: the WAL only ever holds validated documents."""
    tmpdir = str(tmp_path_factory.mktemp("fuzz"))
    data_dir = os.path.join(tmpdir, "state")
    lines = []
    for i, garbage in enumerate(garbage_lines):
        lines.append(garbage)
        lines.append(_valid_request(i))
    responses, ping = asyncio.run(_fuzz_session(tmpdir, lines, data_dir=data_dir))
    _check_well_formed(responses)
    assert ping["ok"] is True
    entries = []
    for name in sorted(os.listdir(data_dir)):
        if name.endswith(".wal"):
            entries.extend(read_jsonl(os.path.join(data_dir, name)))
    applied = sum(1 for r in responses if r["ok"])
    assert len(entries) == applied  # one WAL entry per applied op, no more
    for entry in entries:
        validate_request(entry["op"], RESOURCES)  # must not raise
