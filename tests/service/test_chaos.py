"""The chaos layer itself: crash points, fault schedules, and the proxy.

Determinism is the contract under test: the same fault seed must yield
the same schedule, the same proxy event log, and the same crash-point
firing — and with everything disabled the layer must be invisible
(pure pass-through, zero events, bit-identical responses).
"""

import asyncio
import json
import os

import pytest

from repro.core.allocator import AllocatorConfig, ExploratoryConfig
from repro.service import AllocationServer, AllocationService, ServiceConfig
from repro.service.chaos import (
    CHAOS_PROFILES,
    CRASH_POINTS,
    ChaosConfig,
    ChaosProxy,
    CrashPointFired,
    CrashPoints,
    make_chaos_config,
    schedule_preview,
    seeded_crash_plan,
)


@pytest.fixture(autouse=True)
def _clean_crash_points():
    CRASH_POINTS.reset()
    yield
    CRASH_POINTS.reset()


def _config(**overrides):
    defaults = dict(
        allocator=AllocatorConfig(
            algorithm="greedy_bucketing",
            seed=11,
            exploratory=ExploratoryConfig(min_records=3),
        ),
        n_shards=3,
    )
    defaults.update(overrides)
    return ServiceConfig(**defaults)


# ---------------------------------------------------------------------------
# Crash points
# ---------------------------------------------------------------------------


def test_crash_sites_are_registered_at_import():
    sites = CRASH_POINTS.sites()
    assert "shard.wal-append.before" in sites
    assert "shard.wal-append.after" in sites
    assert "shard.apply.before" in sites
    assert "shard.apply.after" in sites
    assert "service.snapshot.before" in sites
    assert "service.snapshot.after" in sites


def test_crash_point_fires_on_nth_hit_and_auto_disarms():
    points = CrashPoints()
    site = points.register("test.site")
    points.arm(site, at_hit=3)
    points.hit(site)
    points.hit(site)
    with pytest.raises(CrashPointFired) as excinfo:
        points.hit(site)
    assert excinfo.value.site == site
    assert excinfo.value.hit == 3
    assert points.armed is None  # auto-disarm: recovery must not re-crash
    points.hit(site)  # no longer raises
    assert points.fired == [(site, 3)]


def test_crash_point_ignores_other_sites():
    points = CrashPoints()
    a = points.register("a")
    b = points.register("b")
    points.arm(a, at_hit=1)
    points.hit(b)  # not armed for b
    with pytest.raises(CrashPointFired):
        points.hit(a)


def test_crash_point_arm_validation():
    points = CrashPoints()
    site = points.register("a")
    with pytest.raises(ValueError):
        points.arm("unknown")
    with pytest.raises(ValueError):
        points.arm(site, at_hit=0)
    with pytest.raises(ValueError):
        points.arm(site, mode="segfault")


def test_seeded_crash_plan_is_deterministic():
    sites = ("a", "b", "c")
    assert seeded_crash_plan(7, sites) == seeded_crash_plan(7, sites)
    plans = {seeded_crash_plan(seed, sites) for seed in range(32)}
    assert len(plans) > 1  # the seed actually varies the plan
    site, at_hit = seeded_crash_plan(0, sites)
    assert site in sites and at_hit >= 1


# ---------------------------------------------------------------------------
# Fault schedules
# ---------------------------------------------------------------------------


def test_default_config_is_disabled():
    config = ChaosConfig()
    assert not config.enabled
    assert schedule_preview(config, 0, "c2s", 10) == []


def test_profiles_cover_every_kind():
    assert make_chaos_config("none").enabled is False
    for profile in CHAOS_PROFILES:
        make_chaos_config(profile)  # no profile raises
    with pytest.raises(ValueError):
        make_chaos_config("hurricane")


def test_schedule_is_deterministic_per_seed_connection_direction():
    config = make_chaos_config("mixed", seed=5)
    first = schedule_preview(config, 0, "c2s", 50)
    assert first == schedule_preview(config, 0, "c2s", 50)
    assert first != schedule_preview(config, 1, "c2s", 50)
    assert first != schedule_preview(config, 0, "s2c", 50)
    assert first != schedule_preview(make_chaos_config("mixed", seed=6), 0, "c2s", 50)
    offsets = [offset for offset, _ in first]
    assert offsets == sorted(offsets)
    assert all(offset > 0 for offset in offsets)


def test_garbage_payloads_are_undecodable_json():
    # Garbage must be *detectable* corruption: strict JSON rejects the
    # injected control bytes, so a mangled line can never silently
    # parse as a different valid request.
    from repro.service.chaos import ChaosSchedule

    schedule = ChaosSchedule(make_chaos_config("garbage", seed=3), 0, "c2s")
    for _ in range(64):
        event = schedule.pop()
        assert event.kind == "garbage"
        assert event.payload
        assert all(byte < 8 for byte in event.payload)
        with pytest.raises(json.JSONDecodeError):
            json.loads(b'{"a": 1' + event.payload + b"}")


# ---------------------------------------------------------------------------
# The proxy (live sockets)
# ---------------------------------------------------------------------------


async def _proxy_session(tmpdir: str, profile: str, seed: int, n_ops: int):
    """Drive a scripted raw-socket session through a proxy; return
    (proxy event log, responses received before any tear-down)."""
    upstream = os.path.join(tmpdir, f"up-{profile}-{seed}.sock")
    downstream = os.path.join(tmpdir, f"down-{profile}-{seed}.sock")
    service = AllocationService(_config())
    await service.start()
    server = AllocationServer(service, socket_path=upstream)
    await server.start()
    proxy = ChaosProxy(upstream, downstream, make_chaos_config(profile, seed=seed))
    await proxy.start()
    responses = []
    try:
        for i in range(n_ops):
            try:
                reader, writer = await asyncio.open_unix_connection(downstream)
                writer.write(
                    (
                        json.dumps(
                            {
                                "id": i,
                                "op": "allocate",
                                "category": "proc",
                                "task_id": i,
                            }
                        )
                        + "\n"
                    ).encode()
                )
                await writer.drain()
                line = await asyncio.wait_for(reader.readline(), timeout=5.0)
                if line:
                    responses.append(json.loads(line))
                writer.close()
            except (OSError, asyncio.TimeoutError, json.JSONDecodeError):
                continue
    finally:
        await proxy.stop()
        await server.stop()
        await service.stop()
    return list(proxy.events), responses


@pytest.mark.service
def test_proxy_pass_through_is_invisible(tmp_path):
    """Default-off: zero events, responses identical to a direct session."""

    async def scenario():
        events, via_proxy = await _proxy_session(str(tmp_path), "none", 0, 6)
        service = AllocationService(_config())
        await service.start()
        direct = []
        for i in range(6):
            result = await service.submit(
                {"op": "allocate", "category": "proc", "task_id": i}
            )
            direct.append({"ok": True, "result": result, "id": i})
        await service.stop()
        return events, via_proxy, direct

    events, via_proxy, direct = asyncio.run(scenario())
    assert events == []
    assert via_proxy == direct


@pytest.mark.service
def test_proxy_event_log_replays_identically(tmp_path):
    """Same seed + same traffic => byte-identical fault schedule."""

    async def scenario():
        first_events, _ = await _proxy_session(str(tmp_path) + "/a", "mixed", 4, 12)
        second_events, _ = await _proxy_session(str(tmp_path) + "/b", "mixed", 4, 12)
        return first_events, second_events

    os.makedirs(str(tmp_path) + "/a")
    os.makedirs(str(tmp_path) + "/b")
    first, second = asyncio.run(scenario())
    assert first == second
    assert first  # the mixed profile actually fired faults


@pytest.mark.service
def test_proxy_drop_profile_tears_connections(tmp_path):
    async def scenario():
        return await _proxy_session(str(tmp_path), "drop", 2, 10)

    events, responses = asyncio.run(scenario())
    kinds = {kind for _, _, _, kind in events}
    assert kinds == {"disconnect"}
    # Some requests died mid-flight, yet the surviving responses are
    # well-formed allocations.
    assert len(responses) < 10
    for response in responses:
        assert response["ok"] is True
        assert "allocation" in response["result"]
