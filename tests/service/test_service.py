"""Unit tests for the allocation service: sharding, API, backpressure,
durability plumbing, and the protocol validators.

The concurrency-heavy properties live in ``test_linearizability.py``;
batch semantics in ``test_batch_equivalence.py``; crash recovery in
``test_kill_resume.py``.  Everything here is seeded and wall-clock
free.
"""

import asyncio
import json
import os

import pytest

from repro.core.allocator import AllocatorConfig, ExploratoryConfig, TaskOrientedAllocator
from repro.core.resources import MEMORY, ResourceVector
from repro.service import (
    AllocationService,
    ProtocolError,
    ServiceConfig,
    apply_op,
    shard_of,
    shard_seed,
)
from repro.service.protocol import parse_line, validate_request
from repro.sim.resilience import CircuitBreakerConfig


def run(coro):
    return asyncio.run(coro)


def _config(**overrides):
    defaults = dict(
        allocator=AllocatorConfig(
            algorithm="greedy_bucketing",
            seed=11,
            exploratory=ExploratoryConfig(min_records=3),
        ),
        n_shards=3,
    )
    defaults.update(overrides)
    return ServiceConfig(**defaults)


# ---------------------------------------------------------------------------
# Shard mapping and seeds
# ---------------------------------------------------------------------------


def test_shard_of_is_stable_and_covers_all_shards():
    # Stability: the mapping is part of the durability contract (a WAL
    # written yesterday must route to the same shards today).
    assert shard_of("proc", 4) == shard_of("proc", 4)
    seen = {shard_of(f"category-{i}", 4) for i in range(200)}
    assert seen == {0, 1, 2, 3}


def test_shard_of_single_shard():
    assert shard_of("anything", 1) == 0


def test_shard_seed_deterministic_and_distinct():
    assert shard_seed(0, 0) == shard_seed(0, 0)
    seeds = {shard_seed(7, i) for i in range(16)}
    assert len(seeds) == 16
    assert shard_seed(7, 0) != shard_seed(8, 0)


def test_shard_allocator_config_derives_seed():
    config = _config()
    cfg0 = config.shard_allocator_config(0)
    cfg1 = config.shard_allocator_config(1)
    assert cfg0.seed == shard_seed(11, 0)
    assert cfg1.seed == shard_seed(11, 1)
    assert cfg0.algorithm == "greedy_bucketing"


def test_config_validation():
    with pytest.raises(ValueError):
        ServiceConfig(n_shards=0)
    with pytest.raises(ValueError):
        ServiceConfig(durability="sometimes")
    with pytest.raises(ValueError):
        ServiceConfig(queue_high_watermark=0)


# ---------------------------------------------------------------------------
# The four-call API vs a single-threaded reference
# ---------------------------------------------------------------------------


def test_allocate_record_matches_reference_replay():
    async def scenario():
        config = _config()
        service = AllocationService(config)
        await service.start()
        reference = {
            i: TaskOrientedAllocator(config.shard_allocator_config(i))
            for i in range(config.n_shards)
        }
        categories = ["proc", "merge", "fit", "plot", "scan"]
        for task_id in range(40):
            category = categories[task_id % len(categories)]
            got = await service.allocate(category, task_id)
            ref = reference[shard_of(category, config.n_shards)]
            expected = ref.allocate(category, task_id)
            assert got == expected
            peaks = ResourceVector.of(
                cores=1, memory=400.0 + 37.0 * task_id, disk=25.0
            )
            await service.record(category, peaks, task_id)
            ref.observe(category, peaks, task_id)
        assert service.shard_digests() == [
            reference[i].digest() for i in range(config.n_shards)
        ]
        await service.stop()

    run(scenario())


def test_allocate_retry_matches_reference():
    async def scenario():
        config = _config(n_shards=1)
        service = AllocationService(config)
        await service.start()
        reference = TaskOrientedAllocator(config.shard_allocator_config(0))
        previous = await service.allocate("proc", 0)
        reference.allocate("proc", 0)
        observed = previous.replace(MEMORY, previous[MEMORY])
        got = await service.allocate_retry(
            "proc", 0, previous=previous, observed=observed, exhausted=[MEMORY]
        )
        expected = reference.allocate_retry(
            "proc", 0, previous=previous, observed=observed, exhausted=(MEMORY,)
        )
        assert got == expected
        assert got[MEMORY] > previous[MEMORY]
        await service.stop()

    run(scenario())


def test_capacity_ceiling_clamps_retry_growth():
    async def scenario():
        ceiling = ResourceVector.of(cores=2, memory=1500.0, disk=500.0)
        config = _config(n_shards=1, capacity=ceiling)
        service = AllocationService(config)
        await service.start()
        previous = ResourceVector.of(cores=1, memory=1400.0, disk=100.0)
        grown = await service.allocate_retry(
            "proc", 0, previous=previous, observed=previous, exhausted=[MEMORY]
        )
        # Doubling would ask for 2800 MB; no alive worker can host it.
        assert grown[MEMORY] == 1500.0
        assert service.shards[0].allocator.capacity_clamps_total == 1
        await service.stop()

    run(scenario())


def test_exploration_mode_reported_then_predicted():
    async def scenario():
        config = _config(n_shards=1)
        service = AllocationService(config)
        await service.start()
        first = await service.submit(
            {"op": "allocate", "category": "proc", "task_id": 0}
        )
        assert first["mode"] == "exploratory"
        for task_id in range(3):
            await service.record(
                "proc", ResourceVector.of(cores=1, memory=700.0, disk=10.0), task_id
            )
        later = await service.submit(
            {"op": "allocate", "category": "proc", "task_id": 99}
        )
        assert later["mode"] == "predicted"
        assert later["seq"] == 5
        await service.stop()

    run(scenario())


def test_sequence_numbers_are_per_shard_and_contiguous():
    async def scenario():
        config = _config(n_shards=2)
        service = AllocationService(config)
        await service.start()
        per_shard = {0: 0, 1: 0}
        for task_id in range(30):
            result = await service.submit(
                {"op": "allocate", "category": f"cat-{task_id}", "task_id": task_id}
            )
            per_shard[result["shard"]] += 1
            assert result["seq"] == per_shard[result["shard"]]
        assert sum(per_shard.values()) == 30
        await service.stop()

    run(scenario())


def test_stats_shape():
    async def scenario():
        service = AllocationService(_config())
        await service.start()
        await service.allocate("proc", 0)
        stats = service.stats()
        assert stats["n_shards"] == 3
        assert stats["ops"] == 1
        assert stats["shed"] == 0
        assert len(stats["shards"]) == 3
        for shard_stats in stats["shards"]:
            assert {"index", "seq", "queue_depth", "shed", "categories"} <= set(
                shard_stats
            )
        await service.stop()

    run(scenario())


# ---------------------------------------------------------------------------
# Request validation
# ---------------------------------------------------------------------------


def test_submit_rejects_malformed_requests():
    async def scenario():
        service = AllocationService(_config())
        await service.start()
        bad = [
            {"op": "explode"},
            {"op": "allocate", "category": "", "task_id": 0},
            {"op": "allocate", "category": "proc"},
            {"op": "allocate", "category": "proc", "task_id": True},
            {"op": "record", "category": "proc", "task_id": 0, "peaks": {}},
            {"op": "record", "category": "proc", "task_id": 0, "peaks": {"gpus": 1}},
            {
                "op": "record",
                "category": "proc",
                "task_id": 0,
                "peaks": {"memory": -5.0},
            },
            {
                "op": "allocate_retry",
                "category": "proc",
                "task_id": 0,
                "previous": {"memory": 1.0},
                "observed": {"memory": 1.0},
                "exhausted": [],
            },
            {
                "op": "allocate_retry",
                "category": "proc",
                "task_id": 0,
                "previous": {"memory": 1.0},
                "observed": {"memory": 1.0},
                "exhausted": ["gpus"],
            },
            {"op": "stats"},  # admin ops are front-end-only
        ]
        for doc in bad:
            with pytest.raises(ProtocolError):
                await service.submit(doc)
        # Nothing reached a shard.
        assert service.stats()["ops"] == 0
        await service.stop()

    run(scenario())


def test_parse_line_and_nested_batch_validation():
    with pytest.raises(ProtocolError):
        parse_line(b"not json\n")
    with pytest.raises(ProtocolError):
        parse_line(b"[1, 2]\n")
    resources = AllocatorConfig().resources
    with pytest.raises(ProtocolError):
        validate_request(
            {"op": "allocate_batch", "requests": [{"op": "allocate_batch"}]},
            resources,
        )
    with pytest.raises(ProtocolError):
        validate_request({"op": "allocate_batch", "requests": []}, resources)


# ---------------------------------------------------------------------------
# Backpressure
# ---------------------------------------------------------------------------


def test_backpressure_sheds_to_conservative_under_queue_pressure():
    async def scenario():
        config = _config(
            n_shards=1,
            backpressure=CircuitBreakerConfig(
                enabled=True, window=6, failure_threshold=0.5, cooldown=1000.0
            ),
            queue_high_watermark=4,
        )
        service = AllocationService(config)
        await service.start()
        conservative = service.shards[0].allocator.conservative_allocation()
        # Launch a burst without yielding: every submission sees the
        # depth left by the previous one, so the queue ramps 0,1,2,...
        tasks = [
            asyncio.ensure_future(
                service.submit({"op": "allocate", "category": "proc", "task_id": i})
            )
            for i in range(30)
        ]
        results = await asyncio.gather(*tasks)
        shed = [r for r in results if r["mode"] == "conservative"]
        assert shed, "deep queue must trip the breaker and shed"
        for result in shed:
            assert ResourceVector.from_state(result["allocation"]) == conservative
        assert service.stats()["shed"] == len(shed)
        assert service.shards[0].breaker.trips >= 1
        # Idle service, shallow queue: the breaker's window refills with
        # successes only after its cooldown; a fresh service stays closed.
        await service.stop()

        calm = AllocationService(_config(n_shards=1))
        await calm.start()
        for i in range(30):
            result = await calm.submit(
                {"op": "allocate", "category": "proc", "task_id": i}
            )
            assert result["mode"] != "conservative"
        assert calm.stats()["shed"] == 0
        await calm.stop()

    run(scenario())


def test_record_is_never_shed():
    async def scenario():
        config = _config(
            n_shards=1,
            backpressure=CircuitBreakerConfig(
                enabled=True, window=2, failure_threshold=0.5, cooldown=1000.0
            ),
            queue_high_watermark=1,
        )
        service = AllocationService(config)
        await service.start()
        ops = []
        for i in range(20):
            ops.append({"op": "allocate", "category": "proc", "task_id": i})
            ops.append(
                {
                    "op": "record",
                    "category": "proc",
                    "task_id": i,
                    "peaks": {"cores": 1, "memory": 500.0, "disk": 10.0},
                }
            )
        tasks = [asyncio.ensure_future(service.submit(op)) for op in ops]
        results = await asyncio.gather(*tasks)
        records = [r for r in results if "recorded" in r]
        assert len(records) == 20
        assert service.shards[0].allocator.records_count("proc") == 20
        assert any(r.get("mode") == "conservative" for r in results)
        await service.stop()

    run(scenario())


# ---------------------------------------------------------------------------
# Durability plumbing
# ---------------------------------------------------------------------------


def test_wal_files_and_snapshot_envelope(tmp_path):
    async def scenario():
        data_dir = str(tmp_path / "data")
        config = _config(data_dir=data_dir, durability="none")
        service = AllocationService(config)
        await service.start()
        for i in range(10):
            await service.allocate(f"cat-{i}", i)
        path = await service.snapshot()
        # Generation 1 was the recovery snapshot at start(); this online
        # cut is generation 2, and the CURRENT pointer tracks it.
        assert os.path.basename(path) == "service.snapshot.000002.json"
        current = json.loads((tmp_path / "data" / "service.snapshot.CURRENT").read_text())
        assert current["entries"][0]["gen"] == 2
        from repro.checkpoint import SERVICE_KIND, file_digest, load_checkpoint

        assert current["entries"][0]["digest"] == file_digest(path)
        _, payload = load_checkpoint(path, kind=SERVICE_KIND)
        assert len(payload["shards"]) == config.n_shards
        assert payload["fingerprint"]["algorithm"] == "greedy_bucketing"
        assert [s["seq"] for s in payload["shards"]] == [
            shard.seq for shard in service.shards
        ]
        await service.stop()

    run(scenario())


def test_resume_refuses_mismatched_fingerprint(tmp_path):
    async def scenario():
        data_dir = str(tmp_path / "data")
        service = AllocationService(_config(data_dir=data_dir))
        await service.start()
        await service.allocate("proc", 0)
        await service.stop()

        from repro.checkpoint import CheckpointError

        other = AllocationService(_config(n_shards=2, data_dir=data_dir))
        with pytest.raises(CheckpointError):
            await other.start()

    run(scenario())


def test_apply_op_is_the_single_semantics_point():
    # The WAL replayer, the live writer, and the reference replays all
    # route through apply_op; spot-check its contract directly.
    allocator = TaskOrientedAllocator(AllocatorConfig(seed=1))
    result = apply_op(allocator, {"op": "allocate", "category": "c", "task_id": 0})
    assert result["mode"] == "exploratory"
    shed = apply_op(
        allocator, {"op": "allocate", "category": "brand-new", "task_id": 1}, shed=True
    )
    assert shed["mode"] == "conservative"
    # Shed operations are state-neutral: the category was never created.
    assert "brand-new" not in allocator.categories()
    with pytest.raises(ValueError):
        apply_op(allocator, {"op": "nope", "category": "c"})
