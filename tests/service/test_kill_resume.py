"""Kill/resume bit-identity of the allocation service.

A seeded, scripted operation stream is the contract: however the
service is interrupted — in-process crash (writer tasks cancelled, no
drain, no final snapshot) or a SIGTERM'd daemon subprocess — a service
resumed from the write-ahead logs answers the *remaining* operations
bit-identically to an uninterrupted run.

The uninterrupted response stream is pinned as a golden file::

    REGEN_GOLDEN=1 PYTHONPATH=src python -m pytest tests/service/test_kill_resume.py

so any drift in allocation semantics, seeding, WAL replay, or response
shape shows up as a byte diff against ``tests/golden/service_stream.jsonl``.
"""

import asyncio
import json
import os
import signal
import socket
import subprocess
import sys
from pathlib import Path
from typing import Any, Dict, List, Optional

import pytest

from repro.core.allocator import AllocatorConfig, ExploratoryConfig
from repro.service import AllocationService, ServiceConfig

GOLDEN_PATH = Path(__file__).resolve().parent.parent / "golden" / "service_stream.jsonl"

CATEGORIES = ["proc", "merge", "fit", "plot", "scan"]


def _script(n: int = 30) -> List[Dict[str, Any]]:
    """The pinned operation stream (allocate/record/retry mix)."""
    ops: List[Dict[str, Any]] = []
    for i in range(n):
        category = CATEGORIES[i % len(CATEGORIES)]
        ops.append({"op": "allocate", "category": category, "task_id": i})
        ops.append(
            {
                "op": "record",
                "category": category,
                "task_id": i,
                "peaks": {
                    "cores": 1,
                    "memory": 250.0 + 41.0 * (i % 13),
                    "disk": 12.0 + 2.0 * (i % 7),
                },
            }
        )
        if i % 6 == 2:
            previous = {"cores": 1, "memory": 180.0 + 9.0 * i, "disk": 11.0}
            ops.append(
                {
                    "op": "allocate_retry",
                    "category": category,
                    "task_id": i,
                    "previous": previous,
                    "observed": previous,
                    "exhausted": ["memory"],
                }
            )
    return ops


def _config(data_dir: Optional[str] = None) -> ServiceConfig:
    return ServiceConfig(
        allocator=AllocatorConfig(
            algorithm="greedy_bucketing",
            seed=11,
            exploratory=ExploratoryConfig(min_records=4),
        ),
        n_shards=3,
        data_dir=data_dir,
        durability="op",
    )


def _canonical(position: int, response: Dict[str, Any]) -> str:
    return json.dumps({"i": position, "response": response}, sort_keys=True)


async def _run_stream(
    config: ServiceConfig,
    ops: List[Dict[str, Any]],
    crash_after: Optional[int] = None,
    snapshot_at: Optional[int] = None,
) -> List[str]:
    """Run the script, optionally crashing (abort) after ``crash_after`` ops."""
    lines: List[str] = []
    service = AllocationService(config)
    await service.start()
    for position, op in enumerate(ops):
        if crash_after is not None and position == crash_after:
            service.abort()
            service = AllocationService(config)
            await service.start()
        if snapshot_at is not None and position == snapshot_at:
            await service.snapshot()
        lines.append(_canonical(position, await service.submit(op)))
    await service.stop()
    return lines


def _golden_lines() -> List[str]:
    return asyncio.run(_run_stream(_config(), _script()))


def test_uninterrupted_stream_matches_golden():
    lines = _golden_lines()
    if os.environ.get("REGEN_GOLDEN"):
        from repro.checkpoint import write_text_atomic

        write_text_atomic(str(GOLDEN_PATH), "\n".join(lines) + "\n")
        pytest.skip(f"regenerated {GOLDEN_PATH.name}")
    assert GOLDEN_PATH.exists(), (
        f"missing golden file {GOLDEN_PATH}; run with REGEN_GOLDEN=1 to create it"
    )
    assert "\n".join(lines) + "\n" == GOLDEN_PATH.read_text(), (
        "uninterrupted service stream diverged from the golden file; "
        "if the change is intentional, regenerate with REGEN_GOLDEN=1"
    )


@pytest.mark.parametrize("crash_after", [1, 13, 37, 60])
def test_crash_resume_stream_is_bit_identical(tmp_path, crash_after):
    """Crash mid-stream, resume from the WAL, finish identically."""
    golden = _golden_lines()
    data_dir = str(tmp_path / "state")
    resumed = asyncio.run(
        _run_stream(_config(data_dir), _script(), crash_after=crash_after)
    )
    assert resumed == golden


def test_double_crash_with_online_snapshot(tmp_path):
    """Snapshot mid-traffic, crash after it, crash again — still identical."""
    golden = _golden_lines()
    data_dir = str(tmp_path / "state")
    ops = _script()

    async def scenario() -> List[str]:
        lines: List[str] = []
        service = AllocationService(_config(data_dir))
        await service.start()
        for position, op in enumerate(ops):
            if position == 20:
                await service.snapshot()  # WALs truncate here
            if position in (31, 52):
                service.abort()
                service = AllocationService(_config(data_dir))
                await service.start()
            lines.append(_canonical(position, await service.submit(op)))
        await service.stop()
        return lines

    assert asyncio.run(scenario()) == golden


def test_resume_tolerates_torn_wal_tail(tmp_path):
    """A partial final WAL line (torn write) is dropped, not fatal."""
    data_dir = str(tmp_path / "state")
    ops = _script()
    config = _config(data_dir)

    async def first_leg() -> None:
        service = AllocationService(config)
        await service.start()
        for op in ops[:15]:
            await service.submit(op)
        service.abort()

    asyncio.run(first_leg())
    # Simulate a crash mid-append: garbage half-line at one WAL's tail.
    torn = False
    for name in sorted(os.listdir(data_dir)):
        if name.endswith(".wal") and os.path.getsize(os.path.join(data_dir, name)):
            with open(os.path.join(data_dir, name), "a", encoding="utf-8") as fh:
                fh.write('{"seq": 9999, "op": {"op": "allo')
            torn = True
            break
    assert torn

    async def second_leg() -> int:
        service = AllocationService(config)
        await service.start()
        recovered = service.recovered_ops
        await service.stop()
        return recovered

    assert asyncio.run(second_leg()) == 15


# ---------------------------------------------------------------------------
# The daemon: SIGTERM mid-ingest, restart, continue
# ---------------------------------------------------------------------------


def _spawn_daemon(socket_path: str, data_dir: str) -> subprocess.Popen:
    env = dict(os.environ)
    env["PYTHONPATH"] = "src"
    proc = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro.cli",
            "serve",
            "--socket",
            socket_path,
            "--checkpoint-dir",
            data_dir,
            "--shards",
            "2",
            "--service-algorithm",
            "greedy_bucketing",
            "--service-seed",
            "3",
            "--durability",
            "op",
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        env=env,
        cwd=str(Path(__file__).resolve().parent.parent.parent),
    )
    ready = json.loads(proc.stdout.readline())
    assert ready["ready"] is True
    assert ready["endpoint"] == f"unix:{socket_path}"
    return proc


def _session(socket_path: str, ops: List[Dict[str, Any]]) -> List[Dict[str, Any]]:
    """One awaits-each-response client session over the UNIX socket."""
    responses = []
    with socket.socket(socket.AF_UNIX, socket.SOCK_STREAM) as sock:
        sock.settimeout(30.0)
        sock.connect(socket_path)
        stream = sock.makefile("rwb")
        for doc in ops:
            stream.write(json.dumps(doc).encode("utf-8") + b"\n")
            stream.flush()
            responses.append(json.loads(stream.readline()))
    return responses


def _daemon_ops() -> List[Dict[str, Any]]:
    ops: List[Dict[str, Any]] = []
    for i in range(16):
        category = CATEGORIES[i % 3]
        ops.append({"id": 2 * i, "op": "allocate", "category": category, "task_id": i})
        ops.append(
            {
                "id": 2 * i + 1,
                "op": "record",
                "category": category,
                "task_id": i,
                "peaks": {"cores": 1, "memory": 300.0 + 20.0 * i, "disk": 10.0},
            }
        )
    return ops


@pytest.mark.service
def test_daemon_sigterm_resume_stream_is_bit_identical(tmp_path):
    ops = _daemon_ops()
    kill_at = 11

    # Reference: one uninterrupted daemon.
    ref_socket = str(tmp_path / "ref.sock")
    ref_dir = str(tmp_path / "ref-state")
    proc = _spawn_daemon(ref_socket, ref_dir)
    try:
        reference = _session(ref_socket, ops)
    finally:
        proc.send_signal(signal.SIGTERM)
        assert proc.wait(timeout=30) == 128 + signal.SIGTERM

    # Interrupted: SIGTERM after kill_at acknowledged ops, restart on the
    # same state directory, continue the stream.
    data_dir = str(tmp_path / "state")
    sock_a = str(tmp_path / "a.sock")
    proc = _spawn_daemon(sock_a, data_dir)
    first = _session(sock_a, ops[:kill_at])
    proc.send_signal(signal.SIGTERM)
    assert proc.wait(timeout=30) == 128 + signal.SIGTERM
    stderr = proc.stderr.read().decode("utf-8", "replace")
    assert "Traceback" not in stderr, stderr

    sock_b = str(tmp_path / "b.sock")
    proc = _spawn_daemon(sock_b, data_dir)
    try:
        rest = _session(sock_b, ops[kill_at:])
    finally:
        proc.send_signal(signal.SIGTERM)
        assert proc.wait(timeout=30) == 128 + signal.SIGTERM

    assert first + rest == reference
