"""Offline fsck + backup tooling against real service data dirs.

Every corruption class the durability layer defends against must be
*visible* to the offline auditor: mid-stream WAL damage, snapshot
digest drift, a missing referenced generation, a mangled CURRENT
pointer, sequence gaps.  Torn tails and quarantine directories are
notes, not errors — they are evidence of survived failures, not live
ones.  The backup path must refuse bit-rotted or hostile archives.
"""

import asyncio
import io
import json
import os
import tarfile

import pytest

from repro.checkpoint import JournalWriter, file_digest
from repro.cli import main as cli_main
from repro.core.allocator import AllocatorConfig
from repro.faultfs import flip_bit
from repro.service.config import ServiceConfig
from repro.service.fsck import (
    BACKUP_KIND,
    BACKUP_VERSION,
    FSCK_ERRORS,
    FSCK_FAILED,
    FSCK_OK,
    MANIFEST_NAME,
    export_backup,
    import_backup,
    render_report,
    run_fsck,
)
from repro.service.service import (
    CURRENT_FILENAME,
    AllocationService,
    snapshot_filename,
)


def run(coro):
    return asyncio.run(coro)


def _config(data_dir):
    return ServiceConfig(
        allocator=AllocatorConfig(algorithm="greedy_bucketing", seed=11),
        n_shards=2,
        data_dir=str(data_dir),
        durability="op",
    )


def _op(i):
    return {"op": "allocate", "category": f"cat-{i % 3}", "task_id": i, "key": f"k{i}"}


def _populate(data_dir, n_ops=8, snapshot_mid=True):
    """Build a real data dir: ops, a mid-stream cut, live WAL tail."""

    async def scenario():
        service = AllocationService(_config(data_dir))
        await service.start()
        for i in range(n_ops):
            await service.submit(_op(i))
            if snapshot_mid and i == n_ops // 2:
                await service.snapshot()
        digests = service.shard_digests()
        service.abort()  # leave a live WAL tail for fsck to chew on
        return digests

    return run(scenario())


def _newest_gen_path(data_dir):
    with open(os.path.join(str(data_dir), CURRENT_FILENAME), encoding="utf-8") as f:
        doc = json.load(f)
    return os.path.join(str(data_dir), snapshot_filename(doc["entries"][0]["gen"]))


# ---------------------------------------------------------------------------
# run_fsck
# ---------------------------------------------------------------------------


def test_clean_data_dir_is_clean(tmp_path):
    _populate(tmp_path)
    report = run_fsck(str(tmp_path))
    assert report.ok
    assert report.exit_code == FSCK_OK
    assert report.errors == []
    assert report.checked_files >= 4  # CURRENT + snapshot(s) + 2 WALs
    assert "clean" in render_report(report)


def test_fsck_rejects_missing_directory(tmp_path):
    with pytest.raises(ValueError):
        run_fsck(str(tmp_path / "nope"))


def test_mid_stream_wal_corruption_is_an_error(tmp_path):
    _populate(tmp_path)
    wals = [n for n in os.listdir(tmp_path) if n.endswith(".wal")]
    victim = os.path.join(str(tmp_path), max(
        wals, key=lambda n: os.path.getsize(os.path.join(str(tmp_path), n))
    ))
    flip_bit(victim, byte_offset=os.path.getsize(victim) // 3)
    report = run_fsck(str(tmp_path))
    assert not report.ok
    assert report.exit_code == FSCK_ERRORS
    assert any("corruption" in f.problem for f in report.errors)
    assert "CORRUPTION DETECTED" in render_report(report)


def test_snapshot_digest_drift_is_an_error(tmp_path):
    _populate(tmp_path)
    flip_bit(_newest_gen_path(tmp_path), byte_offset=50)
    report = run_fsck(str(tmp_path))
    assert any("digest mismatch" in f.problem for f in report.errors)


def test_missing_referenced_generation_is_an_error(tmp_path):
    _populate(tmp_path)
    os.remove(_newest_gen_path(tmp_path))
    report = run_fsck(str(tmp_path))
    assert any("referenced by CURRENT" in f.problem for f in report.errors)


def test_mangled_current_pointer_is_an_error(tmp_path):
    _populate(tmp_path)
    (tmp_path / CURRENT_FILENAME).write_text("{]")
    report = run_fsck(str(tmp_path))
    assert any(f.path == CURRENT_FILENAME for f in report.errors)


def test_sequence_gap_is_an_error(tmp_path):
    writer = JournalWriter(str(tmp_path / "shard-00.wal"), sync="op")
    writer.append({"seq": 1, "op": "allocate"})
    writer.append({"seq": 3, "op": "allocate"})  # 2 went missing
    writer.close()
    report = run_fsck(str(tmp_path))
    assert any("sequence gap" in f.problem for f in report.errors)


def test_torn_tail_and_quarantine_are_notes_not_errors(tmp_path):
    _populate(tmp_path)
    wal = os.path.join(str(tmp_path), "shard-00.wal")
    with open(wal, "ab") as handle:
        handle.write(b"F1 999 deadbe")  # crashed mid-append, no newline
    quarantine = tmp_path / "shard-01.wal.corrupt"
    quarantine.mkdir()
    (quarantine / "0001-shard-01.wal").write_text("old damage\n")
    report = run_fsck(str(tmp_path))
    assert report.ok  # notes never fail the check
    assert any("torn final line" in f.problem for f in report.notes)
    assert any("quarantine" in f.problem for f in report.notes)


# ---------------------------------------------------------------------------
# Backup export / import
# ---------------------------------------------------------------------------


def test_backup_round_trip_restores_identical_state(tmp_path):
    source = tmp_path / "source"
    expected = _populate(source)
    archive = tmp_path / "backup.tar.gz"
    manifest = export_backup(str(source), str(archive))
    assert manifest["kind"] == BACKUP_KIND
    assert manifest["files"]

    target = tmp_path / "restored"
    restored = import_backup(str(archive), str(target))
    assert restored["files"] == manifest["files"]
    for name, digest in manifest["files"].items():
        assert file_digest(os.path.join(str(target), name)) == digest
    assert run_fsck(str(target)).ok

    async def boot():
        service = AllocationService(_config(target))
        await service.start()
        digests = service.shard_digests()
        await service.stop()
        return digests

    assert run(boot()) == expected


def test_import_refuses_occupied_dir_unless_forced(tmp_path):
    source = tmp_path / "source"
    _populate(source)
    archive = tmp_path / "backup.tar.gz"
    export_backup(str(source), str(archive))
    with pytest.raises(ValueError, match="--force"):
        import_backup(str(archive), str(source))
    import_backup(str(archive), str(source), force=True)
    assert run_fsck(str(source)).ok


def _write_archive(path, manifest, members):
    with tarfile.open(path, "w:gz") as tar:
        blob = json.dumps(manifest).encode("utf-8")
        info = tarfile.TarInfo(MANIFEST_NAME)
        info.size = len(blob)
        tar.addfile(info, io.BytesIO(blob))
        for name, data in members.items():
            info = tarfile.TarInfo(name)
            info.size = len(data)
            tar.addfile(info, io.BytesIO(data))


def test_import_refuses_bit_rotted_member(tmp_path):
    manifest = {
        "kind": BACKUP_KIND,
        "version": BACKUP_VERSION,
        "files": {"shard-00.wal": "0" * 64},  # will not match the bytes
    }
    archive = tmp_path / "rotten.tar.gz"
    _write_archive(str(archive), manifest, {"shard-00.wal": b"data\n"})
    target = tmp_path / "restored"
    with pytest.raises(ValueError, match="corrupt"):
        import_backup(str(archive), str(target))
    # Nothing half-restored: the staged file was rolled back.
    assert not [n for n in os.listdir(target) if not n.endswith(".import")]


def test_import_refuses_unsafe_member_names(tmp_path):
    manifest = {
        "kind": BACKUP_KIND,
        "version": BACKUP_VERSION,
        "files": {os.path.join("..", "escape.wal"): "0" * 64},
    }
    archive = tmp_path / "hostile.tar.gz"
    _write_archive(str(archive), manifest, {})
    with pytest.raises(ValueError, match="unsafe"):
        import_backup(str(archive), str(tmp_path / "restored"))


def test_import_refuses_foreign_archives(tmp_path):
    archive = tmp_path / "foreign.tar.gz"
    _write_archive(str(archive), {"kind": "something-else"}, {})
    with pytest.raises(ValueError, match=BACKUP_KIND):
        import_backup(str(archive), str(tmp_path / "restored"))


# ---------------------------------------------------------------------------
# CLI surface
# ---------------------------------------------------------------------------


def test_cli_fsck_exit_codes_and_json(tmp_path, capsys):
    _populate(tmp_path)
    assert cli_main(["fsck", "--data-dir", str(tmp_path)]) == FSCK_OK
    capsys.readouterr()
    assert cli_main(["fsck", "--data-dir", str(tmp_path), "--json"]) == FSCK_OK
    doc = json.loads(capsys.readouterr().out)
    assert doc["ok"] is True

    flip_bit(_newest_gen_path(tmp_path), byte_offset=60)
    assert cli_main(["fsck", "--data-dir", str(tmp_path)]) == FSCK_ERRORS
    assert cli_main(["fsck"]) == FSCK_FAILED  # no --data-dir
    assert cli_main(["fsck", "--data-dir", str(tmp_path / "nope")]) == FSCK_FAILED


def test_cli_backup_round_trip(tmp_path, capsys):
    source = tmp_path / "source"
    _populate(source)
    archive = str(tmp_path / "backup.tar.gz")
    assert cli_main(["snapshot-export", "--data-dir", str(source)]) == FSCK_FAILED
    assert (
        cli_main(["snapshot-export", "--data-dir", str(source), "--archive", archive])
        == 0
    )
    target = str(tmp_path / "restored")
    assert (
        cli_main(["snapshot-import", "--data-dir", target, "--archive", archive]) == 0
    )
    capsys.readouterr()
    assert cli_main(["fsck", "--data-dir", target]) == FSCK_OK
    # Occupied target without --force fails; with it, succeeds.
    assert (
        cli_main(["snapshot-import", "--data-dir", target, "--archive", archive])
        == FSCK_FAILED
    )
    assert (
        cli_main(
            ["snapshot-import", "--data-dir", target, "--archive", archive, "--force"]
        )
        == 0
    )
