"""``allocate_batch`` is bit-identical to a sequential loop.

The service's batch path coalesces a request list into per-shard
contiguous runs; the contract is that the responses — allocations,
modes, record counts, and the resulting allocator state — are exactly
what a client awaiting each request one at a time would have seen.

The sweep covers every registered algorithm (the paper's seven plus the
quantized/kmeans extensions) and both settings of the incremental
re-bucketing switch, because the bucketing algorithms are the ones with
RNG- and order-sensitive internals where coalescing bugs would hide.
"""

import asyncio
from typing import Any, Dict, List

import pytest

from repro.core.allocator import AllocatorConfig, ExploratoryConfig
from repro.core.base import ALGORITHM_REGISTRY
from repro.core.resources import ResourceVector
from repro.service import AllocationService, ServiceConfig

# Every registered algorithm, plus the non-default setting of the
# incremental re-bucketing switch for the two PR-6 variants.
VARIANTS = [(name, {}) for name in sorted(ALGORITHM_REGISTRY)] + [
    ("exhaustive_bucketing", {"incremental": False}),
    ("greedy_bucketing", {"incremental": True}),
]

CATEGORIES = ["proc", "merge", "fit", "plot"]


def _script(n: int = 48) -> List[Dict[str, Any]]:
    """A deterministic mixed op stream touching every shard."""
    ops: List[Dict[str, Any]] = []
    for i in range(n):
        category = CATEGORIES[i % len(CATEGORIES)]
        ops.append({"op": "allocate", "category": category, "task_id": i})
        ops.append(
            {
                "op": "record",
                "category": category,
                "task_id": i,
                "peaks": {
                    "cores": 1,
                    "memory": 300.0 + 53.0 * (i % 17),
                    "disk": 20.0 + 3.0 * (i % 5),
                },
            }
        )
        if i % 7 == 3:
            previous = {"cores": 1, "memory": 200.0 + 10.0 * i, "disk": 15.0}
            ops.append(
                {
                    "op": "allocate_retry",
                    "category": category,
                    "task_id": i,
                    "previous": previous,
                    "observed": previous,
                    "exhausted": ["memory"],
                }
            )
    return ops


def _config(algorithm: str, kwargs: Dict[str, Any], **overrides) -> ServiceConfig:
    defaults = dict(
        allocator=AllocatorConfig(
            algorithm=algorithm,
            algorithm_kwargs=kwargs,
            seed=7,
            exploratory=ExploratoryConfig(min_records=4),
        ),
        n_shards=3,
    )
    defaults.update(overrides)
    return ServiceConfig(**defaults)


async def _sequential(config: ServiceConfig, ops) -> tuple:
    service = AllocationService(config)
    await service.start()
    responses = [await service.submit(op) for op in ops]
    digests = service.shard_digests()
    await service.stop()
    return responses, digests


async def _batched(config: ServiceConfig, ops, chunk: int) -> tuple:
    service = AllocationService(config)
    await service.start()
    responses: List[Dict[str, Any]] = []
    for start in range(0, len(ops), chunk):
        responses.extend(await service.submit_batch(ops[start : start + chunk]))
    digests = service.shard_digests()
    await service.stop()
    return responses, digests


@pytest.mark.parametrize(
    "algorithm,kwargs",
    VARIANTS,
    ids=[
        name + ("" if not kw else f"[incremental={kw['incremental']}]")
        for name, kw in VARIANTS
    ],
)
def test_batch_matches_sequential(algorithm, kwargs):
    async def scenario():
        ops = _script()
        seq_responses, seq_digests = await _sequential(_config(algorithm, kwargs), ops)
        for chunk in (1, 5, len(ops)):
            batch_responses, batch_digests = await _batched(
                _config(algorithm, kwargs), ops, chunk
            )
            assert batch_responses == seq_responses, (
                f"{algorithm}: batch chunk={chunk} diverges from the "
                "sequential loop"
            )
            assert batch_digests == seq_digests

    asyncio.run(scenario())


def test_batch_matches_sequential_with_capacity_clamp():
    """The retry doubling path hits the capacity ceiling identically."""

    async def scenario():
        ceiling = ResourceVector.of(cores=4, memory=900.0, disk=400.0)
        ops = _script()
        config = _config("greedy_bucketing", {}, capacity=ceiling)
        seq_responses, seq_digests = await _sequential(config, ops)
        clamped = [
            r
            for r in seq_responses
            if r.get("mode") == "retry" and r["allocation"]["memory"] == 900.0
        ]
        assert clamped, "script must exercise the capacity clamp"
        batch_responses, batch_digests = await _batched(
            _config("greedy_bucketing", {}, capacity=ceiling), ops, 7
        )
        assert batch_responses == seq_responses
        assert batch_digests == seq_digests

    asyncio.run(scenario())


def test_concurrent_batches_preserve_internal_order():
    """Interleaved batches stay contiguous per shard.

    Two batches submitted concurrently may interleave *with each other*
    at shard granularity, but each batch's own operations must be
    applied as one contiguous run per shard — their seqs are
    consecutive.
    """

    async def scenario():
        service = AllocationService(_config("greedy_bucketing", {}))
        await service.start()
        batch_a = [
            {"op": "allocate", "category": "proc", "task_id": i} for i in range(6)
        ]
        batch_b = [
            {"op": "allocate", "category": "proc", "task_id": 100 + i}
            for i in range(6)
        ]
        responses_a, responses_b = await asyncio.gather(
            service.submit_batch(batch_a), service.submit_batch(batch_b)
        )
        for responses in (responses_a, responses_b):
            seqs = [r["seq"] for r in responses]
            assert seqs == list(range(seqs[0], seqs[0] + len(seqs)))
        await service.stop()

    asyncio.run(scenario())
