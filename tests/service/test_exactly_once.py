"""Exactly-once allocation across crashes: the acceptance proof.

A client that retries the same idempotency key across a mid-WAL-append
crash and a daemon restart must observe **one** applied allocation and
bit-identical responses; the dedup window must survive both WAL-replay
and snapshot recovery.  The crash matrix arms every registered crash
site in turn and asserts the per-shard state digests match a fault-free
reference exactly — gap-free seqs, no double-applied op.
"""

import asyncio
import json
import os
import socket
import subprocess
import sys
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple

import pytest

from repro.core.allocator import AllocatorConfig, ExploratoryConfig
from repro.service import (
    AllocationService,
    CRASH_POINTS,
    CrashPointFired,
    ServiceConfig,
)

CATEGORIES = ["proc", "merge", "fit", "plot", "scan"]


@pytest.fixture(autouse=True)
def _clean_crash_points():
    CRASH_POINTS.reset()
    yield
    CRASH_POINTS.reset()


def _config(data_dir: Optional[str] = None, dedup_window: int = 256) -> ServiceConfig:
    return ServiceConfig(
        allocator=AllocatorConfig(
            algorithm="greedy_bucketing",
            seed=11,
            exploratory=ExploratoryConfig(min_records=3),
        ),
        n_shards=3,
        data_dir=data_dir,
        durability="op",
        dedup_window=dedup_window,
    )


def _script(n: int = 24) -> List[Dict[str, Any]]:
    """A keyed allocate/record mix touching every shard."""
    ops: List[Dict[str, Any]] = []
    for i in range(n):
        category = CATEGORIES[i % len(CATEGORIES)]
        ops.append(
            {
                "op": "allocate",
                "category": category,
                "task_id": i,
                "key": f"once/a{i}",
            }
        )
        ops.append(
            {
                "op": "record",
                "category": category,
                "task_id": i,
                "peaks": {"cores": 1, "memory": 300.0 + 37.0 * (i % 11), "disk": 9.0},
                "key": f"once/r{i}",
            }
        )
    return ops


async def _reference() -> Tuple[List[str], List[Dict[str, Any]], int]:
    """Fault-free digests, responses, and total seq of the script."""
    service = AllocationService(_config())
    await service.start()
    responses = [await service.submit(dict(op)) for op in _script()]
    digests = service.shard_digests()
    total_seq = sum(shard.seq for shard in service.shards)
    await service.stop()
    return digests, responses, total_seq


# ---------------------------------------------------------------------------
# The crash matrix: every registered site, restart + keyed retry
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("at_hit", [1, 7])
@pytest.mark.parametrize(
    "site",
    [
        "shard.wal-append.before",
        "shard.wal-append.after",
        "shard.apply.before",
        "shard.apply.after",
    ],
)
def test_crash_matrix_is_exactly_once(tmp_path, site, at_hit):
    reference_digests, reference_responses, reference_seq = asyncio.run(_reference())
    config = _config(str(tmp_path / "state"))

    async def scenario():
        service = AllocationService(config)
        await service.start()
        CRASH_POINTS.arm(site, at_hit=at_hit, mode="raise")
        responses: List[Dict[str, Any]] = []
        crashes = 0
        for op in _script():
            while True:
                try:
                    responses.append(await service.submit(dict(op)))
                    break
                except CrashPointFired:
                    crashes += 1
                    service.abort()
                    service = AllocationService(config)
                    await service.start()
        digests = service.shard_digests()
        total_seq = sum(shard.seq for shard in service.shards)
        await service.stop()
        return responses, digests, total_seq, crashes

    responses, digests, total_seq, crashes = asyncio.run(scenario())
    assert crashes == 1  # the armed site actually fired
    # Bit-identical responses: the retried op answered exactly as the
    # uninterrupted run answered it.
    assert responses == reference_responses
    # Bit-identical state, gap-free seqs, no double-applied op.
    assert digests == reference_digests
    assert total_seq == reference_seq


@pytest.mark.parametrize("site", ["service.snapshot.before", "service.snapshot.after"])
def test_crash_during_snapshot_is_exactly_once(tmp_path, site):
    reference_digests, reference_responses, reference_seq = asyncio.run(_reference())
    config = _config(str(tmp_path / "state"))
    ops = _script()

    async def scenario():
        service = AllocationService(config)
        await service.start()
        responses: List[Dict[str, Any]] = []
        crashes = 0
        for position, op in enumerate(ops):
            if position == len(ops) // 2:
                CRASH_POINTS.arm(site, at_hit=1, mode="raise")
                try:
                    await service.snapshot()
                except CrashPointFired:
                    crashes += 1
                    service.abort()
                    service = AllocationService(config)
                    await service.start()
            responses.append(await service.submit(dict(op)))
        digests = service.shard_digests()
        total_seq = sum(shard.seq for shard in service.shards)
        await service.stop()
        return responses, digests, total_seq, crashes

    responses, digests, total_seq, crashes = asyncio.run(scenario())
    assert crashes == 1
    assert responses == reference_responses
    assert digests == reference_digests
    assert total_seq == reference_seq


def test_crash_kills_queued_work_with_ambiguous_error(tmp_path):
    """Concurrent submitters behind the crash see CrashPointFired too."""

    async def scenario():
        service = AllocationService(_config(str(tmp_path / "state")))
        await service.start()
        CRASH_POINTS.arm("shard.apply.before", at_hit=1, mode="raise")
        ops = [
            {"op": "allocate", "category": "proc", "task_id": i, "key": f"q/{i}"}
            for i in range(6)
        ]
        results = await asyncio.gather(
            *(service.submit(dict(op)) for op in ops), return_exceptions=True
        )
        health = service.health()
        service.abort()
        return results, health

    results, health = asyncio.run(scenario())
    assert all(isinstance(r, CrashPointFired) for r in results)
    assert health["ok"] is False  # the crashed shard shows up in health


# ---------------------------------------------------------------------------
# Dedup-window durability
# ---------------------------------------------------------------------------


def test_dedup_survives_wal_replay(tmp_path):
    config = _config(str(tmp_path / "state"))

    async def scenario():
        service = AllocationService(config)
        await service.start()
        first = await service.submit(
            {"op": "allocate", "category": "proc", "task_id": 1, "key": "k1"}
        )
        service.abort()  # crash before any snapshot covers the op
        service = AllocationService(config)
        await service.start()
        again = await service.submit(
            {"op": "allocate", "category": "proc", "task_id": 1, "key": "k1"}
        )
        hits = sum(shard.dedup_hits for shard in service.shards)
        await service.stop()
        return first, again, hits

    first, again, hits = asyncio.run(scenario())
    assert again == first  # response rebuilt from WAL replay, verbatim
    assert hits == 1


def test_dedup_survives_snapshot_recovery(tmp_path):
    config = _config(str(tmp_path / "state"))

    async def scenario():
        service = AllocationService(config)
        await service.start()
        first = await service.submit(
            {"op": "allocate", "category": "proc", "task_id": 1, "key": "k1"}
        )
        await service.snapshot()  # dedup window rides the envelope
        service.abort()
        service = AllocationService(config)
        await service.start()
        again = await service.submit(
            {"op": "allocate", "category": "proc", "task_id": 1, "key": "k1"}
        )
        hits = sum(shard.dedup_hits for shard in service.shards)
        await service.stop()
        return first, again, hits

    first, again, hits = asyncio.run(scenario())
    assert again == first
    assert hits == 1


def test_dedup_window_evicts_oldest(tmp_path):
    async def scenario():
        service = AllocationService(_config(dedup_window=2))
        await service.start()
        shard = service.shards[service.shard_for("proc")]
        first = await service.submit(
            {"op": "allocate", "category": "proc", "task_id": 1, "key": "k1"}
        )
        await service.submit(
            {"op": "allocate", "category": "proc", "task_id": 2, "key": "k2"}
        )
        await service.submit(
            {"op": "allocate", "category": "proc", "task_id": 3, "key": "k3"}
        )
        # k1 evicted: the same key now applies *again* (new seq).
        replayed = await service.submit(
            {"op": "allocate", "category": "proc", "task_id": 1, "key": "k1"}
        )
        hits = shard.dedup_hits
        await service.stop()
        return first, replayed, hits

    first, replayed, hits = asyncio.run(scenario())
    assert hits == 0
    assert replayed["seq"] > first["seq"]


def test_dedup_disabled_with_zero_window():
    async def scenario():
        service = AllocationService(_config(dedup_window=0))
        await service.start()
        first = await service.submit(
            {"op": "allocate", "category": "proc", "task_id": 1, "key": "k1"}
        )
        second = await service.submit(
            {"op": "allocate", "category": "proc", "task_id": 1, "key": "k1"}
        )
        await service.stop()
        return first, second

    first, second = asyncio.run(scenario())
    assert second["seq"] > first["seq"]  # both applied; dedup is off


def test_dedup_hit_returns_stored_response_not_reapplied():
    async def scenario():
        service = AllocationService(_config())
        await service.start()
        shard = service.shards[service.shard_for("proc")]
        first = await service.submit(
            {"op": "allocate", "category": "proc", "task_id": 1, "key": "k1"}
        )
        seq_before = shard.seq
        duplicate = await service.submit(
            {"op": "allocate", "category": "proc", "task_id": 1, "key": "k1"}
        )
        await service.stop()
        return first, duplicate, seq_before, shard.seq, shard.dedup_hits

    first, duplicate, seq_before, seq_after, hits = asyncio.run(scenario())
    assert duplicate == first  # verbatim, including the original seq
    assert seq_after == seq_before  # no new sequence number
    assert hits == 1


def test_batch_with_duplicate_keys_is_exactly_once():
    """A batch repeating an already-applied key coalesces to one apply."""

    async def scenario():
        service = AllocationService(_config())
        await service.start()
        first = await service.submit(
            {"op": "allocate", "category": "proc", "task_id": 1, "key": "dup"}
        )
        batch = await service.submit_batch(
            [
                {"op": "allocate", "category": "proc", "task_id": 1, "key": "dup"},
                {"op": "allocate", "category": "proc", "task_id": 2, "key": "new"},
            ]
        )
        await service.stop()
        return first, batch

    first, batch = asyncio.run(scenario())
    assert batch[0] == first
    assert batch[1]["seq"] == first["seq"] + 1  # only the new key consumed a seq


# ---------------------------------------------------------------------------
# The daemon: hard os._exit at a crash site, restart, keyed retry
# ---------------------------------------------------------------------------


def _spawn_daemon(
    socket_path: str, data_dir: str, chaos_crash: Optional[str] = None
) -> subprocess.Popen:
    env = dict(os.environ)
    env["PYTHONPATH"] = "src"
    argv = [
        sys.executable,
        "-m",
        "repro.cli",
        "serve",
        "--socket",
        socket_path,
        "--checkpoint-dir",
        data_dir,
        "--shards",
        "2",
        "--service-algorithm",
        "greedy_bucketing",
        "--service-seed",
        "3",
        "--durability",
        "op",
    ]
    if chaos_crash is not None:
        argv += ["--chaos-crash", chaos_crash]
    proc = subprocess.Popen(
        argv,
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        env=env,
        cwd=str(Path(__file__).resolve().parent.parent.parent),
    )
    ready = json.loads(proc.stdout.readline())
    assert ready["ready"] is True
    return proc


@pytest.mark.service
def test_daemon_hard_exit_at_crash_point_then_exactly_once(tmp_path):
    """The full acceptance scenario, over the real wire.

    The daemon hard-exits (os._exit, no snapshot, no drain) at the
    WAL-append boundary mid-session; a restarted daemon answers the
    retried keys with the *same* responses the first daemon gave, and
    the retried tail continues exactly where the crash interrupted.
    """
    from repro.service import RetryPolicy, ServiceClient

    socket_path = str(tmp_path / "daemon.sock")
    data_dir = str(tmp_path / "state")
    ops = [
        {"op": "allocate", "category": CATEGORIES[i % 3], "task_id": i, "key": f"d/{i}"}
        for i in range(12)
    ]

    crash_site = "shard.wal-append.after:5"
    proc = _spawn_daemon(socket_path, data_dir, chaos_crash=crash_site)
    first_responses: List[Dict[str, Any]] = []
    crashed_at: Optional[int] = None
    try:
        with socket.socket(socket.AF_UNIX, socket.SOCK_STREAM) as sock:
            sock.settimeout(30.0)
            sock.connect(socket_path)
            stream = sock.makefile("rwb")
            for position, doc in enumerate(ops):
                try:
                    stream.write(json.dumps(doc).encode() + b"\n")
                    stream.flush()
                    line = stream.readline()
                    if not line:
                        crashed_at = position
                        break
                    first_responses.append(json.loads(line))
                except (BrokenPipeError, ConnectionResetError, OSError):
                    crashed_at = position
                    break
        assert proc.wait(timeout=30.0) == 70  # CrashPoints.EXIT_CODE
        assert crashed_at is not None and crashed_at < len(ops)
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait()

    # Restart cleanly (no chaos) and replay the WHOLE keyed script with
    # the resilient client: already-applied prefix must come back
    # verbatim from the dedup window, the tail applies fresh.
    os.unlink(socket_path)
    proc = _spawn_daemon(socket_path, data_dir)
    try:
        client = ServiceClient(
            socket_path=socket_path,
            auto_key=False,
            client_id="daemon-retry",
            retry=RetryPolicy(backoff_base=0.01, backoff_max=0.1),
        )
        retried = [client.call(dict(doc)) for doc in ops]
        health = client.health()
        client.shutdown()
        client.close()
        assert proc.wait(timeout=30.0) == 0
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait()

    # Every response the first daemon DID give is reproduced verbatim.
    for position, response in enumerate(first_responses):
        assert response["ok"] is True
        assert retried[position] == response["result"]
    # The retried prefix was answered from the dedup window, not
    # re-applied: per-shard seqs are gap-free and total exactly len(ops).
    assert sum(s["seq"] for s in health["shards"]) == len(ops)
    assert health["dedup_hits"] >= len(first_responses)


@pytest.mark.service
def test_daemon_sigkill_then_keyed_retry_is_exactly_once(tmp_path):
    """SIGKILL (no crash point, no cleanup) — same exactly-once outcome."""
    from repro.service import RetryPolicy, ServiceClient

    socket_path = str(tmp_path / "daemon.sock")
    data_dir = str(tmp_path / "state")
    ops = [
        {"op": "allocate", "category": CATEGORIES[i % 3], "task_id": i, "key": f"s/{i}"}
        for i in range(10)
    ]
    proc = _spawn_daemon(socket_path, data_dir)
    try:
        with socket.socket(socket.AF_UNIX, socket.SOCK_STREAM) as sock:
            sock.settimeout(30.0)
            sock.connect(socket_path)
            stream = sock.makefile("rwb")
            for doc in ops[:6]:
                stream.write(json.dumps(doc).encode() + b"\n")
                stream.flush()
                assert json.loads(stream.readline())["ok"] is True
        proc.kill()
        proc.wait(timeout=30.0)
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait()

    os.unlink(socket_path)
    proc = _spawn_daemon(socket_path, data_dir)
    try:
        client = ServiceClient(
            socket_path=socket_path,
            auto_key=False,
            client_id="sigkill-retry",
            retry=RetryPolicy(backoff_base=0.01, backoff_max=0.1),
        )
        for doc in ops:  # full replay: prefix dedups, tail applies
            assert "allocation" in client.call(dict(doc))
        health = client.health()
        client.shutdown()
        client.close()
        assert proc.wait(timeout=30.0) == 0
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait()
    assert sum(s["seq"] for s in health["shards"]) == len(ops)
    assert health["dedup_hits"] == 6
