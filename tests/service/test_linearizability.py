"""Linearizability of the sharded allocation service.

Hypothesis generates concurrent client schedules — several clients, each
issuing a program of allocate/record/retry/batch operations with
explicit ``asyncio.sleep(0)`` yield points so the event loop interleaves
them differently per schedule — and runs them against a live
:class:`AllocationService`.  Every response is stamped with the shard
and the shard's applied-sequence number, which is the service's *claim*
about the total order it linearized the operations into.

The harness then replays that claimed order, per shard, against a fresh
single-threaded :class:`TaskOrientedAllocator` built from the same
derived seed, through the very same :func:`apply_op` the live writer
uses.  The service is linearizable iff:

* the claimed order is a real order — per-shard seqs are exactly
  ``1..N`` with no gaps or duplicates;
* it respects program order — each client's operations on a shard carry
  strictly increasing seqs;
* every live response is bit-identical to the reference replay at the
  claimed position;
* the final shard digests match the reference allocators' digests.

Everything is seeded and wall-clock free: the only nondeterminism is
the hypothesis-chosen schedule, which is exactly what shrinks on
failure.
"""

import asyncio
from typing import Any, Dict, List, Tuple

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.allocator import AllocatorConfig, ExploratoryConfig, TaskOrientedAllocator
from repro.service import AllocationService, ServiceConfig, apply_op
from repro.sim.resilience import CircuitBreakerConfig

N_SHARDS = 2
CATEGORIES = ["proc", "merge", "fit", "plot", "scan", "calib"]

# One client step: (kind, category index, yields before submitting,
# magnitude driving the record/retry vectors).
_step = st.tuples(
    st.sampled_from(["allocate", "record", "record", "retry", "batch"]),
    st.integers(min_value=0, max_value=len(CATEGORIES) - 1),
    st.integers(min_value=0, max_value=3),
    st.integers(min_value=100, max_value=4000),
)

# A schedule: 2-4 concurrent clients, each a program of 1-8 steps.
_schedule = st.lists(
    st.lists(_step, min_size=1, max_size=8), min_size=2, max_size=4
)


def _service_config(**overrides) -> ServiceConfig:
    defaults = dict(
        allocator=AllocatorConfig(
            algorithm="greedy_bucketing",
            seed=42,
            exploratory=ExploratoryConfig(min_records=2),
        ),
        n_shards=N_SHARDS,
    )
    defaults.update(overrides)
    return ServiceConfig(**defaults)


def _docs_for_step(client: int, position: int, step: Tuple) -> List[Dict[str, Any]]:
    """Expand one schedule step into its operation documents."""
    kind, cat_idx, _yields, magnitude = step
    category = CATEGORIES[cat_idx]
    task_id = client * 1000 + position
    if kind == "allocate":
        return [{"op": "allocate", "category": category, "task_id": task_id}]
    if kind == "record":
        peaks = {"cores": 1, "memory": float(magnitude), "disk": float(magnitude) / 8}
        return [
            {"op": "record", "category": category, "task_id": task_id, "peaks": peaks}
        ]
    if kind == "retry":
        previous = {"cores": 1, "memory": float(magnitude), "disk": 10.0}
        return [
            {
                "op": "allocate_retry",
                "category": category,
                "task_id": task_id,
                "previous": previous,
                "observed": previous,
                "exhausted": ["memory"],
            }
        ]
    # A batch rides the queue as one contiguous unit: allocate on this
    # category plus a record on the neighbouring one.
    neighbour = CATEGORIES[(cat_idx + 1) % len(CATEGORIES)]
    return [
        {"op": "allocate", "category": category, "task_id": task_id},
        {
            "op": "record",
            "category": neighbour,
            "task_id": task_id,
            "peaks": {"cores": 1, "memory": float(magnitude), "disk": 5.0},
        },
    ]


async def _run_schedule(
    service: AllocationService, schedule: List[List[Tuple]]
) -> List[List[Tuple[Dict[str, Any], Dict[str, Any]]]]:
    """Run every client program concurrently; returns (doc, response) logs."""

    async def client(index: int, program: List[Tuple]):
        log: List[Tuple[Dict[str, Any], Dict[str, Any]]] = []
        for position, step in enumerate(program):
            for _ in range(step[2]):
                await asyncio.sleep(0)
            docs = _docs_for_step(index, position, step)
            if step[0] == "batch":
                responses = await service.submit_batch(docs)
                log.extend(zip(docs, responses))
            else:
                log.append((docs[0], await service.submit(docs[0])))
        return log

    return await asyncio.gather(
        *(client(index, program) for index, program in enumerate(schedule))
    )


def _strip(response: Dict[str, Any]) -> Dict[str, Any]:
    return {k: v for k, v in response.items() if k not in ("shard", "seq")}


def _check_linearizable(
    config: ServiceConfig,
    logs: List[List[Tuple[Dict[str, Any], Dict[str, Any]]]],
    digests: List[str],
) -> None:
    """Replay each shard's claimed order against a reference allocator."""
    per_shard: Dict[int, List[Tuple[int, Dict[str, Any], Dict[str, Any]]]] = {
        i: [] for i in range(config.n_shards)
    }
    for log in logs:
        for doc, response in log:
            per_shard[response["shard"]].append((response["seq"], doc, response))

    # Program order: within one client, seqs on a shard strictly increase.
    for log in logs:
        last_seq: Dict[int, int] = {}
        for _, response in log:
            shard = response["shard"]
            assert response["seq"] > last_seq.get(shard, 0), (
                "client observed its own operations out of order on "
                f"shard {shard}"
            )
            last_seq[shard] = response["seq"]

    for index in range(config.n_shards):
        claimed = sorted(per_shard[index])
        # The claimed order is a real total order: seqs are 1..N exactly.
        assert [seq for seq, _, _ in claimed] == list(
            range(1, len(claimed) + 1)
        ), f"shard {index} seqs have gaps or duplicates"
        reference = TaskOrientedAllocator(config.shard_allocator_config(index))
        for seq, doc, response in claimed:
            shed = response.get("mode") == "conservative"
            expected = apply_op(reference, doc, shed=shed)
            assert _strip(response) == expected, (
                f"shard {index} seq {seq}: live response diverges from the "
                "single-threaded replay of the claimed order"
            )
        assert digests[index] == reference.digest(), (
            f"shard {index}: final allocator state diverges from the replay"
        )


@settings(
    max_examples=200,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(schedule=_schedule)
def test_concurrent_schedules_linearize(schedule):
    async def scenario():
        config = _service_config()
        service = AllocationService(config)
        await service.start()
        logs = await _run_schedule(service, schedule)
        digests = service.shard_digests()
        await service.stop()
        _check_linearizable(config, logs, digests)

    asyncio.run(scenario())


@settings(
    max_examples=60,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(schedule=_schedule, n_dup_clients=st.integers(min_value=2, max_value=4))
def test_duplicate_keyed_submissions_linearize_exactly_once(
    schedule, n_dup_clients
):
    """Exactly-once under concurrency: N clients race the SAME keyed ops.

    Several clients concurrently submit an identical keyed program (as
    retrying peers would after an ambiguous failure).  Linearizability
    plus the dedup window demands: each key applies exactly once (per-
    shard seqs are gap-free over the *distinct* ops), every duplicate
    response is bit-identical to the first, and the final digests match
    a single-threaded replay of just the distinct operations.
    """
    program = schedule[0]  # one program, raced by every client

    async def scenario():
        config = _service_config(dedup_window=256)
        service = AllocationService(config)
        await service.start()

        async def racer(offset: int):
            log = []
            for position, step in enumerate(program):
                for _ in range((step[2] + offset) % 4):
                    await asyncio.sleep(0)
                # Same client index (0) for every racer: identical docs.
                docs = _docs_for_step(0, position, step)
                for order, doc in enumerate(docs):
                    doc["key"] = f"lin/{position}/{order}"
                if step[0] == "batch":
                    responses = await service.submit_batch(docs)
                    log.extend(zip(docs, responses))
                else:
                    log.append((docs[0], await service.submit(docs[0])))
            return log

        logs = await asyncio.gather(*(racer(i) for i in range(n_dup_clients)))
        digests = service.shard_digests()
        dedup_hits = sum(shard.dedup_hits for shard in service.shards)
        await service.stop()
        return logs, digests, dedup_hits

    logs, digests, dedup_hits = asyncio.run(scenario())

    # Every racer saw bit-identical responses for every keyed op.
    by_key: Dict[str, Dict[str, Any]] = {}
    n_ops = 0
    for log in logs:
        for doc, response in log:
            n_ops += 1
            first = by_key.setdefault(doc["key"], response)
            assert response == first, (
                f"duplicate submissions of key {doc['key']!r} got "
                "diverging responses"
            )
    distinct = len(by_key)
    # n_dup_clients racers, one applied copy each: the rest were dedup
    # hits (answered from the window, no allocator touch).
    assert dedup_hits == n_ops - distinct

    # Each key applied once: seqs over the distinct ops are gap-free,
    # and the claimed order replays to the same digests.
    config = _service_config(dedup_window=256)
    per_shard: Dict[int, List[Tuple[int, Dict[str, Any], Dict[str, Any]]]] = {
        i: [] for i in range(config.n_shards)
    }
    for log in logs:
        for doc, response in log:
            if by_key[doc["key"]] is response or response == by_key[doc["key"]]:
                per_shard[response["shard"]].append((response["seq"], doc, response))
    for index in range(config.n_shards):
        claimed = sorted({seq for seq, _, _ in per_shard[index]})
        assert claimed == list(range(1, len(claimed) + 1)), (
            f"shard {index}: duplicate submissions consumed extra seqs"
        )
        reference = TaskOrientedAllocator(config.shard_allocator_config(index))
        seen: set = set()
        for seq, doc, response in sorted(per_shard[index]):
            if seq in seen:
                continue
            seen.add(seq)
            shed = response.get("mode") == "conservative"
            expected = apply_op(reference, doc, shed=shed)
            assert _strip(response) == expected
        assert digests[index] == reference.digest(), (
            f"shard {index}: state diverged — some key applied twice"
        )


@settings(
    max_examples=30,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(schedule=_schedule)
def test_linearizable_under_backpressure(schedule):
    """Shed responses are part of the order and state-neutral on replay.

    With an aggressive breaker some allocations come back conservative;
    the replay applies exactly the claimed shed decisions and must still
    reproduce every response and the final digests bit-for-bit.
    """

    async def scenario():
        config = _service_config(
            backpressure=CircuitBreakerConfig(
                enabled=True, window=4, failure_threshold=0.5, cooldown=8.0
            ),
            queue_high_watermark=1,
        )
        service = AllocationService(config)
        await service.start()
        logs = await _run_schedule(service, schedule)
        digests = service.shard_digests()
        await service.stop()
        _check_linearizable(config, logs, digests)

    asyncio.run(scenario())
