"""Generational snapshots: chain, retention, fallback, quarantine.

Each snapshot cut writes ``service.snapshot.<gen>.json``, flips the
digest-checked CURRENT pointer, and archives the live WALs as that
generation's replay segments.  Recovery walks the chain newest-first
and falls back over quarantined generations; these tests corrupt each
link in turn and assert recovery lands on the right state (or refuses
loudly when nothing is left).
"""

import asyncio
import json
import os

import pytest

from repro.checkpoint import CheckpointError, file_digest
from repro.core.allocator import AllocatorConfig
from repro.faultfs import flip_bit
from repro.service.config import ServiceConfig
from repro.service.service import (
    CURRENT_FILENAME,
    SNAPSHOT_FILENAME,
    AllocationService,
    parse_generation,
    parse_segment,
    segment_filename,
    snapshot_filename,
)


def run(coro):
    return asyncio.run(coro)


def _config(data_dir, **overrides):
    defaults = dict(
        allocator=AllocatorConfig(algorithm="greedy_bucketing", seed=11),
        n_shards=2,
        data_dir=str(data_dir),
        durability="op",
    )
    defaults.update(overrides)
    return ServiceConfig(**defaults)


def _op(i):
    return {"op": "allocate", "category": f"cat-{i % 3}", "task_id": i, "key": f"k{i}"}


def _read_current(data_dir):
    with open(os.path.join(str(data_dir), CURRENT_FILENAME), encoding="utf-8") as f:
        return json.load(f)


def _gen_files(data_dir):
    return sorted(
        name
        for name in os.listdir(str(data_dir))
        if parse_generation(name) is not None
    )


async def _seed_service(config, n_ops=6, cuts=0):
    """Start a service, apply ops, cut ``cuts`` mid-stream snapshots."""
    service = AllocationService(config)
    await service.start()
    for i in range(n_ops):
        await service.submit(_op(i))
        if cuts and i % max(1, n_ops // (cuts + 1)) == max(1, n_ops // (cuts + 1)) - 1:
            await service.snapshot()
    return service


def test_filename_helpers_round_trip():
    assert snapshot_filename(0) == SNAPSHOT_FILENAME
    assert parse_generation(SNAPSHOT_FILENAME) == 0
    assert parse_generation(snapshot_filename(17)) == 17
    assert parse_segment(segment_filename(3, 17)) == (3, 17)
    assert parse_generation("service.snapshot.CURRENT") is None
    assert parse_segment("shard-00.wal") is None


def test_chain_grows_newest_first_with_digests(tmp_path):
    async def scenario():
        service = await _seed_service(_config(tmp_path), n_ops=6, cuts=2)
        await service.stop()

    run(scenario())
    doc = _read_current(tmp_path)
    gens = [entry["gen"] for entry in doc["entries"]]
    assert gens == sorted(gens, reverse=True)
    for entry in doc["entries"]:
        path = tmp_path / snapshot_filename(entry["gen"])
        assert path.exists()
        assert entry["digest"] == file_digest(str(path))


def test_retention_prunes_generations_and_segments(tmp_path):
    async def scenario():
        config = _config(tmp_path, snapshot_retention=2)
        service = await _seed_service(config, n_ops=4)
        for i in range(4, 10):
            await service.submit(_op(i))
            await service.snapshot()
        await service.stop()

    run(scenario())
    doc = _read_current(tmp_path)
    assert len(doc["entries"]) == 2
    kept = {entry["gen"] for entry in doc["entries"]}
    on_disk = {parse_generation(name) for name in _gen_files(tmp_path)}
    assert on_disk == kept
    floor = min(kept)
    for name in os.listdir(tmp_path):
        segment = parse_segment(name)
        if segment is not None:
            assert segment[1] > floor


def test_fallback_to_previous_generation_on_digest_mismatch(tmp_path):
    async def scenario():
        service = await _seed_service(_config(tmp_path), n_ops=8, cuts=2)
        digests = service.shard_digests()
        await service.stop()
        return digests

    expected = run(scenario())
    newest = _read_current(tmp_path)["entries"][0]
    flip_bit(str(tmp_path / snapshot_filename(newest["gen"])), byte_offset=40)

    async def recover():
        service = AllocationService(_config(tmp_path))
        await service.start()
        digests = service.shard_digests()
        events = list(service.recovery_events)
        await service.stop()
        return digests, events

    digests, events = run(recover())
    # The flipped generation was quarantined; the previous generation
    # plus its archived segments reconstructed the exact same state.
    assert digests == expected
    assert any(e["kind"] == "snapshot-digest" for e in events)
    corrupt_dir = str(tmp_path / snapshot_filename(newest["gen"])) + ".corrupt"
    assert os.path.isdir(corrupt_dir) and os.listdir(corrupt_dir)


def test_corrupt_current_pointer_is_quarantined_and_rebuilt(tmp_path):
    async def scenario():
        service = await _seed_service(_config(tmp_path), n_ops=6, cuts=1)
        digests = service.shard_digests()
        await service.stop()
        return digests

    expected = run(scenario())
    current = tmp_path / CURRENT_FILENAME
    current.write_text("not json {")

    async def recover():
        service = AllocationService(_config(tmp_path))
        await service.start()
        digests = service.shard_digests()
        events = list(service.recovery_events)
        await service.stop()
        return digests, events

    digests, events = run(recover())
    assert digests == expected
    assert any(e["kind"] == "current-pointer" for e in events)
    # The rebuilt pointer is valid again and covers the new generation.
    doc = _read_current(tmp_path)
    assert doc["entries"][0]["digest"] is not None


def test_all_generations_corrupt_is_failure_stop(tmp_path):
    async def scenario():
        service = await _seed_service(_config(tmp_path), n_ops=6, cuts=1)
        await service.stop()

    run(scenario())
    for name in _gen_files(tmp_path):
        flip_bit(str(tmp_path / name), byte_offset=25)

    async def recover():
        service = AllocationService(_config(tmp_path))
        await service.start()

    with pytest.raises(CheckpointError, match="snapshot-import"):
        run(recover())


def test_config_change_is_refused_not_quarantined(tmp_path):
    async def scenario():
        service = await _seed_service(_config(tmp_path), n_ops=4)
        await service.stop()

    run(scenario())

    async def recover():
        service = AllocationService(
            _config(tmp_path, allocator=AllocatorConfig(algorithm="exhaustive_bucketing", seed=11))
        )
        await service.start()

    with pytest.raises(CheckpointError, match="different.*configuration"):
        run(recover())
    # Refused loudly, but the bytes are fine: nothing was quarantined.
    assert not any(name.endswith(".corrupt") for name in os.listdir(tmp_path))


def test_legacy_single_snapshot_upgrades_in_place(tmp_path):
    async def scenario():
        service = await _seed_service(_config(tmp_path), n_ops=6)
        digests = service.shard_digests()
        await service.stop()
        return digests

    expected = run(scenario())
    # Rewind the directory to the pre-generational layout: one
    # service.snapshot.json, no CURRENT, no generations, no segments.
    newest = _read_current(tmp_path)["entries"][0]
    os.replace(
        tmp_path / snapshot_filename(newest["gen"]), tmp_path / SNAPSHOT_FILENAME
    )
    for name in os.listdir(tmp_path):
        if name == SNAPSHOT_FILENAME or name.endswith(".wal"):
            continue
        if (
            parse_generation(name) is not None
            or parse_segment(name) is not None
            or name == CURRENT_FILENAME
        ):
            os.remove(tmp_path / name)

    async def recover():
        service = AllocationService(_config(tmp_path))
        await service.start()
        digests = service.shard_digests()
        generation = service.generation
        await service.stop()
        return digests, generation

    digests, generation = run(recover())
    assert digests == expected
    assert generation >= 1  # upgraded: a real generation + CURRENT exist
    assert (tmp_path / CURRENT_FILENAME).exists()


def test_corrupt_live_wal_is_quarantined_with_prefix_kept(tmp_path):
    async def scenario():
        config = _config(tmp_path)
        service = await _seed_service(config, n_ops=8)
        service.abort()  # crash: live WAL is the only record of the ops

        wals = [n for n in os.listdir(tmp_path) if n.endswith(".wal")]
        victim = max(
            wals, key=lambda n: os.path.getsize(os.path.join(str(tmp_path), n))
        )
        victim_path = os.path.join(str(tmp_path), victim)
        flip_bit(victim_path, byte_offset=os.path.getsize(victim_path) // 3)

        resumed = AllocationService(config)
        await resumed.start()
        events = list(resumed.recovery_events)
        # The shard is live and serving despite the corrupt journal.
        await resumed.submit(_op(100))
        await resumed.stop()
        return victim_path, events

    victim_path, events = run(scenario())
    assert any(e["kind"] == "journal-corrupt" for e in events)
    assert os.path.isdir(victim_path + ".corrupt")
