"""The benchmark regression gate: noise guards and failure detection.

scripts/bench_compare.py gates CI on BENCH_core.json regressions; the
two noise guards (best-of-repeats merging, sub-millisecond absolute
floor) exist so that scheduler jitter cannot fail a build — but a real
regression still must.
"""

import importlib.util
import json
from pathlib import Path

import pytest

pytestmark = pytest.mark.perf

_SPEC = importlib.util.spec_from_file_location(
    "bench_compare",
    Path(__file__).resolve().parents[2] / "scripts" / "bench_compare.py",
)
bench_compare = importlib.util.module_from_spec(_SPEC)
_SPEC.loader.exec_module(bench_compare)


def write_bench(path, metrics):
    path.write_text(json.dumps({"metrics": metrics}))
    return str(path)


# -- merge_best ---------------------------------------------------------------


def test_merge_best_takes_min_timing_and_max_speedup():
    merged = bench_compare.merge_best(
        [
            {"ingest_s": 0.5, "speedup_x": 3.0, "rss_mb": 120.0},
            {"ingest_s": 0.4, "speedup_x": 2.0, "rss_mb": 140.0},
            {"ingest_s": 0.6, "speedup_x": 4.0},
        ]
    )
    assert merged["ingest_s"] == 0.4  # best (min) timing
    assert merged["speedup_x"] == 4.0  # best (max) speedup
    assert merged["rss_mb"] == 120.0  # footprints: lower is better


def test_merge_best_keeps_metrics_missing_from_some_runs():
    merged = bench_compare.merge_best([{"a_s": 1.0}, {"b_s": 2.0}])
    assert merged == {"a_s": 1.0, "b_s": 2.0}


# -- compare ------------------------------------------------------------------


def test_compare_flags_timing_regression_beyond_threshold():
    lines = bench_compare.compare({"ingest_s": 1.0}, {"ingest_s": 1.3}, threshold=0.20)
    assert len(lines) == 1 and "ingest_s" in lines[0]


def test_compare_passes_within_threshold_and_improvements():
    assert bench_compare.compare({"ingest_s": 1.0}, {"ingest_s": 1.15}, 0.20) == []
    assert bench_compare.compare({"ingest_s": 1.0}, {"ingest_s": 0.5}, 0.20) == []


def test_compare_flags_speedup_drop():
    lines = bench_compare.compare({"fast_x": 10.0}, {"fast_x": 7.0}, threshold=0.20)
    assert len(lines) == 1 and "fast_x" in lines[0]
    assert bench_compare.compare({"fast_x": 10.0}, {"fast_x": 9.0}, 0.20) == []


def test_sub_millisecond_timings_are_exempt_from_relative_gate():
    # 3x slower but still under the 1 ms floor: timer noise, not a regression.
    assert bench_compare.compare({"tiny_s": 0.0001}, {"tiny_s": 0.0003}, 0.20) == []
    # Above the floor the same relative swing is fatal.
    lines = bench_compare.compare({"big_s": 0.01}, {"big_s": 0.03}, 0.20)
    assert len(lines) == 1
    # The floor is configurable.
    lines = bench_compare.compare(
        {"tiny_s": 0.0001}, {"tiny_s": 0.0003}, 0.20, abs_floor_s=0.0
    )
    assert len(lines) == 1


def test_floor_does_not_exempt_non_timing_metrics():
    lines = bench_compare.compare({"rss_mb": 0.0001}, {"rss_mb": 0.01}, 0.20)
    assert len(lines) == 1  # _mb is a footprint, not a timer read


def test_metrics_in_only_one_file_are_never_compared():
    assert bench_compare.compare({"old_s": 1.0}, {"new_s": 9.9}, 0.20) == []


# -- main: end-to-end exit codes ----------------------------------------------


def test_main_ok_and_failure_exit_codes(tmp_path, capsys):
    base = write_bench(tmp_path / "base.json", {"ingest_s": 1.0, "speed_x": 4.0})
    good = write_bench(tmp_path / "good.json", {"ingest_s": 1.05, "speed_x": 4.1})
    bad = write_bench(tmp_path / "bad.json", {"ingest_s": 2.0, "speed_x": 4.0})
    assert bench_compare.main([base, good]) == 0
    assert bench_compare.main([base, bad]) == 1
    out = capsys.readouterr().out
    assert "FAIL" in out and "ingest_s" in out


def test_main_best_of_repeats_hides_one_noisy_run(tmp_path):
    base = write_bench(tmp_path / "base.json", {"ingest_s": 1.0})
    noisy = write_bench(tmp_path / "noisy.json", {"ingest_s": 2.0})
    clean = write_bench(tmp_path / "clean.json", {"ingest_s": 1.02})
    # Alone, the noisy run fails; merged with a clean repeat it passes.
    assert bench_compare.main([base, noisy]) == 1
    assert bench_compare.main([base, noisy, clean]) == 0


def test_main_new_metrics_are_reported_not_fatal(tmp_path, capsys):
    base = write_bench(tmp_path / "base.json", {"ingest_s": 1.0})
    cur = write_bench(
        tmp_path / "cur.json", {"ingest_s": 1.0, "brand_new_n1000000_s": 5.0}
    )
    assert bench_compare.main([base, cur]) == 0
    assert "only in current" in capsys.readouterr().out


def test_main_rejects_non_bench_json(tmp_path):
    bogus = tmp_path / "bogus.json"
    bogus.write_text(json.dumps({"not_metrics": {}}))
    with pytest.raises(SystemExit, match="no 'metrics' object"):
        bench_compare.main([str(bogus), str(bogus)])
