"""Tests for result summarization."""

import pytest

from repro.core.allocator import AllocatorConfig
from repro.core.resources import MEMORY, ResourceVector
from repro.metrics.summary import (
    convergence_series,
    summarize_grid,
    summarize_result,
)
from repro.sim.manager import SimulationConfig, WorkflowManager
from repro.sim.pool import PoolConfig
from repro.workflows.spec import TaskSpec, WorkflowSpec


def run_flat(name="flat", algorithm="max_seen", n=30):
    tasks = [
        TaskSpec(
            task_id=i,
            category="proc",
            consumption=ResourceVector.of(cores=1, memory=400, disk=100),
            duration=15.0,
        )
        for i in range(n)
    ]
    manager = WorkflowManager(
        WorkflowSpec(name=name, tasks=tasks),
        SimulationConfig(
            allocator=AllocatorConfig(algorithm=algorithm, seed=0),
            pool=PoolConfig(
                n_workers=2, capacity=ResourceVector.of(cores=8, memory=8000, disk=8000)
            ),
        ),
    )
    return manager.run()


class TestSummaries:
    def test_summarize_result_fields(self):
        result = run_flat()
        summary = summarize_result(result)
        assert summary.workflow == "flat"
        assert summary.algorithm == "max_seen"
        assert summary.n_tasks == 30
        assert set(summary.awe) == {"cores", "memory", "disk"}
        assert all(0 < v <= 1 for v in summary.awe.values())

    def test_failed_fraction_bounds(self):
        summary = summarize_result(run_flat())
        for key in ("cores", "memory", "disk"):
            assert 0.0 <= summary.failed_fraction(key) <= 1.0

    def test_summarize_grid_keys(self):
        grid = summarize_grid([run_flat(name="a"), run_flat(name="b")])
        assert set(grid) == {("a", "max_seen"), ("b", "max_seen")}

    def test_summarize_grid_rejects_duplicates(self):
        with pytest.raises(ValueError):
            summarize_grid([run_flat(), run_flat()])

    def test_convergence_series_length_and_range(self):
        result = run_flat(n=40)
        series = convergence_series(result, MEMORY, window=10)
        assert len(series) == 40
        assert all(0.0 <= v <= 1.0 + 1e-9 for v in series)

    def test_convergence_series_improves_for_constant_workload(self):
        result = run_flat(algorithm="exhaustive_bucketing", n=60)
        series = convergence_series(result, MEMORY, window=10)
        # The steady tail outperforms the bootstrap head.
        assert series[-1] > series[0]

    def test_invalid_window(self):
        result = run_flat()
        with pytest.raises(ValueError):
            convergence_series(result, MEMORY, window=0)
