"""Tests for AWE computation and the ledger cross-check."""

import pytest

from repro.core.allocator import AllocatorConfig
from repro.core.resources import CORES, DISK, MEMORY, ResourceVector
from repro.metrics.efficiency import awe_from_ledger, awe_from_tasks
from repro.sim.manager import SimulationConfig, WorkflowManager
from repro.sim.pool import PoolConfig
from repro.workflows.spec import TaskSpec, WorkflowSpec


def run_small(algorithm="exhaustive_bucketing", n=40):
    tasks = [
        TaskSpec(
            task_id=i,
            category="proc",
            consumption=ResourceVector.of(cores=1, memory=500 + 10 * (i % 7), disk=100),
            duration=20.0 + i % 5,
        )
        for i in range(n)
    ]
    manager = WorkflowManager(
        WorkflowSpec(name="small", tasks=tasks),
        SimulationConfig(
            allocator=AllocatorConfig(algorithm=algorithm, seed=2),
            pool=PoolConfig(
                n_workers=3, capacity=ResourceVector.of(cores=8, memory=8000, disk=8000)
            ),
        ),
    )
    result = manager.run()
    return manager, result


class TestAweCrossCheck:
    @pytest.mark.parametrize("algorithm", ["max_seen", "exhaustive_bucketing", "min_waste"])
    def test_closed_form_equals_ledger(self, algorithm):
        manager, result = run_small(algorithm)
        completed = list(manager._tasks.values())
        for res in (CORES, MEMORY, DISK):
            assert awe_from_tasks(completed, res) == pytest.approx(
                result.ledger.awe(res), rel=1e-9
            )

    def test_awe_in_unit_interval(self):
        _, result = run_small()
        for res, value in awe_from_ledger(result.ledger).items():
            assert 0.0 < value <= 1.0, res

    def test_steady_state_approaches_oracle(self):
        """On a near-constant workload the steady-state window converges
        towards the oracle; the overall figure is dragged down only by
        the whole-machine exploratory attempts."""
        from repro.metrics.summary import convergence_series

        _, result = run_small("max_seen", n=150)
        series = convergence_series(result, MEMORY, window=30)
        # Steady tail: ~530 MB consumption vs the 750 MB rounded max.
        assert series[-1] > 0.6
        assert series[-1] > result.ledger.awe(MEMORY)

    def test_incomplete_task_rejected(self):
        from repro.sim.task import SimTask

        spec = TaskSpec(0, "p", ResourceVector.of(cores=1, memory=1, disk=1), 1.0)
        with pytest.raises(ValueError):
            awe_from_tasks([SimTask(spec)], MEMORY)
