"""Tests for closed-form per-task waste (cross-check vs the ledger)."""

import pytest

from repro.core.resources import CORES, DISK, MEMORY, ResourceVector
from repro.metrics.waste import (
    task_eviction_holding,
    task_failed_allocation,
    task_internal_fragmentation,
    task_resource_waste,
)
from repro.sim.accounting import Ledger
from repro.sim.task import Attempt, AttemptOutcome, SimTask, TaskState
from repro.workflows.spec import TaskSpec


def build_task(attempts, consumption=None, duration=100.0):
    consumption = consumption or ResourceVector.of(cores=1, memory=500, disk=100)
    task = SimTask(
        TaskSpec(task_id=0, category="p", consumption=consumption, duration=duration)
    )
    clock = 0.0
    for index, (allocation, runtime, outcome) in enumerate(attempts):
        task.record_attempt(
            Attempt(
                index=index,
                worker_id=0,
                allocation=allocation,
                start_time=clock,
                runtime=runtime,
                outcome=outcome,
                observed=consumption if outcome is AttemptOutcome.SUCCESS else allocation,
                exhausted=(MEMORY,) if outcome is AttemptOutcome.EXHAUSTED else (),
            )
        )
        clock += runtime
    task.state = TaskState.COMPLETED
    task.completion_time = clock
    return task


class TestPerTaskWaste:
    def test_paper_formula_zero_waste(self):
        consumption = ResourceVector.of(cores=1, memory=500, disk=100)
        task = build_task([(consumption, 100.0, AttemptOutcome.SUCCESS)])
        for res in (CORES, MEMORY, DISK):
            assert task_resource_waste(task, res) == pytest.approx(0.0)

    def test_fragmentation_and_failed_combine(self):
        task = build_task(
            [
                (ResourceVector.of(cores=1, memory=250, disk=100), 40.0, AttemptOutcome.EXHAUSTED),
                (ResourceVector.of(cores=1, memory=800, disk=100), 100.0, AttemptOutcome.SUCCESS),
            ]
        )
        assert task_internal_fragmentation(task, MEMORY) == pytest.approx(300 * 100)
        assert task_failed_allocation(task, MEMORY) == pytest.approx(250 * 40)
        assert task_resource_waste(task, MEMORY) == pytest.approx(300 * 100 + 250 * 40)

    def test_eviction_tracked_separately(self):
        alloc = ResourceVector.of(cores=1, memory=1000, disk=100)
        task = build_task(
            [
                (alloc, 25.0, AttemptOutcome.EVICTED),
                (alloc, 100.0, AttemptOutcome.SUCCESS),
            ]
        )
        assert task_eviction_holding(task, MEMORY) == pytest.approx(1000 * 25)
        assert task_resource_waste(task, MEMORY) == pytest.approx(500 * 100)

    def test_incomplete_task_rejected(self):
        task = SimTask(
            TaskSpec(0, "p", ResourceVector.of(cores=1, memory=1, disk=1), 1.0)
        )
        with pytest.raises(ValueError):
            task_resource_waste(task, MEMORY)

    def test_matches_ledger_streaming_totals(self):
        """The closed-form per-task waste must equal the ledger's fold."""
        tasks = [
            build_task(
                [
                    (
                        ResourceVector.of(cores=1, memory=200 + 50 * i, disk=150),
                        30.0,
                        AttemptOutcome.EXHAUSTED,
                    ),
                    (
                        ResourceVector.of(cores=2, memory=900, disk=150),
                        100.0,
                        AttemptOutcome.SUCCESS,
                    ),
                ]
            )
            for i in range(4)
        ]
        ledger = Ledger((CORES, MEMORY, DISK))
        for task in tasks:
            ledger.record_task(task)
        for res in (CORES, MEMORY, DISK):
            direct_frag = sum(task_internal_fragmentation(t, res) for t in tasks)
            direct_failed = sum(task_failed_allocation(t, res) for t in tasks)
            assert ledger.waste(res).internal_fragmentation == pytest.approx(direct_frag)
            assert ledger.waste(res).failed_allocation == pytest.approx(direct_failed)
